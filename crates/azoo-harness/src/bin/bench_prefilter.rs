//! Records the quiescence/prefilter before-and-after throughput for the
//! sparse benchmarks (Snort, ClamAV, Brill) as `BENCH_prefilter.json` —
//! the machine-readable companion to `ablation` row 6 and
//! `bench/benches/prefilter.rs`.
//!
//! Three single-threaded engines per benchmark, identical report
//! streams (asserted): the baseline NFA with the quiescent skip forced
//! off, the quiescence-aware NFA, and the literal-prefilter engine.
//!
//! Usage: `bench-prefilter [--scale tiny|small|full] [--out PATH]`

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_engines::{CountSink, NfaEngine, PrefilterEngine};
use azoo_harness::{arg_value, scale_from_args, time_scan_with};
use azoo_zoo::BenchmarkId;

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_prefilter.json".into());
    let mut rows = Vec::new();
    for id in [BenchmarkId::Snort, BenchmarkId::ClamAv, BenchmarkId::Brill] {
        let bench = id.build(scale);
        let window = bench.input.len().min(1 << 18);
        let input = &bench.input[..window];

        let mut base = NfaEngine::new(&bench.automaton).expect("valid");
        base.set_quiescent_skip(false);
        let mut base_sink = CountSink::new();
        let base_secs = time_scan_with(&mut base, input, &mut base_sink);

        let mut skip = NfaEngine::new(&bench.automaton).expect("valid");
        let mut skip_sink = CountSink::new();
        let skip_secs = time_scan_with(&mut skip, input, &mut skip_sink);

        let mut pf = PrefilterEngine::new(&bench.automaton).expect("valid");
        let mut pf_sink = CountSink::new();
        let pf_secs = time_scan_with(&mut pf, input, &mut pf_sink);

        assert_eq!(
            base_sink.count(),
            skip_sink.count(),
            "{}: skip diverged",
            id.name()
        );
        assert_eq!(
            base_sink.count(),
            pf_sink.count(),
            "{}: prefilter diverged",
            id.name()
        );

        let mbps = |secs: f64| input.len() as f64 / secs / 1e6;
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"benchmark\": \"{}\",\n",
                "      \"input_bytes\": {},\n",
                "      \"reports\": {},\n",
                "      \"prefilter_coverage\": {:.4},\n",
                "      \"baseline_mbps\": {:.3},\n",
                "      \"quiescent_skip_mbps\": {:.3},\n",
                "      \"prefilter_mbps\": {:.3},\n",
                "      \"skip_speedup\": {:.2},\n",
                "      \"prefilter_speedup\": {:.2}\n",
                "    }}"
            ),
            id.name(),
            input.len(),
            base_sink.count(),
            pf.coverage(),
            mbps(base_secs),
            mbps(skip_secs),
            mbps(pf_secs),
            base_secs / skip_secs,
            base_secs / pf_secs,
        ));
        eprintln!(
            "{}: baseline {:.3} MB/s, skip {:.3} MB/s ({:.2}x), prefilter {:.3} MB/s ({:.2}x)",
            id.name(),
            mbps(base_secs),
            mbps(skip_secs),
            base_secs / skip_secs,
            mbps(pf_secs),
            base_secs / pf_secs,
        );
    }
    let scale_name = format!("{scale:?}").to_lowercase();
    let json = format!(
        concat!(
            "{{\n",
            "  \"artifact\": \"quiescent skip + literal prefilter throughput (DESIGN.md 6d)\",\n",
            "  \"command\": \"cargo run --release -p azoo-harness --bin bench-prefilter -- --scale {}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"threads\": 1,\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale_name,
        scale_name,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    eprintln!("wrote {out_path}");
}

//! Regenerates **Table III**: the CPU cost of Micron-AP-specific
//! soft-reconfiguration padding (Section VII).
//!
//! Two Sequence Matching benchmarks compute the identical kernel: native
//! size-6 filters, and capacity-10 filters soft-configured for size 6
//! (padded with states that never match). Both are run on the same input
//! with the VASim-equivalent NFA engine and the Hyperscan-style lazy-DFA
//! engine; the padding overhead is the slowdown of the padded variant.
//!
//! Usage: `table3 [--scale tiny|small|full] [--filters N]`

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_core::Automaton;
use azoo_engines::{Engine, LazyDfaEngine, NfaEngine};
use azoo_harness::{arg_value, scale_from_args, Table};
use azoo_passes::remove_dead;
use azoo_zoo::sequence_match::{append_filter, generate_sequence, transaction_stream};
use azoo_zoo::Scale;

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let filters: usize = arg_value(&args, "--filters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(match scale {
            Scale::Tiny => 16,
            Scale::Small => 48,
            Scale::Full => 128,
        });
    let transactions = match scale {
        Scale::Tiny => 2_000,
        Scale::Small => 10_000,
        Scale::Full => 40_000,
    };
    println!(
        "== Table III: impact of AP-specific padding on CPU engines \
         (scale: {scale:?}, {filters} filters, {transactions} transactions) ==\n"
    );

    // Identical sequences in both variants; only padding differs.
    let mut rng = azoo_workloads::rng(0x7AB3);
    let sequences: Vec<_> = (0..filters)
        .map(|_| generate_sequence(&mut rng, 6, 6))
        .collect();
    let mut native = Automaton::new();
    let mut padded = Automaton::new();
    for (i, seq) in sequences.iter().enumerate() {
        append_filter(&mut native, seq, i as u32, None, None);
        append_filter(&mut padded, seq, i as u32, None, Some(10));
    }
    println!(
        "native: {} states; padded: {} states (+{:.1}%)",
        native.state_count(),
        padded.state_count(),
        100.0 * (padded.state_count() as f64 / native.state_count() as f64 - 1.0)
    );
    let input = transaction_stream(0x17EA, transactions);
    println!("input: {} bytes\n", input.len());

    let table = Table::new(&[
        ("CPU Engine", 22),
        ("6 Wide (s)", 11),
        ("Padded (s)", 11),
        ("Overhead", 9),
        ("Paper", 7),
    ]);
    // Repeat scans until a measurable duration accumulates.
    fn steady(engine: &mut dyn Engine, input: &[u8]) -> f64 {
        let mut sink = azoo_engines::NullSink::new();
        engine.scan(input, &mut sink); // warm (and build DFA caches)
        let mut reps = 0u32;
        let t = std::time::Instant::now();
        loop {
            engine.scan(input, &mut sink);
            reps += 1;
            if t.elapsed().as_secs_f64() > 0.5 {
                break;
            }
        }
        t.elapsed().as_secs_f64() / reps as f64
    }
    // VASim-equivalent row.
    let mut n1 = NfaEngine::new(&native).expect("valid");
    let mut n2 = NfaEngine::new(&padded).expect("valid");
    let t_native = steady(&mut n1, &input);
    let t_padded = steady(&mut n2, &input);
    table.row(&[
        "NFA (VASim-equiv.)".into(),
        format!("{t_native:.3}"),
        format!("{t_padded:.3}"),
        format!("{:+.1}%", 100.0 * (t_padded / t_native - 1.0)),
        "26.7%".into(),
    ]);
    // Hyperscan-style row: the warm-up scan inside `steady` populates the
    // DFA cache, so the measured iterations run at cache-hit speed, as a
    // block-mode regex engine would deliver.
    let mut d1 = LazyDfaEngine::with_max_states(&native, 1 << 17).expect("no counters");
    let mut d2 = LazyDfaEngine::with_max_states(&padded, 1 << 17).expect("no counters");
    let t_native_d = steady(&mut d1, &input);
    let t_padded_d = steady(&mut d2, &input);
    table.row(&[
        "Lazy DFA (raw)".into(),
        format!("{t_native_d:.3}"),
        format!("{t_padded_d:.3}"),
        format!("{:+.1}%", 100.0 * (t_padded_d / t_native_d - 1.0)),
        "-".into(),
    ]);
    // Production regex compilers (Hyperscan) prune states that cannot
    // reach a report before codegen; pad states are exactly such states.
    let native_pruned = remove_dead(&native);
    let padded_pruned = remove_dead(&padded);
    let mut p1 = LazyDfaEngine::with_max_states(&native_pruned, 1 << 17).expect("no counters");
    let mut p2 = LazyDfaEngine::with_max_states(&padded_pruned, 1 << 17).expect("no counters");
    let t_native_p = steady(&mut p1, &input);
    let t_padded_p = steady(&mut p2, &input);
    table.row(&[
        "DFA+prune (Hyperscan)".into(),
        format!("{t_native_p:.3}"),
        format!("{t_padded_p:.3}"),
        format!("{:+.1}%", 100.0 * (t_padded_p / t_native_p - 1.0)),
        "2.92%".into(),
    ]);
    println!(
        "\n(lazy-DFA diagnostics: native {} states / {} flushes, padded {} / {})",
        d1.cached_states(),
        d1.flush_count(),
        d2.cached_states(),
        d2.flush_count()
    );
    println!(
        "\npaper shape to check: the active-set engine pays a large \
         penalty for pad states; the DFA-based engine pays a small one."
    );
}

//! The `azoo-loadgen` binary: a load generator and correctness client
//! for `azoo-serve`.
//!
//! ```text
//! azoo-loadgen (--unix PATH | --tcp ADDR)
//!              [--connections K]   client connections (default 2)
//!              [--sessions S]      total sessions across them (default 8)
//!              [--chunk BYTES]     feed chunk size (default 4096)
//!              [--scale tiny|small|full]
//!              [--smoke]           CI preset: tiny scale, 2 conns x 8 sessions
//!              [--out PATH]        result JSON (default BENCH_serve.json)
//!              [--no-shutdown]     leave the server running on exit
//!              [--reduce]          compile databases through the reduction tier
//! ```
//!
//! Sessions replay the suite's Snort and ClamAV corpora
//! ([`BenchmarkId::Snort`]/[`BenchmarkId::ClamAv`]): each connection
//! opens its share of sessions, round-robins chunked feeds across them
//! (interleaving streams on one connection, the server's hardest
//! small-state case), then closes. Every session's drained reports are
//! checked byte-for-byte against a local block scan of the same
//! database — the loadgen is an oracle, not just a firehose. On success
//! it fetches the server metrics, optionally sends `SHUTDOWN`, and
//! writes a `BENCH_serve.json` with throughput and the server snapshot.
//!
//! Exit code: 0 = all sessions verified; 1 = any mismatch or protocol
//! error; 2 = bad usage.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Instant;

use azoo_core::json::Json;
use azoo_engines::CollectSink;
use azoo_harness::{arg_value, flag_present, scale_from_args};
use azoo_serve::proto::{recv_response, send_request};
use azoo_serve::{Db, DbConfig, DbRef, Request, Response};
use azoo_zoo::{BenchmarkId, Scale};

trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// One benchmark's replay material, shared by every session on it.
struct Workload {
    name: &'static str,
    artifact: Arc<Vec<u8>>,
    input: Arc<Vec<u8>>,
    /// Reports a correct server must produce for the whole stream.
    expected: Arc<Vec<(u64, u32)>>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = flag_present(&args, "--smoke");
    let scale = if smoke {
        Scale::Tiny
    } else {
        scale_from_args()
    };
    let connections: usize = arg_value(&args, "--connections")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2);
    let sessions: usize = arg_value(&args, "--sessions")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8);
    let chunk: usize = arg_value(&args, "--chunk")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4096);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());

    let reduce = flag_present(&args, "--reduce");
    let workloads: Vec<Arc<Workload>> = [BenchmarkId::Snort, BenchmarkId::ClamAv]
        .into_iter()
        .map(|id| Arc::new(build_workload(id, scale, reduce)))
        .collect();
    eprintln!(
        "azoo-loadgen: {connections} connections x {sessions} sessions, \
         {chunk}-byte chunks, scale {scale:?}"
    );

    // Distribute sessions round-robin across connections and workloads.
    let mut per_conn: Vec<Vec<Arc<Workload>>> = vec![Vec::new(); connections];
    for s in 0..sessions {
        per_conn[s % connections].push(workloads[s % workloads.len()].clone());
    }

    let t0 = Instant::now();
    let mut threads = Vec::new();
    for (c, assigned) in per_conn.into_iter().enumerate() {
        let args = args.clone();
        threads.push(std::thread::spawn(move || {
            run_connection(&args, c, &assigned, chunk)
        }));
    }
    let mut total_bytes = 0u64;
    let mut total_reports = 0u64;
    let mut failed = false;
    for t in threads {
        match t.join() {
            Ok(Ok((bytes, reports))) => {
                total_bytes += bytes;
                total_reports += reports;
            }
            Ok(Err(e)) => {
                eprintln!("azoo-loadgen: {e}");
                failed = true;
            }
            Err(_) => {
                eprintln!("azoo-loadgen: connection thread panicked");
                failed = true;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Fetch the server-side snapshot on a fresh connection, then
    // (unless told otherwise) ask the server to exit.
    let metrics_json = (|| -> Result<String, String> {
        let mut conn = connect(&args)?;
        send_request(&mut *conn, &Request::Metrics).map_err(|e| e.to_string())?;
        let json = match recv_response(&mut *conn).map_err(|e| e.to_string())? {
            Response::MetricsJson(json) => json,
            other => return Err(format!("expected MetricsJson, got {other:?}")),
        };
        if !flag_present(&args, "--no-shutdown") {
            send_request(&mut *conn, &Request::Shutdown).map_err(|e| e.to_string())?;
            match recv_response(&mut *conn).map_err(|e| e.to_string())? {
                Response::ShuttingDown => {}
                other => return Err(format!("expected ShuttingDown, got {other:?}")),
            }
        }
        Ok(json)
    })()
    .unwrap_or_else(|e| {
        eprintln!("azoo-loadgen: metrics/shutdown failed: {e}");
        failed = true;
        String::new()
    });

    if failed {
        std::process::exit(1);
    }
    let metrics = azoo_core::json::parse(&metrics_json).unwrap_or_else(|e| {
        eprintln!("azoo-loadgen: server metrics are not valid JSON: {e}");
        std::process::exit(1);
    });
    if smoke {
        // CI gate: a clean smoke run rejects nothing and finds matches.
        let rejected = metrics
            .get("rejected_feeds")
            .and_then(|j| j.as_i64())
            .unwrap_or(-1);
        if rejected != 0 {
            eprintln!("azoo-loadgen: smoke expects zero rejected feeds, saw {rejected}");
            std::process::exit(1);
        }
        if total_reports == 0 {
            eprintln!("azoo-loadgen: smoke expects nonzero reports");
            std::process::exit(1);
        }
    }

    let result = Json::Obj(vec![
        ("schema".into(), Json::Str("azoo-serve-bench-v1".into())),
        ("scale".into(), Json::Str(format!("{scale:?}"))),
        ("connections".into(), Json::Int(connections as i64)),
        ("sessions".into(), Json::Int(sessions as i64)),
        ("chunk_bytes".into(), Json::Int(chunk as i64)),
        ("bytes_fed".into(), Json::Int(total_bytes as i64)),
        ("reports".into(), Json::Int(total_reports as i64)),
        ("elapsed_s".into(), Json::Float(elapsed)),
        (
            "throughput_mbps".into(),
            Json::Float(total_bytes as f64 / elapsed.max(1e-9) / 1e6),
        ),
        ("server_metrics".into(), metrics),
    ]);
    let mut text = result.pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("azoo-loadgen: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "azoo-loadgen: OK — {total_bytes} bytes, {total_reports} reports, \
         {elapsed:.2}s; results in {out}"
    );
}

fn build_workload(id: BenchmarkId, scale: Scale, reduce: bool) -> Workload {
    let bench = id.build(scale);
    let config = DbConfig {
        reduce,
        ..DbConfig::default()
    };
    let db = Db::compile(bench.automaton, config)
        .unwrap_or_else(|e| fatal(&format!("{} does not compile: {e}", id.name())));
    // Local block scan = ground truth for every session on this corpus.
    let mut engine = db.checkout();
    let mut sink = CollectSink::new();
    engine.feed(&bench.input, true, &mut sink);
    db.checkin(engine);
    Workload {
        name: id.name(),
        artifact: Arc::new(db.serialize()),
        input: Arc::new(bench.input),
        expected: Arc::new(
            sink.reports()
                .iter()
                .map(|r| (r.offset, r.code.0))
                .collect(),
        ),
    }
}

/// Drives one connection: open every assigned session, interleave
/// chunked feeds round-robin, verify, close. Returns (bytes, reports).
fn run_connection(
    args: &[String],
    cid: usize,
    assigned: &[Arc<Workload>],
    chunk: usize,
) -> Result<(u64, u64), String> {
    let mut conn = connect(args)?;
    struct Live {
        wl: Arc<Workload>,
        sid: u64,
        fed: usize,
        got: Vec<(u64, u32)>,
    }
    let mut live: Vec<Live> = Vec::new();
    for wl in assigned {
        send_request(
            &mut *conn,
            &Request::Open {
                tenant: wl.name.into(),
                db: DbRef::Artifact(wl.artifact.as_ref().clone()),
                max_edits: 0,
            },
        )
        .map_err(|e| e.to_string())?;
        let sid = match recv_response(&mut *conn).map_err(|e| e.to_string())? {
            Response::Opened { sid } => sid,
            other => return Err(format!("conn {cid}: open failed: {other:?}")),
        };
        live.push(Live {
            wl: wl.clone(),
            sid,
            fed: 0,
            got: Vec::new(),
        });
    }

    let mut bytes = 0u64;
    let mut reports = 0u64;
    // Round-robin until every stream has delivered its final chunk.
    let mut done = 0;
    while done < live.len() {
        done = 0;
        for s in &mut live {
            if s.fed > s.wl.input.len() {
                done += 1;
                continue;
            }
            let end = (s.fed + chunk).min(s.wl.input.len());
            let eod = end == s.wl.input.len();
            send_request(
                &mut *conn,
                &Request::Feed {
                    sid: s.sid,
                    eod,
                    data: s.wl.input[s.fed..end].to_vec(),
                },
            )
            .map_err(|e| e.to_string())?;
            bytes += (end - s.fed) as u64;
            // `fed > len` marks eod-delivered (handles empty inputs).
            s.fed = end + usize::from(eod);
            match recv_response(&mut *conn).map_err(|e| e.to_string())? {
                Response::Reports { reports: r, .. } => {
                    reports += r.len() as u64;
                    s.got.extend(r);
                }
                other => return Err(format!("conn {cid}: feed failed: {other:?}")),
            }
        }
    }

    for s in &mut live {
        send_request(&mut *conn, &Request::Close { sid: s.sid }).map_err(|e| e.to_string())?;
        match recv_response(&mut *conn).map_err(|e| e.to_string())? {
            Response::Reports { reports: r, .. } => {
                reports += r.len() as u64;
                s.got.extend(r);
            }
            other => return Err(format!("conn {cid}: close drain failed: {other:?}")),
        }
        match recv_response(&mut *conn).map_err(|e| e.to_string())? {
            Response::Closed { .. } => {}
            other => return Err(format!("conn {cid}: close failed: {other:?}")),
        }
        if s.got != *s.wl.expected {
            return Err(format!(
                "conn {cid}: session {} ({}) diverged: {} reports served, {} expected",
                s.sid,
                s.wl.name,
                s.got.len(),
                s.wl.expected.len()
            ));
        }
    }
    Ok((bytes, reports))
}

fn connect(args: &[String]) -> Result<Box<dyn Conn>, String> {
    match (arg_value(args, "--unix"), arg_value(args, "--tcp")) {
        (Some(path), None) => UnixStream::connect(&path)
            .map(|s| Box::new(s) as Box<dyn Conn>)
            .map_err(|e| format!("cannot connect to unix socket {path}: {e}")),
        (None, Some(addr)) => TcpStream::connect(&addr)
            .map(|s| {
                let _ = s.set_nodelay(true);
                Box::new(s) as Box<dyn Conn>
            })
            .map_err(|e| format!("cannot connect to tcp {addr}: {e}")),
        _ => {
            eprintln!("azoo-loadgen: exactly one of --unix PATH or --tcp ADDR is required");
            std::process::exit(2);
        }
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("azoo-loadgen: {msg}");
    std::process::exit(1);
}

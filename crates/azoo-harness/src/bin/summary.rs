//! One-shot suite overview: builds every benchmark, prints its domain,
//! sizes, and generation notes — the "what is in the suite" companion to
//! the numeric tables.
//!
//! Usage: `summary [--scale tiny|small|full] [--notes]`

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_harness::{fmt_count, scale_from_args, Table};
use azoo_zoo::BenchmarkId;

fn main() {
    let scale = scale_from_args();
    let show_notes = std::env::args().any(|a| a == "--notes");
    println!("== AutomataZoo suite overview (scale: {scale:?}) ==\n");
    let table = Table::new(&[
        ("Benchmark", 20),
        ("Domain", 32),
        ("States", 10),
        ("Edges", 10),
        ("Input B", 10),
    ]);
    let mut total_states = 0usize;
    for id in BenchmarkId::ALL {
        let bench = id.build(scale);
        total_states += bench.automaton.state_count();
        table.row(&[
            id.name().into(),
            id.domain().into(),
            fmt_count(bench.automaton.state_count()),
            fmt_count(bench.automaton.edge_count()),
            fmt_count(bench.input.len()),
        ]);
        if show_notes {
            println!("    {}\n", id.generation_notes());
        }
    }
    println!(
        "\n{} benchmarks, {} total states",
        BenchmarkId::ALL.len(),
        fmt_count(total_states)
    );
    if !show_notes {
        println!("(re-run with --notes for per-benchmark generation instructions)");
    }
}

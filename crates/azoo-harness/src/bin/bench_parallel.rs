//! Records chunk-parallel scanning throughput at 1/2/4/8 worker threads
//! as `BENCH_parallel.json` — the machine-readable companion to
//! DESIGN.md §6j (speculative frontier summaries).
//!
//! Three workload shapes, chosen to cover every shard classification:
//!
//! * Snort — many counter-free components: automaton sharding plus
//!   bounded-overlap input chunking (the pre-existing cheap path);
//! * SPM 6w6p — the same filters without counters, for the
//!   counter-cost comparison;
//! * SPM 6w6p wC — every filter ends in a *terminal* support counter,
//!   so the whole shard takes the speculative summary-and-stitch path
//!   (before this tier it was pinned to a sequential whole-input scan).
//!
//! Every thread count's report stream is asserted byte-identical to the
//! single-threaded reference NFA — the differential gate, not a sample.
//!
//! Usage: `bench-parallel [--scale tiny|small|full] [--out PATH] [--check]`
//!
//! `--check` is the CI gate: exits nonzero unless the counter-bearing
//! benchmark is fully speculative (zero whole-input shards) and every
//! equivalence assertion held (the assertions abort the run on their
//! own).
//!
//! The JSON records `host_cpus`: on a single-core host the multi-thread
//! rows measure oversubscription overhead, not speedup — read them as a
//! soundness artifact, not a performance claim, unless
//! `host_cpus >= threads`.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_core::{Automaton, CounterMode};
use azoo_engines::{CollectSink, Engine, NfaEngine, ParallelScanner};
use azoo_harness::{arg_value, flag_present, scale_from_args, time_scan_with};
use azoo_zoo::{sequence_match, BenchmarkId};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A counter-bearing SPM instance whose input *embeds* one candidate
/// sequence past its support threshold, so the latch counters actually
/// count, latch, and report — the random registry corpus rarely
/// satisfies support on a bounded window, which would leave the
/// counter-seam differential untested in this artifact.
fn seeded_spm() -> (Automaton, Vec<u8>) {
    let mut r = azoo_workloads::rng(0x5EED);
    let mut a = Automaton::new();
    let mut first = None;
    for code in 0..20u32 {
        let seq = sequence_match::generate_sequence(&mut r, 6, 6);
        sequence_match::append_filter(&mut a, &seq, code, Some((3, CounterMode::Latch)), None);
        first.get_or_insert(seq);
    }
    let seq = first.expect("at least one filter");
    let input = sequence_match::stream_with_sequence(0xFEED, &seq, 12);
    (a, input)
}

fn reports(engine: &mut dyn Engine, input: &[u8]) -> Vec<(u64, u32)> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
        .iter()
        .map(|r| (r.offset, r.code.0))
        .collect()
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_parallel.json".into());
    let check = flag_present(&args, "--check");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let ids = [
        BenchmarkId::Snort,
        BenchmarkId::SeqMatch6w6p,
        BenchmarkId::SeqMatch6w6pWc,
    ];
    let mut cases: Vec<(String, Automaton, Vec<u8>, bool)> = ids
        .iter()
        .map(|id| {
            let bench = id.build(scale);
            (
                id.name().to_string(),
                bench.automaton,
                bench.input,
                *id == BenchmarkId::SeqMatch6w6pWc,
            )
        })
        .collect();
    let (seeded, seeded_input) = seeded_spm();
    cases.push(("SPM wC (seeded support)".into(), seeded, seeded_input, true));

    let mut rows = Vec::new();
    let mut counter_bench_speculative = true;
    let mut seeded_reports = 0usize;
    for (name, automaton, full_input, is_counter_gate) in &cases {
        // Bounded window: full corpora can be huge, and every thread
        // count scans it four-plus times (reference + 4 scanners).
        let window = full_input.len().min(1 << 18);
        let input = &full_input[..window];

        let mut reference = NfaEngine::new(automaton).expect("valid");
        let expect = reports(&mut reference, input);

        let probe = ParallelScanner::new(automaton, 4).expect("valid");
        let speculative = probe.speculative_shard_count();
        let whole_input = probe.whole_input_shard_count();
        let chunkable = probe.chunkable_shard_count();
        if *is_counter_gate {
            counter_bench_speculative &= speculative >= 1 && whole_input == 0;
        }
        if name.starts_with("SPM wC (seeded") {
            seeded_reports = expect.len();
        }

        let mut mbps = Vec::new();
        for threads in THREADS {
            let mut scanner = ParallelScanner::new(automaton, threads).expect("valid");
            assert_eq!(
                reports(&mut scanner, input),
                expect,
                "{name}: {threads}-thread reports diverged from the reference NFA"
            );
            let mut sink = CollectSink::new();
            let secs = time_scan_with(&mut scanner, input, &mut sink);
            mbps.push(input.len() as f64 / secs / 1e6);
        }

        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"benchmark\": \"{}\",\n",
                "      \"states\": {},\n",
                "      \"counters\": {},\n",
                "      \"shards\": {},\n",
                "      \"chunkable_shards\": {},\n",
                "      \"speculative_shards\": {},\n",
                "      \"whole_input_shards\": {},\n",
                "      \"input_bytes\": {},\n",
                "      \"reports\": {},\n",
                "      \"mbps_1t\": {:.3},\n",
                "      \"mbps_2t\": {:.3},\n",
                "      \"mbps_4t\": {:.3},\n",
                "      \"mbps_8t\": {:.3}\n",
                "    }}"
            ),
            name,
            automaton.state_count(),
            automaton.counter_count(),
            probe.shard_count(),
            chunkable,
            speculative,
            whole_input,
            input.len(),
            expect.len(),
            mbps[0],
            mbps[1],
            mbps[2],
            mbps[3],
        ));
        eprintln!(
            "{}: {} shards ({} chunkable, {} speculative, {} whole-input), \
             {:.3} / {:.3} / {:.3} / {:.3} MB/s at 1/2/4/8 threads",
            name,
            probe.shard_count(),
            chunkable,
            speculative,
            whole_input,
            mbps[0],
            mbps[1],
            mbps[2],
            mbps[3],
        );
    }

    let scale_name = format!("{scale:?}").to_lowercase();
    let json = format!(
        concat!(
            "{{\n",
            "  \"artifact\": \"chunk-parallel scanning throughput, speculative tier (DESIGN.md 6j)\",\n",
            "  \"command\": \"cargo run --release -p azoo-harness --bin bench-parallel -- --scale {}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"host_cpus\": {},\n",
            "  \"cpu_caveat\": \"multi-thread rows on a host with fewer cores than threads measure oversubscription overhead, not speedup\",\n",
            "  \"rows\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale_name,
        scale_name,
        host_cpus,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("writable output path");
    eprintln!("wrote {out_path} (host has {host_cpus} CPUs)");

    if check && !counter_bench_speculative {
        eprintln!(
            "bench-parallel: --check expects the SPM wC benchmarks to chunk \
             speculatively with zero whole-input shards"
        );
        std::process::exit(1);
    }
    if check && seeded_reports == 0 {
        eprintln!(
            "bench-parallel: --check expects the seeded SPM wC input to \
             actually fire its support counters"
        );
        std::process::exit(1);
    }
}

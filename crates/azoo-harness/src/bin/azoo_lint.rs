//! `azoo-lint` — static analysis over MNRL files and zoo benchmarks.
//!
//! ```text
//! azoo-lint [TARGETS] [OPTIONS]
//!
//! Targets (default: --bench all):
//!   --mnrl FILE     lint an MNRL JSON file (repeatable)
//!   --bench NAME    lint a generated zoo benchmark (repeatable; `all`
//!                   lints every benchmark; names match Table I rows,
//!                   case- and punctuation-insensitively: `snort`,
//!                   `random-forest-a`, `hamming-18x3`, ...)
//!
//! Options:
//!   --scale S       benchmark scale: tiny (default) | small | full
//!   --reduce        run the reduction tier first and lint the reduced
//!                   automaton (what `--reduce` compile paths serve)
//!   --json          machine-readable JSON report on stdout
//!   --allow RULE    suppress a rule (repeatable)
//!   --deny RULE     promote a rule to Error (repeatable)
//!   --list-rules    print the rule registry and exit
//!
//! Concurrency mode (replaces the MNRL targets):
//!   --lock-graph    exercise the workspace's concurrent subsystems
//!                   (database cache, scan service, parallel scanner)
//!                   in-process and dump the observed lock-acquisition
//!                   graph recorded by azoo-sync
//!   --check         with --lock-graph: exit 2 if the graph has a cycle
//!                   (a latent lock-ordering deadlock)
//!
//! Exit status: 0 clean (warnings allowed), 1 any Error-level finding,
//! 2 usage or I/O error (or an acquisition cycle under
//! `--lock-graph --check`).
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_analyze::{analyze_with, rule, rule_for_core_error, Diagnostic, Severity};
use azoo_analyze::{Level, LintConfig, RULES};
use azoo_core::json::Json;
use azoo_core::mnrl;
use azoo_zoo::{BenchmarkId, Scale};

fn main() {
    std::process::exit(run());
}

fn fail(msg: &str) -> i32 {
    eprintln!("azoo-lint: {msg}");
    2
}

fn usage() -> String {
    "usage: azoo-lint [--mnrl FILE]... [--bench NAME|all]... \
     [--scale tiny|small|full] [--reduce] [--json] [--allow RULE]... \
     [--deny RULE]... [--list-rules] | --lock-graph [--check]"
        .into()
}

/// Case- and punctuation-insensitive benchmark name key.
fn slug(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

fn find_benchmark(name: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL
        .into_iter()
        .find(|id| slug(id.name()) == slug(name))
}

enum Target {
    Mnrl(String),
    Bench(BenchmarkId),
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().collect();
    let mut targets: Vec<Target> = Vec::new();
    let mut cfg = LintConfig::new();
    let mut scale = Scale::Tiny;
    let mut json = false;
    let mut reduce = false;
    let mut lock_graph = false;
    let mut check = false;
    let mut i = 1;
    let value_of = |args: &[String], i: usize| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{} needs a value\n{}", args[i], usage()))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--mnrl" => {
                match value_of(&args, i) {
                    Ok(f) => targets.push(Target::Mnrl(f)),
                    Err(e) => return fail(&e),
                }
                i += 2;
            }
            "--bench" => {
                let name = match value_of(&args, i) {
                    Ok(n) => n,
                    Err(e) => return fail(&e),
                };
                if slug(&name) == "all" {
                    targets.extend(BenchmarkId::ALL.into_iter().map(Target::Bench));
                } else {
                    match find_benchmark(&name) {
                        Some(id) => targets.push(Target::Bench(id)),
                        None => return fail(&format!("unknown benchmark '{name}'")),
                    }
                }
                i += 2;
            }
            "--scale" => {
                scale = match value_of(&args, i).as_deref() {
                    Ok("tiny") => Scale::Tiny,
                    Ok("small") => Scale::Small,
                    Ok("full") => Scale::Full,
                    Ok(other) => return fail(&format!("unknown scale '{other}'")),
                    Err(e) => return fail(e),
                };
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--reduce" => {
                reduce = true;
                i += 1;
            }
            "--lock-graph" => {
                lock_graph = true;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--allow" | "--deny" => {
                let level = if args[i] == "--allow" {
                    Level::Allow
                } else {
                    Level::Error
                };
                let id = match value_of(&args, i) {
                    Ok(r) => r,
                    Err(e) => return fail(&e),
                };
                if rule(&id).is_none() {
                    return fail(&format!("unknown rule '{id}' (try --list-rules)"));
                }
                cfg.set_level(&id, level);
                i += 2;
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<7} {:<28} {}", r.severity.to_string(), r.id, r.summary);
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return 0;
            }
            other => return fail(&format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    if lock_graph {
        if !targets.is_empty() {
            return fail("--lock-graph takes no lint targets");
        }
        return run_lock_graph(check);
    }
    if check {
        return fail("--check requires --lock-graph");
    }
    if targets.is_empty() {
        targets.extend(BenchmarkId::ALL.into_iter().map(Target::Bench));
    }

    // With --reduce, lint what the reduction-tier compile paths would
    // actually serve. Invalid machines are linted as-is: the reduction
    // passes assume well-formed input, and the validation findings are
    // the interesting diagnostics anyway.
    let lint = |a: &azoo_core::Automaton| -> Vec<Diagnostic> {
        if reduce && a.validate().is_ok() {
            analyze_with(&azoo_passes::reduce(a).0, &cfg)
        } else {
            analyze_with(a, &cfg)
        }
    };

    let mut json_targets: Vec<Json> = Vec::new();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for target in &targets {
        let (name, diags) = match target {
            Target::Mnrl(path) => {
                let diags = match std::fs::read_to_string(path) {
                    Err(e) => return fail(&format!("cannot read {path}: {e}")),
                    Ok(text) => match mnrl::from_json(&text) {
                        Ok(a) => lint(&a),
                        Err(e) => core_error_diagnostics(&e, &cfg),
                    },
                };
                (path.clone(), diags)
            }
            Target::Bench(id) => {
                let bench = id.build(scale);
                (id.name().to_owned(), lint(&bench.automaton))
            }
        };
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = diags.len() - errors;
        total_errors += errors;
        total_warnings += warnings;
        if json {
            json_targets.push(Json::Obj(vec![
                ("name".into(), Json::Str(name)),
                (
                    "diagnostics".into(),
                    Json::Arr(diags.iter().map(Diagnostic::to_json).collect()),
                ),
                ("errors".into(), Json::Int(errors as i64)),
                ("warnings".into(), Json::Int(warnings as i64)),
            ]));
        } else if diags.is_empty() {
            println!("{name}: clean");
        } else {
            println!("{name}: {errors} error(s), {warnings} warning(s)");
            for d in &diags {
                println!("  {d}");
            }
        }
    }
    if json {
        let doc = Json::Obj(vec![
            ("targets".into(), Json::Arr(json_targets)),
            ("errors".into(), Json::Int(total_errors as i64)),
            ("warnings".into(), Json::Int(total_warnings as i64)),
        ]);
        println!("{}", doc.pretty());
    } else {
        println!(
            "{} target(s): {total_errors} error(s), {total_warnings} warning(s)",
            targets.len()
        );
    }
    i32::from(total_errors > 0)
}

/// `--lock-graph`: drives every concurrent subsystem in-process so their
/// lock acquisitions land in azoo-sync's global registry, then dumps the
/// observed acquisition graph. With `--check`, a cycle (a latent
/// lock-ordering deadlock that no single run needs to hit) exits 2.
///
/// Edges are recorded in release builds too — enforcement (the
/// inversion panic) is debug-only, observation is not — so this works
/// on the optimized binary CI actually ships.
fn run_lock_graph(check: bool) -> i32 {
    exercise_concurrency();
    let g = azoo_sync::graph::snapshot();
    print!("{}", g.to_text());
    if check && !g.cycles().is_empty() {
        eprintln!("azoo-lint: lock-acquisition graph has a cycle");
        return 2;
    }
    0
}

/// Touches each lock-nesting path the workspace actually has: database
/// compile + engine pool churn, concurrent cache resolution, the scan
/// service's session lifecycle across threads (including the
/// feed-deadline cancellation path, which checks the executor back in
/// while the session lock is held), and the parallel scanner's shared
/// merge accumulator.
fn exercise_concurrency() {
    use azoo_engines::{CollectSink, Engine, ParallelScanner};
    use azoo_serve::{Db, DbCache, DbConfig, ScanService, ServeLimits};
    use std::sync::Arc;
    use std::time::Duration;

    let mut a = azoo_core::Automaton::new();
    let s = a.add_ste(
        azoo_core::SymbolClass::from_byte(b'a'),
        azoo_core::StartKind::AllInput,
    );
    let t = a.add_ste(
        azoo_core::SymbolClass::from_byte(b'b'),
        azoo_core::StartKind::None,
    );
    a.add_edge(s, t);
    a.set_report(t, 1);

    // Cache: concurrent artifact resolution (DB_CACHE, bare).
    let db = Db::compile(a.clone(), DbConfig::default()).expect("compile");
    let bytes = db.serialize();
    let cache = Arc::new(DbCache::new());
    let loaders: Vec<_> = (0..4)
        .map(|_| {
            let (cache, bytes) = (cache.clone(), bytes.clone());
            std::thread::spawn(move || {
                cache.get_or_load(&bytes).expect("artifact loads");
            })
        })
        .collect();
    for h in loaders {
        h.join().expect("loader thread");
    }

    // Service: full session lifecycle across threads. close() holds the
    // session lock across engine check-in (→ DB_POOL) and tenant
    // release (→ SERVE_TENANTS) — the workspace's two nested chains.
    let svc = ScanService::new(ServeLimits::default());
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let (svc, db) = (svc.clone(), db.clone());
            std::thread::spawn(move || {
                let tenant = format!("tenant-{w}");
                let sid = svc.open(&tenant, &db).expect("open");
                svc.feed(sid, b"xabxab", false).expect("feed");
                svc.feed(sid, b"", true).expect("eod");
                svc.drain(sid).expect("drain");
                svc.close(sid).expect("close");
            })
        })
        .collect();
    for h in workers {
        h.join().expect("service thread");
    }

    // Deadline cancellation: a zero feed deadline forces the timeout
    // path, which also checks the executor in under the session lock.
    let strict = ScanService::new(ServeLimits {
        feed_deadline: Some(Duration::ZERO),
        ..ServeLimits::default()
    });
    let sid = strict.open("t", &db).expect("open");
    let _ = strict.feed(sid, b"ab", false); // TimedOut (or a 0ns feed)
    let _ = strict.close(sid);

    // Parallel scanner: workers append batches into the shared
    // ENGINE_MERGE accumulator.
    let mut scanner = ParallelScanner::new(&a, 4).expect("scanner");
    let mut sink = CollectSink::new();
    scanner.scan(&b"ab".repeat(512), &mut sink);
}

/// Renders a frontend (parse/validation) failure as diagnostics,
/// honouring rule overrides.
fn core_error_diagnostics(e: &azoo_core::CoreError, cfg: &LintConfig) -> Vec<Diagnostic> {
    let (rule_id, state) = rule_for_core_error(e);
    let default = rule(rule_id).map_or(Severity::Error, |r| r.severity);
    match cfg.effective(rule_id, default) {
        None => Vec::new(),
        Some(severity) => vec![Diagnostic {
            rule: rule_id,
            severity,
            state,
            message: e.to_string(),
        }],
    }
}

//! `azoo-lint` — static analysis over MNRL files and zoo benchmarks.
//!
//! ```text
//! azoo-lint [TARGETS] [OPTIONS]
//!
//! Targets (default: --bench all):
//!   --mnrl FILE     lint an MNRL JSON file (repeatable)
//!   --bench NAME    lint a generated zoo benchmark (repeatable; `all`
//!                   lints every benchmark; names match Table I rows,
//!                   case- and punctuation-insensitively: `snort`,
//!                   `random-forest-a`, `hamming-18x3`, ...)
//!
//! Options:
//!   --scale S       benchmark scale: tiny (default) | small | full
//!   --reduce        run the reduction tier first and lint the reduced
//!                   automaton (what `--reduce` compile paths serve)
//!   --json          machine-readable JSON report on stdout
//!   --allow RULE    suppress a rule (repeatable)
//!   --deny RULE     promote a rule to Error (repeatable)
//!   --list-rules    print the rule registry and exit
//!
//! Exit status: 0 clean (warnings allowed), 1 any Error-level finding,
//! 2 usage or I/O error.
//! ```

use azoo_analyze::{analyze_with, rule, rule_for_core_error, Diagnostic, Severity};
use azoo_analyze::{Level, LintConfig, RULES};
use azoo_core::json::Json;
use azoo_core::mnrl;
use azoo_zoo::{BenchmarkId, Scale};

fn main() {
    std::process::exit(run());
}

fn fail(msg: &str) -> i32 {
    eprintln!("azoo-lint: {msg}");
    2
}

fn usage() -> String {
    "usage: azoo-lint [--mnrl FILE]... [--bench NAME|all]... \
     [--scale tiny|small|full] [--reduce] [--json] [--allow RULE]... \
     [--deny RULE]... [--list-rules]"
        .into()
}

/// Case- and punctuation-insensitive benchmark name key.
fn slug(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

fn find_benchmark(name: &str) -> Option<BenchmarkId> {
    BenchmarkId::ALL
        .into_iter()
        .find(|id| slug(id.name()) == slug(name))
}

enum Target {
    Mnrl(String),
    Bench(BenchmarkId),
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().collect();
    let mut targets: Vec<Target> = Vec::new();
    let mut cfg = LintConfig::new();
    let mut scale = Scale::Tiny;
    let mut json = false;
    let mut reduce = false;
    let mut i = 1;
    let value_of = |args: &[String], i: usize| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{} needs a value\n{}", args[i], usage()))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--mnrl" => {
                match value_of(&args, i) {
                    Ok(f) => targets.push(Target::Mnrl(f)),
                    Err(e) => return fail(&e),
                }
                i += 2;
            }
            "--bench" => {
                let name = match value_of(&args, i) {
                    Ok(n) => n,
                    Err(e) => return fail(&e),
                };
                if slug(&name) == "all" {
                    targets.extend(BenchmarkId::ALL.into_iter().map(Target::Bench));
                } else {
                    match find_benchmark(&name) {
                        Some(id) => targets.push(Target::Bench(id)),
                        None => return fail(&format!("unknown benchmark '{name}'")),
                    }
                }
                i += 2;
            }
            "--scale" => {
                scale = match value_of(&args, i).as_deref() {
                    Ok("tiny") => Scale::Tiny,
                    Ok("small") => Scale::Small,
                    Ok("full") => Scale::Full,
                    Ok(other) => return fail(&format!("unknown scale '{other}'")),
                    Err(e) => return fail(e),
                };
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--reduce" => {
                reduce = true;
                i += 1;
            }
            "--allow" | "--deny" => {
                let level = if args[i] == "--allow" {
                    Level::Allow
                } else {
                    Level::Error
                };
                let id = match value_of(&args, i) {
                    Ok(r) => r,
                    Err(e) => return fail(&e),
                };
                if rule(&id).is_none() {
                    return fail(&format!("unknown rule '{id}' (try --list-rules)"));
                }
                cfg.set_level(&id, level);
                i += 2;
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<7} {:<28} {}", r.severity.to_string(), r.id, r.summary);
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return 0;
            }
            other => return fail(&format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    if targets.is_empty() {
        targets.extend(BenchmarkId::ALL.into_iter().map(Target::Bench));
    }

    // With --reduce, lint what the reduction-tier compile paths would
    // actually serve. Invalid machines are linted as-is: the reduction
    // passes assume well-formed input, and the validation findings are
    // the interesting diagnostics anyway.
    let lint = |a: &azoo_core::Automaton| -> Vec<Diagnostic> {
        if reduce && a.validate().is_ok() {
            analyze_with(&azoo_passes::reduce(a).0, &cfg)
        } else {
            analyze_with(a, &cfg)
        }
    };

    let mut json_targets: Vec<Json> = Vec::new();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for target in &targets {
        let (name, diags) = match target {
            Target::Mnrl(path) => {
                let diags = match std::fs::read_to_string(path) {
                    Err(e) => return fail(&format!("cannot read {path}: {e}")),
                    Ok(text) => match mnrl::from_json(&text) {
                        Ok(a) => lint(&a),
                        Err(e) => core_error_diagnostics(&e, &cfg),
                    },
                };
                (path.clone(), diags)
            }
            Target::Bench(id) => {
                let bench = id.build(scale);
                (id.name().to_owned(), lint(&bench.automaton))
            }
        };
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = diags.len() - errors;
        total_errors += errors;
        total_warnings += warnings;
        if json {
            json_targets.push(Json::Obj(vec![
                ("name".into(), Json::Str(name)),
                (
                    "diagnostics".into(),
                    Json::Arr(diags.iter().map(Diagnostic::to_json).collect()),
                ),
                ("errors".into(), Json::Int(errors as i64)),
                ("warnings".into(), Json::Int(warnings as i64)),
            ]));
        } else if diags.is_empty() {
            println!("{name}: clean");
        } else {
            println!("{name}: {errors} error(s), {warnings} warning(s)");
            for d in &diags {
                println!("  {d}");
            }
        }
    }
    if json {
        let doc = Json::Obj(vec![
            ("targets".into(), Json::Arr(json_targets)),
            ("errors".into(), Json::Int(total_errors as i64)),
            ("warnings".into(), Json::Int(total_warnings as i64)),
        ]);
        println!("{}", doc.pretty());
    } else {
        println!(
            "{} target(s): {total_errors} error(s), {total_warnings} warning(s)",
            targets.len()
        );
    }
    i32::from(total_errors > 0)
}

/// Renders a frontend (parse/validation) failure as diagnostics,
/// honouring rule overrides.
fn core_error_diagnostics(e: &azoo_core::CoreError, cfg: &LintConfig) -> Vec<Diagnostic> {
    let (rule_id, state) = rule_for_core_error(e);
    let default = rule(rule_id).map_or(Severity::Error, |r| r.severity);
    match cfg.effective(rule_id, default) {
        None => Vec::new(),
        Some(severity) => vec![Diagnostic {
            rule: rule_id,
            severity,
            state,
            message: e.to_string(),
        }],
    }
}

//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Each binary regenerates one artifact of the AutomataZoo paper:
//!
//! | binary     | artifact |
//! |------------|----------|
//! | `table1`   | Table I — the 25-row benchmark-suite statistics table |
//! | `table2`   | Table II — Random Forest variant trade-offs |
//! | `table3`   | Table III — AP-padding overhead on CPU engines |
//! | `table4`   | Table IV — Random Forest throughput across engines |
//! | `fig1`     | Figure 1 + Table V — profile-driven mesh pruning |
//! | `section5` | Section V — Snort rule-filtering report-rate drops |
//! | `ablation` | DESIGN.md §7 — pass/engine/striding ablations |
//! | `azoo-serve` | the multi-tenant streaming scan server (README "Serving") |
//! | `azoo-loadgen` | load generator / smoke client for `azoo-serve` |
//!
//! `table4` and `section5` accept `--metrics-json <path>` to export
//! their scan counters in the same `azoo-serve-metrics-v1` schema the
//! service emits, so one set of tooling reads both offline runs and
//! server snapshots.
//!
//! All table/figure binaries accept `--scale tiny|small|full` (default `small`);
//! `table1`, `table4`, `section5`, and `ablation` also accept
//! `--threads N` to scan with the multi-threaded [`ParallelScanner`]
//! (default 1 = the single-threaded engines). `table1`, `table4`, and
//! `section5` additionally accept `--prefilter` to route the timed
//! scans through the literal-prefilter engine
//! ([`PrefilterEngine`] single-threaded,
//! [`ParallelScanner::with_prefilter`] with `--threads N`); the
//! report stream is byte-identical either way.
//!
//! [`ParallelScanner`]: azoo_engines::ParallelScanner
//! [`ParallelScanner::with_prefilter`]: azoo_engines::ParallelScanner::with_prefilter
//! [`PrefilterEngine`]: azoo_engines::PrefilterEngine

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use std::time::Instant;

use azoo_engines::{Engine, NullSink, ReportSink};
use azoo_zoo::Scale;

/// Parses `--scale` from argv; defaults to [`Scale::Small`].
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match arg_value(&args, "--scale").as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some("small") | None => Scale::Small,
        Some(other) => {
            eprintln!("unknown scale '{other}', using small");
            Scale::Small
        }
    }
}

/// Parses `--threads` from `args`; defaults to 1 (single-threaded).
/// Zero and unparsable values also fall back to 1.
pub fn threads_from_args(args: &[String]) -> usize {
    arg_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Extracts the value following a `--flag` in argv.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// True when a bare `--flag` is present in argv.
pub fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Writes `registry` as `azoo-serve-metrics-v1` JSON to the path given
/// by `--metrics-json`, if the flag is present. Errors are reported to
/// stderr, not fatal: metrics export never fails a table run.
pub fn write_metrics_json(args: &[String], registry: &azoo_serve::MetricsRegistry) {
    if let Some(path) = arg_value(args, "--metrics-json") {
        let mut text = registry.to_json_string();
        text.push('\n');
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("metrics JSON written to {path}"),
            Err(e) => eprintln!("failed to write metrics JSON to {path}: {e}"),
        }
    }
}

/// Times one engine scan; returns `(seconds, MB/s)`.
pub fn time_scan(engine: &mut dyn Engine, input: &[u8]) -> (f64, f64) {
    let mut sink = NullSink::new();
    let t = Instant::now();
    engine.scan(input, &mut sink);
    let secs = t.elapsed().as_secs_f64();
    (secs, input.len() as f64 / secs / 1e6)
}

/// Times one engine scan with a custom sink; returns seconds.
pub fn time_scan_with(engine: &mut dyn Engine, input: &[u8], sink: &mut dyn ReportSink) -> f64 {
    let t = Instant::now();
    engine.scan(input, sink);
    t.elapsed().as_secs_f64()
}

/// A minimal fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Starts a table and prints the header row.
    pub fn new(headers: &[(&str, usize)]) -> Table {
        let widths: Vec<usize> = headers.iter().map(|(_, w)| *w).collect();
        let mut line = String::new();
        for ((h, _), w) in headers.iter().zip(&widths) {
            line.push_str(&format!("{h:>w$}  "));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len()));
        Table { widths }
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:>w$}  "));
        }
        println!("{line}");
    }
}

/// Human-formats a count with thousands separators.
pub fn fmt_count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(2374717), "2,374,717");
    }

    #[test]
    fn threads_default_and_parse() {
        let args: Vec<String> = ["bin", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(threads_from_args(&args), 4);
        let none: Vec<String> = vec!["bin".into()];
        assert_eq!(threads_from_args(&none), 1);
        let zero: Vec<String> = ["bin", "--threads", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(threads_from_args(&zero), 1);
    }

    #[test]
    fn arg_value_finds_flag() {
        let args: Vec<String> = ["bin", "--scale", "full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale").as_deref(), Some("full"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }

    #[test]
    fn flag_present_detects_bare_flags() {
        let args: Vec<String> = ["bin", "--prefilter", "--scale", "tiny"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(flag_present(&args, "--prefilter"));
        assert!(!flag_present(&args, "--profile"));
    }
}

//! End-to-end behavioural tests: compiled patterns must match like the
//! regular expressions they came from.

use azoo_engines::{CollectSink, Engine, LazyDfaEngine, NfaEngine};
use azoo_regex::compile;

/// Offsets (of the final symbol of each match) reported on `input`.
fn match_offsets(pattern: &str, input: &[u8]) -> Vec<u64> {
    let a = compile(pattern, 0).unwrap();
    let mut engine = NfaEngine::new(&a).unwrap();
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    let mut nfa: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
    nfa.sort_unstable();
    nfa.dedup();
    // The lazy DFA must agree.
    let mut engine = LazyDfaEngine::new(&a).unwrap();
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    let mut dfa: Vec<u64> = sink.reports().iter().map(|r| r.offset).collect();
    dfa.sort_unstable();
    dfa.dedup();
    assert_eq!(nfa, dfa, "engines disagree on {pattern}");
    nfa
}

#[test]
fn literal_search_anywhere() {
    assert_eq!(match_offsets("ab", b"xxabxxab"), vec![3, 7]);
    assert_eq!(match_offsets("ab", b"ba"), Vec::<u64>::new());
}

#[test]
fn alternation() {
    assert_eq!(match_offsets("cat|dog", b"cat dog"), vec![2, 6]);
}

#[test]
fn optional_and_star() {
    // colou?r
    assert_eq!(match_offsets("colou?r", b"color colour"), vec![4, 11]);
    // ab*c matches ac, abc, abbc...
    assert_eq!(match_offsets("ab*c", b"ac abc abbbc"), vec![1, 5, 11]);
}

#[test]
fn plus_requires_one() {
    assert_eq!(match_offsets("ab+c", b"ac abc abbc"), vec![5, 10]);
}

#[test]
fn counted_repetition() {
    assert_eq!(match_offsets("a{3}", b"aa aaa aaaa"), vec![5, 9, 10]);
    assert_eq!(match_offsets("ba{1,2}b", b"bab baab baaab"), vec![2, 7]);
    assert_eq!(match_offsets("a{2,}b", b"ab aab aaab"), vec![5, 10]);
}

#[test]
fn character_classes() {
    assert_eq!(match_offsets("[0-9]+%", b"50% a% 7%"), vec![2, 8]);
    assert_eq!(match_offsets(r"[^a]x", b"ax bx"), vec![4]);
    assert_eq!(match_offsets(r"\d\d", b"a12b3"), vec![2]);
    assert_eq!(match_offsets(r"\w+@\w+", b"hi bob@box now"), vec![7, 8, 9]);
}

#[test]
fn dot_and_dotall() {
    assert_eq!(match_offsets("a.c", b"abc a\nc axc"), vec![2, 10]);
    assert_eq!(match_offsets("/a.c/s", b"abc a\nc"), vec![2, 6]);
}

#[test]
fn case_insensitive_flag() {
    assert_eq!(match_offsets("/AbC/i", b"abc ABC aBc"), vec![2, 6, 10]);
    assert_eq!(match_offsets("AbC", b"abc ABC AbC"), vec![10]);
}

#[test]
fn anchors_constrain_matches() {
    assert_eq!(match_offsets("^ab", b"abab"), vec![1]);
    assert_eq!(match_offsets("ab$", b"abab"), vec![3]);
    assert_eq!(match_offsets("^ab$", b"ab"), vec![1]);
    assert_eq!(match_offsets("^ab$", b"abx"), Vec::<u64>::new());
}

#[test]
fn groups_and_nesting() {
    assert_eq!(match_offsets("(ab)+c", b"abc ababc abac"), vec![2, 8]);
    assert_eq!(match_offsets("a(b|cd)e", b"abe acde"), vec![2, 7]);
    assert_eq!(match_offsets("(?:xy){2}", b"xyxy"), vec![3]);
}

#[test]
fn hex_escapes_and_binary() {
    assert_eq!(match_offsets(r"\x00\xff", &[0, 0xff, 0, 0xff]), vec![1, 3]);
    assert_eq!(match_offsets(r"[\x01-\x03]+", &[1, 2, 3]), vec![0, 1, 2]);
}

#[test]
fn snort_like_rule_compiles_and_matches() {
    let pattern = r"/^GET \/[a-z0-9_\/]{0,64}\.php\?id=\d{1,5}/i";
    let offsets = match_offsets(pattern, b"GET /admin/login.php?id=42 HTTP/1.1");
    assert!(!offsets.is_empty());
    let none = match_offsets(pattern, b"POST /admin/login.php?id=42");
    assert!(none.is_empty());
}

#[test]
fn overlapping_matches_all_reported() {
    // "aa" in "aaaa" ends at offsets 1, 2, 3.
    assert_eq!(match_offsets("aa", b"aaaa"), vec![1, 2, 3]);
}

//! Pattern syntax tree.

use azoo_core::SymbolClass;

/// Pattern flags from `/pattern/flags` notation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// `i`: ASCII case-insensitive matching.
    pub case_insensitive: bool,
    /// `s`: `.` also matches `\n`.
    pub dot_all: bool,
    /// `m`: accepted for compatibility; has no effect because only edge
    /// anchors are supported.
    pub multiline: bool,
}

/// A parsed pattern: syntax tree plus anchoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The pattern body.
    pub ast: Ast,
    /// Whether the pattern began with `^`.
    pub anchored_start: bool,
    /// Whether the pattern ended with `$`.
    pub anchored_end: bool,
    /// Flags the pattern was parsed with.
    pub flags: Flags,
}

/// Regular-expression syntax tree over byte classes.
///
/// Quantifiers are normalized at parse time into `Star`, `Alt`-with-
/// `Empty`, and duplication, so the compiler only sees these five forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one input symbol from the class.
    Class(SymbolClass),
    /// Matches the concatenation of the children.
    Concat(Vec<Ast>),
    /// Matches any one child.
    Alt(Vec<Ast>),
    /// Matches zero or more repetitions of the child.
    Star(Box<Ast>),
}

impl Ast {
    /// Number of Glushkov positions (class leaves) in the tree.
    pub fn positions(&self) -> usize {
        match self {
            Ast::Empty => 0,
            Ast::Class(_) => 1,
            Ast::Concat(v) | Ast::Alt(v) => v.iter().map(Ast::positions).sum(),
            Ast::Star(n) => n.positions(),
        }
    }

    /// Whether the tree can match the empty string.
    pub fn nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::Star(_) => true,
            Ast::Class(_) => false,
            Ast::Concat(v) => v.iter().all(Ast::nullable),
            Ast::Alt(v) => v.iter().any(Ast::nullable),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn positions_count_leaves() {
        let a = Ast::Concat(vec![
            Ast::Class(SymbolClass::from_byte(b'a')),
            Ast::Star(Box::new(Ast::Class(SymbolClass::from_byte(b'b')))),
            Ast::Alt(vec![Ast::Empty, Ast::Class(SymbolClass::from_byte(b'c'))]),
        ]);
        assert_eq!(a.positions(), 3);
        assert!(!a.nullable());
    }

    #[test]
    fn nullability() {
        assert!(Ast::Empty.nullable());
        assert!(Ast::Star(Box::new(Ast::Class(SymbolClass::FULL))).nullable());
        assert!(!Ast::Class(SymbolClass::FULL).nullable());
        assert!(Ast::Concat(vec![]).nullable());
        assert!(!Ast::Alt(vec![Ast::Class(SymbolClass::FULL)]).nullable());
    }
}

//! A PCRE-subset regular-expression compiler producing homogeneous
//! automata — the open-source `pcre2mnrl` / Hyperscan front-end of the
//! AutomataZoo toolchain, reimplemented from scratch.
//!
//! The supported subset covers what the AutomataZoo rulesets need:
//! literals; escapes (`\n`, `\t`, `\xHH`, `\d`, `\w`, `\s`, ...);
//! character classes with ranges and negation; `.`; grouping; alternation;
//! the quantifiers `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`; the `^`/`$` edge
//! anchors; and the `i` (case-insensitive) and `s` (dot-all) flags in
//! `/pattern/flags` notation.
//!
//! Compilation uses the **Glushkov position construction**, which directly
//! yields homogeneous automata: every position in the pattern becomes one
//! state carrying its symbol class — exactly the STE model of ANML/MNRL.
//! Unanchored patterns produce `AllInput` start states (match-anywhere
//! search semantics); `$` maps to end-of-data-conditional reports.
//!
//! # Example
//!
//! ```
//! use azoo_engines::{CollectSink, Engine, NfaEngine};
//! use azoo_regex::compile;
//!
//! let a = compile("/colou?r/i", 7)?;
//! let mut engine = NfaEngine::new(&a).unwrap();
//! let mut sink = CollectSink::new();
//! engine.scan(b"COLOR and colour", &mut sink);
//! assert_eq!(sink.reports().len(), 2);
//! # Ok::<(), azoo_regex::RegexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
mod ast;
mod compile;
mod parser;

pub use ast::{Ast, Flags, Pattern};
pub use compile::{compile, compile_pattern, compile_ruleset, Ruleset};
pub use parser::parse;

/// Errors raised while parsing or compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegexError {
    /// Syntax error at byte offset, with a description.
    Syntax {
        /// Byte offset in the pattern text.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// The construct is valid PCRE but outside the supported subset
    /// (back-references, look-around, mid-pattern anchors, ...).
    Unsupported {
        /// Byte offset in the pattern text.
        at: usize,
        /// The unsupported construct.
        construct: String,
    },
    /// The pattern can match the empty string, which has no homogeneous
    /// automaton representation (a report must consume a symbol).
    MatchesEmpty,
    /// Quantifier expansion would exceed the position budget.
    TooLarge {
        /// Number of positions required.
        positions: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::Syntax { at, message } => {
                write!(f, "syntax error at offset {at}: {message}")
            }
            RegexError::Unsupported { at, construct } => {
                write!(f, "unsupported construct at offset {at}: {construct}")
            }
            RegexError::MatchesEmpty => {
                write!(f, "pattern matches the empty string")
            }
            RegexError::TooLarge { positions, limit } => {
                write!(
                    f,
                    "pattern needs {positions} positions, exceeding the limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for RegexError {}

/// Maximum number of Glushkov positions a single pattern may expand to.
pub const MAX_POSITIONS: usize = 65_536;

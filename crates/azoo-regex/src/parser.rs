//! Recursive-descent parser for the PCRE subset.

use azoo_core::SymbolClass;

use crate::ast::{Ast, Flags, Pattern};
use crate::{RegexError, MAX_POSITIONS};

/// Parses a pattern, in either bare (`abc+`) or delimited (`/abc+/i`)
/// notation.
///
/// # Errors
///
/// Returns [`RegexError::Syntax`] for malformed patterns,
/// [`RegexError::Unsupported`] for constructs outside the subset
/// (back-references, look-around, word boundaries, inline flags,
/// mid-pattern anchors), and [`RegexError::TooLarge`] if quantifier
/// expansion exceeds [`MAX_POSITIONS`].
pub fn parse(text: &str) -> Result<Pattern, RegexError> {
    let (body, mut flags) = split_delimited(text)?;
    // Leading inline flag groups `(?ism)` (common in rule exports).
    let mut body = body;
    while let Some(rest) = body.strip_prefix("(?") {
        let Some(end) = rest.find(')') else { break };
        let letters = &rest[..end];
        if letters.is_empty() || !letters.chars().all(|c| "ism".contains(c)) {
            break; // a real group, not an inline flag set
        }
        for c in letters.chars() {
            match c {
                'i' => flags.case_insensitive = true,
                's' => flags.dot_all = true,
                _ => flags.multiline = true,
            }
        }
        body = &rest[end + 1..];
    }
    let mut parser = Parser {
        bytes: body.as_bytes(),
        pos: 0,
        flags,
        anchored_start: false,
        anchored_end: false,
    };
    if parser.peek() == Some(b'^') {
        parser.pos += 1;
        parser.anchored_start = true;
    }
    let ast = parser.parse_alt()?;
    if parser.pos != parser.bytes.len() {
        return Err(RegexError::Syntax {
            at: parser.pos,
            message: "unexpected character (unbalanced ')'?)".into(),
        });
    }
    Ok(Pattern {
        ast,
        anchored_start: parser.anchored_start,
        anchored_end: parser.anchored_end,
        flags,
    })
}

fn split_delimited(text: &str) -> Result<(&str, Flags), RegexError> {
    if !text.starts_with('/') {
        return Ok((text, Flags::default()));
    }
    let end = text.rfind('/').expect("starts with '/'");
    if end == 0 {
        return Err(RegexError::Syntax {
            at: text.len(),
            message: "missing closing '/'".into(),
        });
    }
    let mut flags = Flags::default();
    for (i, f) in text[end + 1..].char_indices() {
        match f {
            'i' => flags.case_insensitive = true,
            's' => flags.dot_all = true,
            'm' => flags.multiline = true,
            other => {
                return Err(RegexError::Unsupported {
                    at: end + 1 + i,
                    construct: format!("flag '{other}'"),
                })
            }
        }
    }
    Ok((&text[1..end], flags))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    flags: Flags,
    anchored_start: bool,
    anchored_end: bool,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn syntax<T>(&self, message: impl Into<String>) -> Result<T, RegexError> {
        Err(RegexError::Syntax {
            at: self.pos,
            message: message.into(),
        })
    }

    fn unsupported<T>(&self, construct: impl Into<String>) -> Result<T, RegexError> {
        Err(RegexError::Unsupported {
            at: self.pos,
            construct: construct.into(),
        })
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                Some(b'$') => {
                    if self.pos + 1 == self.bytes.len() {
                        self.pos += 1;
                        self.anchored_end = true;
                        break;
                    }
                    return self.unsupported("mid-pattern '$' anchor");
                }
                Some(b'^') => return self.unsupported("mid-pattern '^' anchor"),
                _ => {
                    let atom = self.parse_atom()?;
                    let atom = self.parse_quantifier(atom)?;
                    parts.push(atom);
                }
            }
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump().expect("caller checked non-empty") {
            b'(' => {
                if self.peek() == Some(b'?') {
                    // (?:...) is supported; every other (?...) form is not.
                    if self.bytes.get(self.pos + 1) == Some(&b':') {
                        self.pos += 2;
                    } else {
                        return self.unsupported("(?...) group");
                    }
                }
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return self.syntax("missing ')'");
                }
                Ok(inner)
            }
            b'[' => {
                let class = self.parse_class()?;
                Ok(Ast::Class(self.fold(class)))
            }
            b'.' => {
                let mut c = SymbolClass::FULL;
                if !self.flags.dot_all {
                    c.remove(b'\n');
                }
                Ok(Ast::Class(c))
            }
            b'\\' => {
                let class = self.parse_escape(false)?;
                Ok(Ast::Class(self.fold(class)))
            }
            b'*' | b'+' | b'?' => self.syntax("quantifier with nothing to repeat"),
            b @ (b'{' | b'}' | b']') => Ok(Ast::Class(self.fold(SymbolClass::from_byte(b)))),
            b => Ok(Ast::Class(self.fold(SymbolClass::from_byte(b)))),
        }
    }

    fn fold(&self, c: SymbolClass) -> SymbolClass {
        if self.flags.case_insensitive {
            c.ascii_case_fold()
        } else {
            c
        }
    }

    /// Parses one escape sequence (after the `\`). `in_class` selects the
    /// class-context interpretation of `\b` (backspace).
    fn parse_escape(&mut self, in_class: bool) -> Result<SymbolClass, RegexError> {
        let Some(b) = self.bump() else {
            return self.syntax("dangling '\\'");
        };
        let single = |b: u8| Ok(SymbolClass::from_byte(b));
        match b {
            b'n' => single(b'\n'),
            b'r' => single(b'\r'),
            b't' => single(b'\t'),
            b'f' => single(0x0c),
            b'v' => single(0x0b),
            b'0' => single(0),
            b'a' => single(0x07),
            b'e' => single(0x1b),
            b'd' => Ok(SymbolClass::from_range(b'0', b'9')),
            b'D' => Ok(SymbolClass::from_range(b'0', b'9').complement()),
            b'w' => Ok(word_class()),
            b'W' => Ok(word_class().complement()),
            b's' => Ok(space_class()),
            b'S' => Ok(space_class().complement()),
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                single(hi * 16 + lo)
            }
            b'b' if in_class => single(0x08),
            b'b' | b'B' => self.unsupported("word-boundary assertion"),
            b'A' | b'z' | b'Z' | b'G' => self.unsupported("\\-anchor assertion"),
            b'1'..=b'9' => self.unsupported("back-reference"),
            b'p' | b'P' => self.unsupported("unicode property class"),
            other => single(other),
        }
    }

    fn hex_digit(&mut self) -> Result<u8, RegexError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => self.syntax("expected hex digit"),
        }
    }

    fn parse_class(&mut self) -> Result<SymbolClass, RegexError> {
        let mut negate = false;
        if self.peek() == Some(b'^') {
            negate = true;
            self.pos += 1;
        }
        let mut class = SymbolClass::new();
        let mut first = true;
        loop {
            let Some(b) = self.bump() else {
                return self.syntax("unterminated character class");
            };
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo_class = if b == b'\\' {
                self.parse_escape(true)?
            } else {
                SymbolClass::from_byte(b)
            };
            // Range? Only when the left side is a single literal byte.
            if self.peek() == Some(b'-')
                && self.bytes.get(self.pos + 1).is_some_and(|&n| n != b']')
                && lo_class.len() == 1
            {
                self.pos += 1; // consume '-'
                let rb = self.bump().expect("peeked above");
                let hi_class = if rb == b'\\' {
                    self.parse_escape(true)?
                } else {
                    SymbolClass::from_byte(rb)
                };
                if hi_class.len() != 1 {
                    return self.syntax("invalid range endpoint");
                }
                let lo = lo_class.iter().next().expect("len 1");
                let hi = hi_class.iter().next().expect("len 1");
                if lo > hi {
                    return self.syntax("reversed range");
                }
                class = class.union(&SymbolClass::from_range(lo, hi));
            } else {
                class = class.union(&lo_class);
            }
        }
        if negate {
            class = class.complement();
        }
        if class.is_empty() {
            return self.syntax("empty character class");
        }
        Ok(class)
    }

    fn parse_quantifier(&mut self, atom: Ast) -> Result<Ast, RegexError> {
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                (0, None)
            }
            Some(b'+') => {
                self.pos += 1;
                (1, None)
            }
            Some(b'?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some(b'{') => {
                match self.try_parse_counted() {
                    Some((min, max)) => (min, max),
                    None => return Ok(atom), // literal '{'
                }
            }
            _ => return Ok(atom),
        };
        // Laziness / possessiveness modifiers do not change which matches
        // exist, only which a backtracker prefers; automata report all.
        if matches!(self.peek(), Some(b'?') | Some(b'+')) {
            self.pos += 1;
        }
        if let Some(max) = max {
            if max < min {
                return self.syntax("quantifier max below min");
            }
        }
        let per = atom.positions();
        let copies = max.unwrap_or(min + 1) as usize;
        let needed = per.saturating_mul(copies.max(1));
        if needed > MAX_POSITIONS {
            return Err(RegexError::TooLarge {
                positions: needed,
                limit: MAX_POSITIONS,
            });
        }
        Ok(expand_repeat(atom, min, max))
    }

    /// Attempts `{n}`, `{n,}`, `{n,m}` starting at `{`; restores position
    /// and returns `None` if the braces are not a counted quantifier.
    fn try_parse_counted(&mut self) -> Option<(u32, Option<u32>)> {
        let save = self.pos;
        self.pos += 1; // '{'
        let Some(min) = self.parse_number() else {
            self.pos = save;
            return None;
        };
        match self.peek() {
            Some(b'}') => {
                self.pos += 1;
                Some((min, Some(min)))
            }
            Some(b',') => {
                self.pos += 1;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Some((min, None));
                }
                let Some(max) = self.parse_number() else {
                    self.pos = save;
                    return None;
                };
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    Some((min, Some(max)))
                } else {
                    self.pos = save;
                    None
                }
            }
            _ => {
                self.pos = save;
                None
            }
        }
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || self.pos - start > 6 {
            self.pos = start;
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }
}

fn word_class() -> SymbolClass {
    let mut c = SymbolClass::from_range(b'a', b'z');
    c = c.union(&SymbolClass::from_range(b'A', b'Z'));
    c = c.union(&SymbolClass::from_range(b'0', b'9'));
    c.insert(b'_');
    c
}

fn space_class() -> SymbolClass {
    SymbolClass::from_bytes(&[b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c])
}

fn expand_repeat(atom: Ast, min: u32, max: Option<u32>) -> Ast {
    match (min, max) {
        (0, Some(0)) => Ast::Empty,
        (0, None) => Ast::Star(Box::new(atom)),
        (1, None) => Ast::Concat(vec![atom.clone(), Ast::Star(Box::new(atom))]),
        (n, None) => {
            let mut parts = vec![atom.clone(); n as usize];
            parts.push(Ast::Star(Box::new(atom)));
            Ast::Concat(parts)
        }
        (0, Some(1)) => Ast::Alt(vec![Ast::Empty, atom]),
        (n, Some(m)) => {
            let mut parts = vec![atom.clone(); n as usize];
            for _ in n..m {
                parts.push(Ast::Alt(vec![Ast::Empty, atom.clone()]));
            }
            if parts.len() == 1 {
                parts.pop().expect("one part")
            } else if parts.is_empty() {
                Ast::Empty
            } else {
                Ast::Concat(parts)
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn p(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    #[test]
    fn literal_concat() {
        let pat = p("abc");
        assert_eq!(pat.ast.positions(), 3);
        assert!(!pat.anchored_start && !pat.anchored_end);
    }

    #[test]
    fn delimited_flags() {
        let pat = p("/ab/is");
        assert!(pat.flags.case_insensitive);
        assert!(pat.flags.dot_all);
        let Ast::Concat(v) = &pat.ast else { panic!() };
        let Ast::Class(c) = &v[0] else { panic!() };
        assert!(c.contains(b'A') && c.contains(b'a'));
    }

    #[test]
    fn anchors() {
        let pat = p("^ab$");
        assert!(pat.anchored_start && pat.anchored_end);
        assert_eq!(pat.ast.positions(), 2);
        assert!(matches!(parse("a^b"), Err(RegexError::Unsupported { .. })));
        assert!(matches!(parse("a$b"), Err(RegexError::Unsupported { .. })));
    }

    #[test]
    fn classes_ranges_negation() {
        let pat = p("[a-cx]");
        let Ast::Class(c) = &pat.ast else { panic!() };
        assert_eq!(c.len(), 4);
        let pat = p("[^\\x00]");
        let Ast::Class(c) = &pat.ast else { panic!() };
        assert_eq!(c.len(), 255);
        // ']' first is literal; '-' last is literal.
        let pat = p("[]a-]");
        let Ast::Class(c) = &pat.ast else { panic!() };
        assert!(c.contains(b']') && c.contains(b'a') && c.contains(b'-'));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn escapes() {
        let pat = p(r"\d\x41\\\.");
        assert_eq!(pat.ast.positions(), 4);
        let Ast::Concat(v) = &pat.ast else { panic!() };
        let Ast::Class(c) = &v[1] else { panic!() };
        assert!(c.contains(b'A'));
    }

    #[test]
    fn quantifiers_expand() {
        assert_eq!(p("a{3}").ast.positions(), 3);
        assert_eq!(p("a{2,4}").ast.positions(), 4);
        assert_eq!(p("a{2,}").ast.positions(), 3); // a a a*
        assert_eq!(p("(ab){2}").ast.positions(), 4);
        assert_eq!(p("a*?").ast.positions(), 1); // lazy accepted
        assert_eq!(p("a{x}").ast.positions(), 4); // literal braces
    }

    #[test]
    fn inline_flag_groups() {
        let pat = p("(?i)ab");
        assert!(pat.flags.case_insensitive);
        let Ast::Concat(v) = &pat.ast else { panic!() };
        let Ast::Class(c) = &v[0] else { panic!() };
        assert!(c.contains(b'A'));
        let pat = p("(?is)a.");
        assert!(pat.flags.case_insensitive && pat.flags.dot_all);
        // A non-flag (?...) construct is still rejected.
        assert!(matches!(
            parse("(?i)(?=x)"),
            Err(RegexError::Unsupported { .. })
        ));
        // (?:...) group is untouched by the flag scanner.
        assert_eq!(p("(?i)(?:ab)+").ast.positions(), 4); // ab + starred copy
    }

    #[test]
    fn unsupported_constructs() {
        for bad in [r"a\1", r"(?=a)", r"a\b", "/a/g"] {
            assert!(
                matches!(parse(bad), Err(RegexError::Unsupported { .. })),
                "{bad} should be unsupported"
            );
        }
    }

    #[test]
    fn syntax_errors() {
        for bad in ["(a", "[a", "a)", "*a", "a{3,1}", r"\x4"] {
            assert!(
                matches!(parse(bad), Err(RegexError::Syntax { .. })),
                "{bad} should be a syntax error"
            );
        }
    }

    #[test]
    fn too_large_guard() {
        assert!(matches!(
            parse("a{70000}"),
            Err(RegexError::TooLarge { .. })
        ));
    }

    #[test]
    fn dot_excludes_newline_by_default() {
        let Ast::Class(c) = p(".").ast else { panic!() };
        assert!(!c.contains(b'\n'));
        let Ast::Class(c) = p("/./s").ast else {
            panic!()
        };
        assert!(c.contains(b'\n'));
    }
}

//! Glushkov position construction: pattern → homogeneous automaton.

use azoo_core::{Automaton, StartKind, StateId, SymbolClass};

use crate::ast::{Ast, Pattern};
use crate::parser::parse;
use crate::{RegexError, MAX_POSITIONS};

/// Parses and compiles a pattern into a homogeneous automaton whose
/// reports carry `code`.
///
/// # Errors
///
/// Propagates parse errors; see [`parse`] and [`compile_pattern`].
pub fn compile(pattern: &str, code: u32) -> Result<Automaton, RegexError> {
    compile_pattern(&parse(pattern)?, code)
}

/// Compiles an already-parsed pattern.
///
/// Every class leaf becomes one STE (the Glushkov position). First
/// positions become start states — `AllInput` when unanchored, giving
/// match-anywhere semantics. Last positions report with `code`; if the
/// pattern ends in `$`, those reports are end-of-data conditional.
///
/// # Errors
///
/// * [`RegexError::MatchesEmpty`] if the pattern is nullable.
/// * [`RegexError::TooLarge`] if it has more than [`MAX_POSITIONS`]
///   positions.
pub fn compile_pattern(pattern: &Pattern, code: u32) -> Result<Automaton, RegexError> {
    if pattern.ast.nullable() {
        return Err(RegexError::MatchesEmpty);
    }
    let npos = pattern.ast.positions();
    if npos > MAX_POSITIONS {
        return Err(RegexError::TooLarge {
            positions: npos,
            limit: MAX_POSITIONS,
        });
    }
    let mut g = Glushkov {
        classes: Vec::with_capacity(npos),
        follow: vec![Vec::new(); npos],
    };
    let info = g.build(&pattern.ast);
    let mut a = Automaton::with_capacity(npos);
    let start_kind = if pattern.anchored_start {
        StartKind::StartOfData
    } else {
        StartKind::AllInput
    };
    for class in &g.classes {
        a.add_ste(*class, StartKind::None);
    }
    for &p in &info.first {
        if let azoo_core::ElementKind::Ste { start, .. } =
            &mut a.element_mut(StateId::new(p as usize)).kind
        {
            *start = start_kind;
        }
    }
    for (p, follows) in g.follow.iter().enumerate() {
        // Follow sets repeat positions under nested repetition (`(ab)+`
        // contributes b→a once per level); a duplicate edge is a no-op
        // under level-triggered activation, so emit each target once.
        let mut seen = std::collections::HashSet::new();
        for &q in follows {
            if seen.insert(q) {
                a.add_edge(StateId::new(p), StateId::new(q as usize));
            }
        }
    }
    for &p in &info.last {
        let id = StateId::new(p as usize);
        a.set_report(id, code);
        if pattern.anchored_end {
            a.set_report_eod_only(id, true);
        }
    }
    Ok(a)
}

struct Glushkov {
    classes: Vec<SymbolClass>,
    follow: Vec<Vec<u32>>,
}

struct Info {
    nullable: bool,
    first: Vec<u32>,
    last: Vec<u32>,
}

impl Glushkov {
    fn build(&mut self, ast: &Ast) -> Info {
        match ast {
            Ast::Empty => Info {
                nullable: true,
                first: Vec::new(),
                last: Vec::new(),
            },
            Ast::Class(c) => {
                let p = self.classes.len() as u32;
                self.classes.push(*c);
                Info {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Ast::Concat(parts) => {
                let mut acc = Info {
                    nullable: true,
                    first: Vec::new(),
                    last: Vec::new(),
                };
                for part in parts {
                    let info = self.build(part);
                    for &l in &acc.last {
                        self.follow[l as usize].extend_from_slice(&info.first);
                    }
                    if acc.nullable {
                        acc.first.extend_from_slice(&info.first);
                    }
                    if info.nullable {
                        acc.last.extend_from_slice(&info.last);
                    } else {
                        acc.last = info.last;
                    }
                    acc.nullable &= info.nullable;
                }
                acc
            }
            Ast::Alt(branches) => {
                let mut acc = Info {
                    nullable: false,
                    first: Vec::new(),
                    last: Vec::new(),
                };
                for branch in branches {
                    let info = self.build(branch);
                    acc.nullable |= info.nullable;
                    acc.first.extend(info.first);
                    acc.last.extend(info.last);
                }
                acc
            }
            Ast::Star(inner) => {
                let mut info = self.build(inner);
                for &l in &info.last.clone() {
                    self.follow[l as usize].extend_from_slice(&info.first);
                }
                info.nullable = true;
                info
            }
        }
    }
}

/// Result of compiling a whole ruleset with per-rule error tolerance.
///
/// AutomataZoo's methodology includes every rule "that can be successfully
/// compiled" by the open-source front end; this mirrors that: rules whose
/// patterns use unsupported constructs are recorded in `skipped` rather
/// than aborting the build.
#[derive(Debug, Clone)]
pub struct Ruleset {
    /// The union automaton; each compiled rule is one subgraph reporting
    /// its rule index.
    pub automaton: Automaton,
    /// Number of rules compiled into the automaton.
    pub compiled: usize,
    /// Rules that failed to compile, with their indices and errors.
    pub skipped: Vec<(usize, RegexError)>,
}

/// Compiles many patterns into one automaton; rule `i` reports with code
/// `i`.
pub fn compile_ruleset<'a, I>(patterns: I) -> Ruleset
where
    I: IntoIterator<Item = &'a str>,
{
    let mut automaton = Automaton::new();
    let mut compiled = 0;
    let mut skipped = Vec::new();
    for (i, p) in patterns.into_iter().enumerate() {
        match compile(p, i as u32) {
            Ok(a) => {
                automaton.append(&a);
                compiled += 1;
            }
            Err(e) => skipped.push((i, e)),
        }
    }
    Ruleset {
        automaton,
        compiled,
        skipped,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn literal_compiles_to_chain() {
        let a = compile("abc", 0).unwrap();
        assert_eq!(a.state_count(), 3);
        assert_eq!(a.edge_count(), 2);
        assert_eq!(a.start_states().len(), 1);
        assert_eq!(a.report_states().len(), 1);
        a.validate().unwrap();
    }

    #[test]
    fn alternation_fans_out_starts_and_reports() {
        let a = compile("ab|cd|e", 3).unwrap();
        assert_eq!(a.state_count(), 5);
        assert_eq!(a.start_states().len(), 3);
        assert_eq!(a.report_states().len(), 3);
    }

    #[test]
    fn star_wires_back_edges() {
        // ab*c: b follows itself.
        let a = compile("ab*c", 0).unwrap();
        assert_eq!(a.state_count(), 3);
        let b = StateId::new(1);
        assert!(a.successors(b).iter().any(|e| e.to == b));
    }

    #[test]
    fn nullable_pattern_rejected() {
        assert_eq!(compile("a*", 0), Err(RegexError::MatchesEmpty));
        assert_eq!(compile("(a?)(b?)", 0), Err(RegexError::MatchesEmpty));
    }

    #[test]
    fn anchored_pattern_uses_start_of_data() {
        let a = compile("^ab", 0).unwrap();
        assert!(a
            .start_states()
            .iter()
            .all(|&s| a.element(s).start_kind() == StartKind::StartOfData));
        let a = compile("ab$", 0).unwrap();
        assert!(a.element(a.report_states()[0]).report_eod_only);
    }

    #[test]
    fn ruleset_tolerates_bad_rules() {
        let rs = compile_ruleset(["abc", r"bad\1ref", "x+y"]);
        assert_eq!(rs.compiled, 2);
        assert_eq!(rs.skipped.len(), 1);
        assert_eq!(rs.skipped[0].0, 1);
        // Report codes are original indices.
        let codes: Vec<u32> = rs
            .automaton
            .report_states()
            .iter()
            .map(|&s| rs.automaton.element(s).report.unwrap().0)
            .collect();
        assert!(codes.contains(&0) && codes.contains(&2));
    }
}

//! Automatic reduction of divergences to minimal reproducers.
//!
//! Given a [`Divergence`], the shrinker greedily tries structural
//! simplifications — in rough order of payoff — and keeps any candidate
//! that (a) is still a valid automaton and (b) still makes the *same
//! subject* disagree with the baseline (any disagreement counts, not
//! necessarily the original one; a shrink that surfaces a simpler
//! symptom of the same bug is a better reproducer). The passes run to a
//! fixpoint:
//!
//! 1. drop the chunk plan entirely (block-mode reproducers are best);
//! 2. remove whole states ([`Automaton::retain_states`]);
//! 3. remove single edges;
//! 4. shrink multi-byte symbol classes to one byte;
//! 5. drop report codes;
//! 6. delete input bytes (ddmin-style, shrinking the covering chunk);
//! 7. merge adjacent chunks and drop mid-stream empty chunks.
//!
//! Every candidate re-runs the full comparison, so shrinking is
//! quadratic-ish in case size — fine for the tiny cases the generator
//! produces.

use azoo_core::{Automaton, Port, StateId, SymbolClass};

use crate::oracle::{compare, Divergence};

/// Shrinks `d` to a (locally) minimal divergence for the same subject.
pub fn shrink(d: &Divergence) -> Divergence {
    let mut cur = d.clone();
    let reproduces = |a: &Automaton, input: &[u8], chunks: Option<&[usize]>| -> bool {
        a.validate().is_ok() && compare(&d.subject, a, input, chunks).is_some()
    };

    // Streaming-only divergences are worth one up-front attempt in
    // block mode; if that reproduces, all chunk bookkeeping disappears.
    if cur.chunks.is_some() && reproduces(&cur.automaton, &cur.input, None) {
        cur.chunks = None;
    }

    loop {
        let mut changed = false;

        // 1. Whole states.
        for idx in (0..cur.automaton.state_count()).rev() {
            let victim = StateId::new(idx);
            let candidate = cur.automaton.retain_states(|s| s != victim);
            if reproduces(&candidate, &cur.input, cur.chunks.as_deref()) {
                cur.automaton = candidate;
                changed = true;
            }
        }

        // 2. Single edges.
        'edges: loop {
            let n = cur.automaton.state_count();
            for s in 0..n {
                let from = StateId::new(s);
                for i in 0..cur.automaton.successors(from).len() {
                    let candidate = without_edge(&cur.automaton, from, i);
                    if reproduces(&candidate, &cur.input, cur.chunks.as_deref()) {
                        cur.automaton = candidate;
                        changed = true;
                        continue 'edges;
                    }
                }
            }
            break;
        }

        // 3. Symbol classes down to one byte.
        for idx in 0..cur.automaton.state_count() {
            let id = StateId::new(idx);
            let Some(class) = cur.automaton.element(id).class() else {
                continue;
            };
            if class.len() <= 1 {
                continue;
            }
            let Some(first) = class.iter().next() else {
                continue;
            };
            let mut candidate = cur.automaton.clone();
            if let azoo_core::ElementKind::Ste { class, .. } = &mut candidate.element_mut(id).kind {
                *class = SymbolClass::from_byte(first);
            }
            if reproduces(&candidate, &cur.input, cur.chunks.as_deref()) {
                cur.automaton = candidate;
                changed = true;
            }
        }

        // 4. Report codes.
        for idx in 0..cur.automaton.state_count() {
            let id = StateId::new(idx);
            if cur.automaton.element(id).report.is_none() {
                continue;
            }
            let mut candidate = cur.automaton.clone();
            candidate.element_mut(id).report = None;
            candidate.element_mut(id).report_eod_only = false;
            if reproduces(&candidate, &cur.input, cur.chunks.as_deref()) {
                cur.automaton = candidate;
                changed = true;
            }
        }

        // 5. Input bytes (with the covering chunk shrunk alongside).
        let mut pos = 0;
        while pos < cur.input.len() {
            let mut input = cur.input.clone();
            input.remove(pos);
            let chunks = cur.chunks.as_ref().map(|plan| shrink_plan(plan, pos));
            if reproduces(&cur.automaton, &input, chunks.as_deref()) {
                cur.input = input;
                cur.chunks = chunks;
                changed = true;
            } else {
                pos += 1;
            }
        }

        // 6. Chunk-plan simplification.
        if let Some(plan) = cur.chunks.clone() {
            let mut i = 0;
            let mut plan = plan;
            while i + 1 < plan.len() {
                let mut candidate = plan.clone();
                let merged = candidate.remove(i + 1);
                candidate[i] += merged;
                if reproduces(&cur.automaton, &cur.input, Some(&candidate)) {
                    plan = candidate;
                    changed = true;
                } else {
                    i += 1;
                }
            }
            cur.chunks = Some(plan);
        }

        if !changed {
            break;
        }
    }

    // Refresh the recorded disagreement for the reduced case.
    if let Some((expected, got)) = compare(
        &d.subject,
        &cur.automaton,
        &cur.input,
        cur.chunks.as_deref(),
    ) {
        cur.expected = expected;
        cur.got = got;
    }
    cur
}

/// Rebuilds `a` without the `idx`-th successor edge of `from`.
fn without_edge(a: &Automaton, from: StateId, idx: usize) -> Automaton {
    let mut b = Automaton::with_capacity(a.state_count());
    for (_, e) in a.iter() {
        b.add_element(e.clone());
    }
    for (id, _) in a.iter() {
        for (i, edge) in a.successors(id).iter().enumerate() {
            if id == from && i == idx {
                continue;
            }
            match edge.port {
                Port::Activate => b.add_edge(id, edge.to),
                Port::Reset => b.add_reset_edge(id, edge.to),
            }
        }
    }
    b
}

/// Removes one byte (at `pos`) from the chunk plan: the chunk covering
/// `pos` shrinks by one.
fn shrink_plan(plan: &[usize], pos: usize) -> Vec<usize> {
    let mut out = plan.to_vec();
    let mut start = 0;
    for len in &mut out {
        if pos < start + *len {
            *len -= 1;
            return out;
        }
        start += *len;
    }
    // `pos` beyond the plan means the plan was already inconsistent;
    // shrink the last non-empty chunk as a fallback.
    if let Some(len) = out.iter_mut().rev().find(|l| **l > 0) {
        *len -= 1;
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::adapter::EngineKind;
    use crate::mutate::Mutation;
    use crate::oracle::Subject;
    use azoo_core::StartKind;

    #[test]
    fn without_edge_drops_exactly_one_edge() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_bytes(b"ab"), StartKind::AllInput);
        let junk = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::None);
        a.add_edge(s, junk);
        a.add_edge(junk, junk);
        a.set_report(s, 1);
        let b = without_edge(&a, s, 0);
        assert_eq!(b.edge_count(), a.edge_count() - 1);
        assert_eq!(b.state_count(), a.state_count());
        assert!(b.successors(s).is_empty());
        assert_eq!(b.successors(junk).len(), 1);
    }

    #[test]
    fn shrink_plan_shrinks_covering_chunk() {
        assert_eq!(shrink_plan(&[2, 0, 3], 0), vec![1, 0, 3]);
        assert_eq!(shrink_plan(&[2, 0, 3], 2), vec![2, 0, 2]);
        assert_eq!(shrink_plan(&[2, 0, 3], 4), vec![2, 0, 2]);
        assert_eq!(shrink_plan(&[1, 0], 5), vec![0, 0]);
    }

    /// End-to-end over the real comparison plumbing: plant the
    /// offset-off-by-one mutation, hand the shrinker a deliberately
    /// bloated witness, and require a minimal reproducer back.
    #[test]
    fn shrink_reduces_a_mutant_witness_to_the_minimum() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_bytes(b"ab"), StartKind::AllInput);
        a.set_report(s, 1);
        // Junk the mutation does not need.
        let j1 = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::None);
        let j2 = a.add_ste(SymbolClass::from_byte(b'r'), StartKind::AllInput);
        a.add_edge(s, j1);
        a.add_edge(j1, j2);
        a.set_report(j2, 7);
        let d = Divergence {
            seed: 0,
            subject: Subject::Mutation(Mutation::OffsetPlusOne),
            automaton: a.clone(),
            input: b"xxaxbxa".to_vec(),
            chunks: Some(vec![2, 0, 3, 2]),
            expected: Vec::new(),
            got: Vec::new(),
        };
        let min = shrink(&d);
        // One state, one byte, block mode.
        assert_eq!(min.automaton.state_count(), 1, "{:?}", min.automaton);
        assert_eq!(min.automaton.edge_count(), 0);
        assert_eq!(min.input.len(), 1);
        assert_eq!(min.chunks, None);
        assert_ne!(min.expected, min.got);
        // And the reduced case still diverges under the same subject.
        assert!(compare(&d.subject, &min.automaton, &min.input, None).is_some());
    }

    /// A witness whose subject does not actually diverge (the engines
    /// are clean) must come back structurally unchanged.
    #[test]
    fn clean_witness_is_not_mangled() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        a.set_report(s, 0);
        let d = Divergence {
            seed: 0,
            subject: Subject::Engine(EngineKind::NfaSkip),
            automaton: a,
            input: b"aa".to_vec(),
            chunks: Some(vec![1, 1]),
            expected: vec![(0, 0)],
            got: vec![(1, 0)],
        };
        let s = shrink(&d);
        assert_eq!(s.automaton.state_count(), d.automaton.state_count());
        assert_eq!(s.input, d.input);
        assert_eq!(s.chunks, d.chunks);
    }
}

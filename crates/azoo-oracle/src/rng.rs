//! Deterministic pseudo-random generator for the oracle.
//!
//! The workspace builds offline and the oracle's only requirement is
//! *reproducibility*: a seed printed in a failure report must regenerate
//! the exact automaton, input, and chunk plan on any machine. An
//! xorshift64\* generator (seeded through a splitmix64 scramble so
//! consecutive seeds diverge immediately) is plenty; statistical quality
//! beyond that is irrelevant here.

/// Deterministic xorshift64\* generator.
#[derive(Debug, Clone)]
pub struct OracleRng(u64);

impl OracleRng {
    /// Creates a generator from a seed. Distinct seeds — including
    /// consecutive integers — produce unrelated streams.
    pub fn new(seed: u64) -> Self {
        // One splitmix64 round decorrelates neighbouring seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        OracleRng((z ^ (z >> 31)) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = OracleRng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = OracleRng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn neighbouring_seeds_diverge() {
        let mut a = OracleRng::new(1);
        let mut b = OracleRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = OracleRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}

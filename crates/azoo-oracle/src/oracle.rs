//! The differential oracle proper.
//!
//! For each seed the oracle generates one automaton, one input, and a
//! handful of chunk plans, establishes ground truth with the reference
//! engine ([`NfaEngine`](azoo_engines::NfaEngine) with quiescent skip
//! disabled, whole-input scan), and then demands byte-identical report
//! streams from every applicable engine in every mode — block and
//! streaming under each plan — and from the reference re-run across
//! every semantics-preserving pass under that pass's
//! [`InputMap`](azoo_passes::InputMap). The first disagreement becomes
//! a [`Divergence`], which carries everything needed to replay it.

use azoo_core::Automaton;
use azoo_passes::{
    merge_prefixes, merge_suffixes, quotient_simulation, remove_dead, residual_merge, widen,
    InputMap,
};

use crate::adapter::{EngineKind, EngineUnderTest, Rep};
use crate::gen::{
    gen_automaton, gen_chunk_plan, gen_fuzzy_automaton, gen_fuzzy_input, gen_input, GenConfig,
};
use crate::rng::OracleRng;
use crate::shrink;

/// What the oracle exercises per seed.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Test-case generation knobs.
    pub gen: GenConfig,
    /// Engine configurations to compare against the baseline.
    pub engines: Vec<EngineKind>,
    /// Whether to also compare across semantics-preserving passes.
    pub check_passes: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            gen: GenConfig::default(),
            engines: EngineKind::default_set(),
            check_passes: true,
        }
    }
}

/// What was being compared when a divergence was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subject {
    /// An engine configuration versus the reference baseline.
    Engine(EngineKind),
    /// The reference engine on a transformed automaton versus the
    /// baseline mapped through the pass's input map.
    Pass {
        /// Pass name (`merge_prefixes`, `merge_suffixes`, `remove_dead`,
        /// `widen`, `quotient_simulation`, `residual_merge`).
        name: &'static str,
        /// The pass's input/offset convention.
        map: InputMap,
    },
    /// A deliberately planted bug (the mutation-kill self-check); lets
    /// mutant witnesses reuse the comparison and shrinking machinery.
    Mutation(crate::mutate::Mutation),
}

impl Subject {
    /// Stable display label (`engine:<label>` or `pass:<name>`).
    pub fn label(&self) -> String {
        match self {
            Subject::Engine(kind) => format!("engine:{}", kind.label()),
            Subject::Pass { name, .. } => format!("pass:{name}"),
            Subject::Mutation(m) => format!("mutation:{}", m.name()),
        }
    }
}

/// A reproduced disagreement with the reference engine.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The seed that produced the test case.
    pub seed: u64,
    /// What diverged.
    pub subject: Subject,
    /// The (pre-pass) automaton under test.
    pub automaton: Automaton,
    /// The raw (pre-map) input bytes.
    pub input: Vec<u8>,
    /// Chunk lengths if the divergence is streaming-only; `None` for a
    /// block-mode divergence.
    pub chunks: Option<Vec<usize>>,
    /// The baseline report stream (mapped through the pass's input map
    /// for pass subjects).
    pub expected: Vec<Rep>,
    /// What the subject produced instead.
    pub got: Vec<Rep>,
}

/// Ground truth: the reference NFA, quiescent skip off, whole input.
pub fn baseline(a: &Automaton, input: &[u8]) -> Vec<Rep> {
    let mut e = EngineUnderTest::build(EngineKind::NfaNoSkip, a)
        .expect("baseline automaton must be valid")
        .expect("reference engine applies to every automaton");
    e.run_block(input)
}

/// Applies a named pass, or `None` when the pass does not apply.
pub fn apply_pass(name: &str, a: &Automaton) -> Option<Automaton> {
    match name {
        "merge_prefixes" => Some(merge_prefixes(a).0),
        "merge_suffixes" => Some(merge_suffixes(a).0),
        "remove_dead" => Some(remove_dead(a)),
        "widen" => widen(a).ok(),
        "quotient_simulation" => Some(quotient_simulation(a).0),
        "residual_merge" => Some(residual_merge(a).0),
        _ => None,
    }
}

/// The passes the oracle checks, with their input maps.
pub const ORACLE_PASSES: &[(&str, InputMap)] = &[
    ("merge_prefixes", InputMap::Identity),
    ("merge_suffixes", InputMap::Identity),
    ("remove_dead", InputMap::Identity),
    ("widen", InputMap::Widen),
    ("quotient_simulation", InputMap::Identity),
    ("residual_merge", InputMap::Identity),
];

/// Compares one subject against the baseline. Returns the
/// `(expected, got)` pair on disagreement, `None` when the subject
/// agrees or does not apply to this automaton/input.
pub fn compare(
    subject: &Subject,
    a: &Automaton,
    input: &[u8],
    chunks: Option<&[usize]>,
) -> Option<(Vec<Rep>, Vec<Rep>)> {
    match subject {
        Subject::Engine(kind) => {
            let expected = baseline(a, input);
            let mut e = EngineUnderTest::build(*kind, a).ok()??;
            let got = match chunks {
                None => e.run_block(input),
                Some(plan) => e.run_chunks(input, plan),
            };
            (got != expected).then_some((expected, got))
        }
        Subject::Pass { name, map } => {
            // `widen` requires NUL-free input (NUL is the pad symbol).
            if *map == InputMap::Widen && input.contains(&0) {
                return None;
            }
            let transformed = apply_pass(name, a)?;
            if transformed.validate().is_err() {
                // An invalid output is a pass bug in its own right; the
                // analyze-layer verifier owns that diagnostic. Here it
                // simply cannot be compared.
                return None;
            }
            let expected: Vec<Rep> = baseline(a, input)
                .into_iter()
                .filter_map(|(o, c)| map.map_offset(o).map(|o| (o, c)))
                .collect();
            let got = baseline(&transformed, &map.post_input(input));
            (got != expected).then_some((expected, got))
        }
        Subject::Mutation(m) => {
            let expected = baseline(a, input);
            let got = crate::mutate::mutated_run(*m, a, input, chunks)?;
            (got != expected).then_some((expected, got))
        }
    }
}

/// Runs one seed through the full matrix. Returns the first divergence.
pub fn run_seed(seed: u64, cfg: &OracleConfig) -> Option<Divergence> {
    let mut rng = OracleRng::new(seed);
    let (a, input) = if cfg.gen.fuzzy {
        let (a, patterns) = gen_fuzzy_automaton(&mut rng, &cfg.gen);
        let input = gen_fuzzy_input(&mut rng, &cfg.gen, &patterns);
        (a, input)
    } else {
        let a = gen_automaton(&mut rng, &cfg.gen);
        let input = gen_input(&mut rng, &cfg.gen, &a);
        (a, input)
    };
    let plans: Vec<Vec<usize>> = (0..cfg.gen.chunk_plans)
        .map(|_| gen_chunk_plan(&mut rng, input.len()))
        .collect();
    let divergence = |subject: Subject, chunks: Option<&[usize]>| -> Option<Divergence> {
        compare(&subject, &a, &input, chunks).map(|(expected, got)| Divergence {
            seed,
            subject,
            automaton: a.clone(),
            input: input.clone(),
            chunks: chunks.map(<[usize]>::to_vec),
            expected,
            got,
        })
    };
    for &kind in &cfg.engines {
        if let Some(d) = divergence(Subject::Engine(kind), None) {
            return Some(d);
        }
        for plan in &plans {
            if let Some(d) = divergence(Subject::Engine(kind), Some(plan)) {
                return Some(d);
            }
        }
    }
    if cfg.check_passes {
        for &(name, map) in ORACLE_PASSES {
            if let Some(d) = divergence(Subject::Pass { name, map }, None) {
                return Some(d);
            }
        }
    }
    None
}

/// Outcome of an [`run_range`] campaign.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Seeds exercised.
    pub seeds_run: u64,
    /// Divergences found (shrunk if requested), at most one per seed.
    pub divergences: Vec<Divergence>,
}

/// Runs seeds `start .. start + count`, optionally shrinking each
/// divergence to a minimal reproducer.
pub fn run_range(start: u64, count: u64, cfg: &OracleConfig, shrink_found: bool) -> OracleReport {
    let mut report = OracleReport::default();
    for seed in start..start.saturating_add(count) {
        report.seeds_run += 1;
        if let Some(d) = run_seed(seed, cfg) {
            let d = if shrink_found { shrink::shrink(&d) } else { d };
            report.divergences.push(d);
        }
    }
    report
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn current_engines_are_oracle_clean() {
        let cfg = OracleConfig::default();
        for seed in 0..60 {
            if let Some(d) = run_seed(seed, &cfg) {
                panic!(
                    "seed {seed} diverged on {}: expected {:?}, got {:?} (chunks {:?})",
                    d.subject.label(),
                    d.expected,
                    d.got,
                    d.chunks
                );
            }
        }
    }

    #[test]
    fn run_range_counts_seeds() {
        let cfg = OracleConfig {
            gen: GenConfig {
                max_states: 4,
                ..GenConfig::default()
            },
            ..OracleConfig::default()
        };
        let report = run_range(0, 10, &cfg, false);
        assert_eq!(report.seeds_run, 10);
        assert!(report.divergences.is_empty());
    }
}

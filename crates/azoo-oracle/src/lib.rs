//! Cross-engine differential testing oracle.
//!
//! Every engine in this workspace implements the same contract: for an
//! automaton `A` and input `I`, produce the canonical report stream —
//! `(offset, code)` pairs, deduplicated per cycle per code — no matter
//! how the engine is configured or how `I` is chunked. This crate turns
//! that contract into an executable oracle:
//!
//! * [`gen`] deterministically generates small adversarial automata
//!   (counters, anchors, cycles, wildcard classes, huge report codes),
//!   inputs over their own alphabets, and chunk plans that include the
//!   degenerate shapes (empty chunks mid-stream, one-byte chunks, empty
//!   end-of-data chunks);
//! * [`adapter`] runs any engine configuration ([`EngineKind`]) behind
//!   a uniform interface;
//! * [`oracle`] compares every configuration, in block and streaming
//!   modes, against the reference NFA (quiescent skip disabled), and
//!   re-checks the reference across each semantics-preserving pass
//!   under its [`InputMap`](azoo_passes::InputMap);
//! * [`shrink`] reduces any divergence to a minimal reproducer;
//! * [`bugbank`] serializes reproducers as replayable MNRL + input +
//!   expected-report triples;
//! * [`mutate`] self-checks the oracle by planting ten deliberate bugs
//!   and requiring the campaign to kill them.
//!
//! # Example
//!
//! ```
//! use azoo_oracle::{run_range, OracleConfig};
//!
//! let report = run_range(0, 25, &OracleConfig::default(), true);
//! assert_eq!(report.seeds_run, 25);
//! assert!(report.divergences.is_empty(), "{:?}", report.divergences);
//! ```

// An oracle that panics on malformed data would mask the very bugs it
// hunts; only the baseline construction (whose failure is a harness
// bug, not an engine bug) is allowed to unwrap.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

pub mod adapter;
pub mod bugbank;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use adapter::{EngineKind, EngineUnderTest, Rep};
pub use bugbank::{load_all, BugbankEntry};
pub use gen::{
    gen_automaton, gen_chunk_plan, gen_fuzzy_automaton, gen_fuzzy_input, gen_input, GenConfig,
};
pub use mutate::{kill_check, mutate_automaton, Mutation, MutationOutcome};
pub use oracle::{
    baseline, compare, run_range, run_seed, Divergence, OracleConfig, OracleReport, Subject,
};
pub use rng::OracleRng;
pub use shrink::shrink;

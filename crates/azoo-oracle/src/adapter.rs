//! A uniform adapter over every engine in the portfolio.
//!
//! The oracle needs to run "the same scan" through heterogeneous
//! engines: some reject counters, some reject non-chain shapes, one is
//! the reference with a tunable quiescence optimization, one takes a
//! cache-size knob, one a thread count. [`EngineKind`] names a concrete
//! configuration, and [`EngineUnderTest`] erases the differences behind
//! `run_block` / `run_chunks` returning normalized `(offset, code)`
//! streams. Reports are sorted but **not** deduplicated — duplicate
//! emission is exactly the class of bug the oracle exists to catch.

use azoo_core::Automaton;
use azoo_engines::{
    BitParallelEngine, CollectSink, Engine, EngineError, LazyDfaEngine, NfaEngine, ParallelScanner,
    PrefilterEngine, ShengEngine, StreamingEngine,
};

/// One normalized report: `(offset, code)`.
pub type Rep = (u64, u32);

/// A concrete engine configuration the oracle can exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Reference NFA with the quiescent-skip optimization enabled.
    NfaSkip,
    /// Reference NFA with quiescent skip disabled (the baseline).
    NfaNoSkip,
    /// Lazy DFA; `max_states == 0` means the engine default. Tiny caches
    /// (2, 3) force constant flushing.
    LazyDfa {
        /// DFA cache bound, 0 for the default.
        max_states: usize,
    },
    /// Bit-parallel Shift-And (chain-shaped automata only).
    BitPar,
    /// Literal-prefilter gated engine with the ambient trigger (the
    /// vectorized Teddy scanner when the literal set fits and the host
    /// has SIMD, Aho–Corasick otherwise).
    Prefilter,
    /// Literal-prefilter engine with the trigger pinned to the scalar
    /// Aho–Corasick matcher. Divergence between this and [`Prefilter`]
    /// is exactly a Teddy trigger bug.
    PrefilterScalarTrigger,
    /// Sheng-style shuffle DFA (machines determinizing to at most 16
    /// states).
    Sheng,
    /// Multi-threaded component/chunk scanner.
    Parallel {
        /// Worker thread count.
        threads: usize,
        /// Whether shards are prefilter-gated.
        prefilter: bool,
    },
}

impl EngineKind {
    /// The default portfolio the oracle runs: both NFA variants, the
    /// lazy DFA at default and pathologically tiny cache sizes, and the
    /// specialized engines.
    pub fn default_set() -> Vec<EngineKind> {
        vec![
            EngineKind::NfaSkip,
            EngineKind::NfaNoSkip,
            EngineKind::LazyDfa { max_states: 0 },
            EngineKind::LazyDfa { max_states: 2 },
            EngineKind::LazyDfa { max_states: 3 },
            EngineKind::LazyDfa { max_states: 17 },
            EngineKind::BitPar,
            EngineKind::Prefilter,
            EngineKind::PrefilterScalarTrigger,
            EngineKind::Sheng,
            EngineKind::Parallel {
                threads: 2,
                prefilter: false,
            },
            EngineKind::Parallel {
                threads: 3,
                prefilter: true,
            },
            // Thread counts above the shard count drive the speculative
            // subchunk split on counter/cycle/anchor shards.
            EngineKind::Parallel {
                threads: 4,
                prefilter: false,
            },
            EngineKind::Parallel {
                threads: 8,
                prefilter: true,
            },
        ]
    }

    /// Stable textual name, used in reports, the bug bank, and
    /// `--engines` filters.
    pub fn label(&self) -> String {
        match *self {
            EngineKind::NfaSkip => "nfa".into(),
            EngineKind::NfaNoSkip => "nfa-noskip".into(),
            EngineKind::LazyDfa { max_states: 0 } => "lazydfa".into(),
            EngineKind::LazyDfa { max_states } => format!("lazydfa:{max_states}"),
            EngineKind::BitPar => "bitpar".into(),
            EngineKind::Prefilter => "prefilter".into(),
            EngineKind::PrefilterScalarTrigger => "prefilter-scalar".into(),
            EngineKind::Sheng => "sheng".into(),
            EngineKind::Parallel {
                threads,
                prefilter: false,
            } => format!("parallel:{threads}"),
            EngineKind::Parallel {
                threads,
                prefilter: true,
            } => format!("parallel-pf:{threads}"),
        }
    }

    /// Parses a [`label`](EngineKind::label)-format name.
    pub fn parse(s: &str) -> Option<EngineKind> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let num = |d: usize| -> Option<usize> {
            match arg {
                None => Some(d),
                Some(a) => a.parse().ok(),
            }
        };
        match head {
            "nfa" if arg.is_none() => Some(EngineKind::NfaSkip),
            "nfa-noskip" if arg.is_none() => Some(EngineKind::NfaNoSkip),
            "lazydfa" => Some(EngineKind::LazyDfa {
                max_states: num(0)?,
            }),
            "bitpar" if arg.is_none() => Some(EngineKind::BitPar),
            "prefilter" if arg.is_none() => Some(EngineKind::Prefilter),
            "prefilter-scalar" if arg.is_none() => Some(EngineKind::PrefilterScalarTrigger),
            "sheng" if arg.is_none() => Some(EngineKind::Sheng),
            // `parallel:0` is rejected here rather than surfacing the
            // engine's InvalidThreads later: the oracle treats build
            // errors as "engine inapplicable", which would silently
            // drop the configuration from every comparison.
            "parallel" => Some(EngineKind::Parallel {
                threads: num(2).filter(|&n| n > 0)?,
                prefilter: false,
            }),
            "parallel-pf" => Some(EngineKind::Parallel {
                threads: num(2).filter(|&n| n > 0)?,
                prefilter: true,
            }),
            _ => None,
        }
    }

    /// Parses a comma-separated engine list.
    pub fn parse_list(s: &str) -> Result<Vec<EngineKind>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| EngineKind::parse(p).ok_or_else(|| format!("unknown engine {p:?}")))
            .collect()
    }
}

enum Inner {
    Nfa(Box<NfaEngine>),
    LazyDfa(Box<LazyDfaEngine>),
    BitPar(BitParallelEngine),
    Prefilter(PrefilterEngine),
    Sheng(ShengEngine),
    Parallel(ParallelScanner),
}

/// An engine instance behind the uniform oracle interface.
pub struct EngineUnderTest {
    kind: EngineKind,
    inner: Inner,
}

impl EngineUnderTest {
    /// Compiles `a` for `kind`.
    ///
    /// Returns `Ok(None)` when the engine legitimately does not apply to
    /// this automaton (counters, non-chain shape) and `Err` only when
    /// the automaton itself is invalid — which the oracle treats as a
    /// generator bug, not an engine bug.
    pub fn build(kind: EngineKind, a: &Automaton) -> Result<Option<Self>, EngineError> {
        let built = match kind {
            EngineKind::NfaSkip => NfaEngine::new(a).map(|e| Inner::Nfa(Box::new(e))),
            EngineKind::NfaNoSkip => NfaEngine::new(a).map(|mut e| {
                e.set_quiescent_skip(false);
                Inner::Nfa(Box::new(e))
            }),
            EngineKind::LazyDfa { max_states: 0 } => {
                LazyDfaEngine::new(a).map(|e| Inner::LazyDfa(Box::new(e)))
            }
            EngineKind::LazyDfa { max_states } => {
                LazyDfaEngine::with_max_states(a, max_states).map(|e| Inner::LazyDfa(Box::new(e)))
            }
            EngineKind::BitPar => BitParallelEngine::new(a).map(Inner::BitPar),
            EngineKind::Prefilter => PrefilterEngine::new(a).map(Inner::Prefilter),
            EngineKind::PrefilterScalarTrigger => {
                PrefilterEngine::with_scalar_trigger(a).map(Inner::Prefilter)
            }
            EngineKind::Sheng => ShengEngine::new(a).map(Inner::Sheng),
            EngineKind::Parallel { threads, prefilter } => {
                ParallelScanner::with_prefilter(a, threads, prefilter).map(Inner::Parallel)
            }
        };
        match built {
            Ok(inner) => Ok(Some(EngineUnderTest { kind, inner })),
            Err(EngineError::CountersUnsupported(_))
            | Err(EngineError::NotChainShaped(_))
            | Err(EngineError::TooManyDfaStates) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The configuration this instance was built for.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    fn as_engine(&mut self) -> &mut dyn Engine {
        match &mut self.inner {
            Inner::Nfa(e) => &mut **e,
            Inner::LazyDfa(e) => &mut **e,
            Inner::BitPar(e) => e,
            Inner::Prefilter(e) => e,
            Inner::Sheng(e) => e,
            Inner::Parallel(e) => e,
        }
    }

    fn as_streaming(&mut self) -> &mut dyn StreamingEngine {
        match &mut self.inner {
            Inner::Nfa(e) => &mut **e,
            Inner::LazyDfa(e) => &mut **e,
            Inner::BitPar(e) => e,
            Inner::Prefilter(e) => e,
            Inner::Sheng(e) => e,
            Inner::Parallel(e) => e,
        }
    }

    /// One whole-input scan; sorted, non-deduplicated reports.
    pub fn run_block(&mut self, input: &[u8]) -> Vec<Rep> {
        let mut sink = CollectSink::new();
        self.as_engine().scan(input, &mut sink);
        normalize(sink)
    }

    /// One streaming scan following `plan` (chunk lengths, summing to
    /// `input.len()`); `eod` is passed on the final chunk, empty chunks
    /// included.
    pub fn run_chunks(&mut self, input: &[u8], plan: &[usize]) -> Vec<Rep> {
        debug_assert_eq!(plan.iter().sum::<usize>(), input.len());
        let mut sink = CollectSink::new();
        let eng = self.as_streaming();
        eng.reset_stream();
        let mut off = 0;
        for (i, &len) in plan.iter().enumerate() {
            let eod = i + 1 == plan.len();
            eng.feed(&input[off..off + len], eod, &mut sink);
            off += len;
        }
        normalize(sink)
    }
}

fn normalize(sink: CollectSink) -> Vec<Rep> {
    sink.sorted_reports()
        .into_iter()
        .map(|r| (r.offset, r.code.0))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, SymbolClass};

    fn chain() -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = b"ab".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 3);
        a
    }

    #[test]
    fn labels_round_trip() {
        for kind in EngineKind::default_set() {
            assert_eq!(EngineKind::parse(&kind.label()), Some(kind), "{kind:?}");
        }
        assert!(EngineKind::parse("bogus").is_none());
    }

    #[test]
    fn parse_list_reports_unknown_names() {
        assert!(EngineKind::parse_list("nfa, bitpar").is_ok());
        assert!(EngineKind::parse_list("nfa, wat").is_err());
    }

    #[test]
    fn zero_thread_parallel_is_rejected_at_parse() {
        assert!(EngineKind::parse("parallel:0").is_none());
        assert!(EngineKind::parse("parallel-pf:0").is_none());
        assert!(EngineKind::parse("parallel:1").is_some());
    }

    #[test]
    fn every_default_engine_agrees_on_a_chain() {
        let a = chain();
        let input = b"xxabxabx";
        let expected = EngineUnderTest::build(EngineKind::NfaNoSkip, &a)
            .unwrap()
            .unwrap()
            .run_block(input);
        assert!(!expected.is_empty());
        for kind in EngineKind::default_set() {
            let Some(mut e) = EngineUnderTest::build(kind, &a).unwrap() else {
                continue;
            };
            assert_eq!(e.run_block(input), expected, "{}", kind.label());
            assert_eq!(
                e.run_chunks(input, &[3, 0, 4, 1, 0]),
                expected,
                "{}",
                kind.label()
            );
        }
    }
}

//! The bug bank: divergences checked in as replayable regression cases.
//!
//! Every divergence the oracle ever finds is serialized into a
//! directory of three files and replayed forever after by the
//! `bugbank` integration test:
//!
//! ```text
//! tests/bugbank/<name>/
//!   automaton.mnrl.json   MNRL serialization of the machine under test
//!   input.bin             the raw input bytes
//!   expected.json         { engine | pass, chunks, reports, note }
//! ```
//!
//! `reports` records the *correct* (baseline) stream — the bank stores
//! what the fixed engine must produce, so a bank entry replays green
//! once its bug is fixed and red if the bug ever regresses.

use std::fs;
use std::io;
use std::path::Path;

use azoo_core::json::{self, Json};
use azoo_core::mnrl;

use crate::adapter::{EngineKind, EngineUnderTest, Rep};
use crate::oracle::{apply_pass, baseline, Divergence, Subject, ORACLE_PASSES};

/// One bank entry: a machine, an input, and the expected reports.
#[derive(Debug, Clone)]
pub struct BugbankEntry {
    /// Directory name of the entry.
    pub name: String,
    /// Engine label ([`EngineKind::label`]) this entry replays on;
    /// `nfa-noskip` for pass entries.
    pub engine: String,
    /// Pass to apply before replaying, if the divergence was a pass
    /// comparison.
    pub pass: Option<String>,
    /// Chunk plan for streaming replays; `None` replays in block mode.
    pub chunks: Option<Vec<usize>>,
    /// The correct report stream.
    pub expected: Vec<Rep>,
    /// Human note: what bug this entry witnessed.
    pub note: String,
    /// The machine under test (pre-pass for pass entries).
    pub automaton: azoo_core::Automaton,
    /// The raw (pre-map) input.
    pub input: Vec<u8>,
}

impl BugbankEntry {
    /// Builds a bank entry from a divergence. `expected` is taken from
    /// the divergence's baseline stream, so the entry encodes the
    /// *correct* behaviour.
    pub fn from_divergence(name: &str, note: &str, d: &Divergence) -> Option<BugbankEntry> {
        let (engine, pass) = match &d.subject {
            Subject::Engine(kind) => (kind.label(), None),
            Subject::Pass { name, .. } => ("nfa-noskip".to_string(), Some((*name).to_string())),
            // Mutations are self-check artifacts, not real bugs.
            Subject::Mutation(_) => return None,
        };
        Some(BugbankEntry {
            name: name.to_string(),
            engine,
            pass,
            chunks: d.chunks.clone(),
            expected: d.expected.clone(),
            note: note.to_string(),
            automaton: d.automaton.clone(),
            input: d.input.clone(),
        })
    }

    /// Replays the entry: runs the recorded engine (after the recorded
    /// pass, if any) and compares against the recorded stream.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch or of any setup failure.
    pub fn replay(&self) -> Result<(), String> {
        let name = &self.name;
        let (machine, input) = match &self.pass {
            None => (self.automaton.clone(), self.input.clone()),
            Some(pass) => {
                let map = ORACLE_PASSES
                    .iter()
                    .find(|(n, _)| n == pass)
                    .map(|&(_, m)| m)
                    .ok_or_else(|| format!("{name}: unknown pass {pass:?}"))?;
                let t = apply_pass(pass, &self.automaton)
                    .ok_or_else(|| format!("{name}: pass {pass:?} no longer applies"))?;
                (t, map.post_input(&self.input))
            }
        };
        machine
            .validate()
            .map_err(|e| format!("{name}: invalid automaton: {e}"))?;
        let kind = EngineKind::parse(&self.engine)
            .ok_or_else(|| format!("{name}: unknown engine {:?}", self.engine))?;
        let mut engine = EngineUnderTest::build(kind, &machine)
            .map_err(|e| format!("{name}: engine build failed: {e}"))?
            .ok_or_else(|| format!("{name}: engine {:?} no longer applies", self.engine))?;
        let got = match &self.chunks {
            None => engine.run_block(&input),
            Some(plan) => {
                if plan.iter().sum::<usize>() != input.len() {
                    return Err(format!("{name}: chunk plan does not cover the input"));
                }
                engine.run_chunks(&input, plan)
            }
        };
        if got != self.expected {
            return Err(format!(
                "{name}: {} regressed — expected {:?}, got {:?} (chunks {:?}; note: {})",
                self.engine, self.expected, got, self.chunks, self.note
            ));
        }
        // The bank also pins the baseline itself: the recorded stream
        // must be what the reference produces today (`machine` is
        // already transformed for pass entries, so no offset mapping).
        let base = baseline(&machine, &input);
        if base != self.expected {
            return Err(format!(
                "{name}: recorded expectation is stale — baseline now {base:?}, bank has {:?}",
                self.expected
            ));
        }
        Ok(())
    }

    /// Serializes the entry under `root/<name>/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let dir = root.join(&self.name);
        fs::create_dir_all(&dir)?;
        fs::write(
            dir.join("automaton.mnrl.json"),
            mnrl::to_mnrl(&self.automaton, &self.name),
        )?;
        fs::write(dir.join("input.bin"), &self.input)?;
        let chunks = match &self.chunks {
            None => Json::Null,
            Some(plan) => Json::Arr(plan.iter().map(|&l| Json::Int(l as i64)).collect()),
        };
        let reports = Json::Arr(
            self.expected
                .iter()
                .map(|&(o, c)| Json::Arr(vec![Json::Int(o as i64), Json::Int(i64::from(c))]))
                .collect(),
        );
        let expected = Json::Obj(vec![
            ("engine".into(), Json::Str(self.engine.clone())),
            (
                "pass".into(),
                match &self.pass {
                    None => Json::Null,
                    Some(p) => Json::Str(p.clone()),
                },
            ),
            ("chunks".into(), chunks),
            ("reports".into(), reports),
            ("note".into(), Json::Str(self.note.clone())),
        ]);
        fs::write(dir.join("expected.json"), expected.pretty())
    }

    /// Loads one entry from its directory.
    ///
    /// # Errors
    ///
    /// Returns a description of any missing file or malformed field.
    pub fn load(dir: &Path) -> Result<BugbankEntry, String> {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<unnamed>")
            .to_string();
        let read = |file: &str| -> Result<String, String> {
            fs::read_to_string(dir.join(file)).map_err(|e| format!("{name}/{file}: {e}"))
        };
        let automaton = mnrl::from_mnrl(&read("automaton.mnrl.json")?)
            .map_err(|e| format!("{name}/automaton.mnrl.json: {e}"))?;
        let input =
            fs::read(dir.join("input.bin")).map_err(|e| format!("{name}/input.bin: {e}"))?;
        let doc = json::parse(&read("expected.json")?)
            .map_err(|e| format!("{name}/expected.json: {e}"))?;
        let engine = doc
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}: missing engine"))?
            .to_string();
        let pass = match doc.get("pass") {
            None | Some(Json::Null) => None,
            Some(p) => Some(
                p.as_str()
                    .ok_or_else(|| format!("{name}: pass must be a string"))?
                    .to_string(),
            ),
        };
        let chunks = match doc.get("chunks") {
            None | Some(Json::Null) => None,
            Some(c) => Some(
                c.as_arr()
                    .ok_or_else(|| format!("{name}: chunks must be an array"))?
                    .iter()
                    .map(|l| {
                        l.as_i64()
                            .and_then(|l| usize::try_from(l).ok())
                            .ok_or_else(|| format!("{name}: bad chunk length"))
                    })
                    .collect::<Result<Vec<usize>, String>>()?,
            ),
        };
        let expected = doc
            .get("reports")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name}: missing reports"))?
            .iter()
            .map(|r| {
                let pair = r.as_arr().filter(|p| p.len() == 2);
                let off = pair
                    .and_then(|p| p[0].as_i64())
                    .and_then(|v| u64::try_from(v).ok());
                let code = pair
                    .and_then(|p| p[1].as_i64())
                    .and_then(|v| u32::try_from(v).ok());
                match (off, code) {
                    (Some(o), Some(c)) => Ok((o, c)),
                    _ => Err(format!("{name}: bad report entry")),
                }
            })
            .collect::<Result<Vec<Rep>, String>>()?;
        let note = doc
            .get("note")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        Ok(BugbankEntry {
            name,
            engine,
            pass,
            chunks,
            expected,
            note,
            automaton,
            input,
        })
    }
}

/// Loads every entry directory under `root`, sorted by name. A missing
/// root is an empty bank.
///
/// # Errors
///
/// Returns the first malformed entry's description.
pub fn load_all(root: &Path) -> Result<Vec<BugbankEntry>, String> {
    let mut entries = Vec::new();
    let Ok(dir) = fs::read_dir(root) else {
        return Ok(entries);
    };
    let mut dirs: Vec<_> = dir
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for d in dirs {
        entries.push(BugbankEntry::load(&d)?);
    }
    Ok(entries)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{Automaton, StartKind, SymbolClass};

    fn entry() -> BugbankEntry {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 7);
        a.set_report_eod_only(s, true);
        BugbankEntry {
            name: "roundtrip".into(),
            engine: "nfa".into(),
            pass: None,
            chunks: Some(vec![2, 0]),
            expected: vec![(1, 7)],
            note: "test entry".into(),
            automaton: a,
            input: b"xz".to_vec(),
        }
    }

    #[test]
    fn save_load_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("azoo-bugbank-test-{}", std::process::id()));
        let e = entry();
        e.save(&dir).unwrap();
        let loaded = load_all(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        let l = &loaded[0];
        assert_eq!(l.engine, e.engine);
        assert_eq!(l.chunks, e.chunks);
        assert_eq!(l.expected, e.expected);
        assert_eq!(l.input, e.input);
        assert_eq!(l.automaton, e.automaton);
        l.replay().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_flags_a_wrong_expectation() {
        let mut e = entry();
        e.expected = vec![(0, 7)];
        let err = e.replay().unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }
}

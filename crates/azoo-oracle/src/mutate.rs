//! Mutation-kill self-check: does the oracle actually detect bugs?
//!
//! A differential oracle that never fires is indistinguishable from one
//! that cannot fire. This module plants ten deliberate bugs — each
//! modelled on a real defect class from this workspace's history
//! (offset off-by-ones, dropped per-cycle dedup, mishandled empty
//! end-of-data chunks, counter-mode confusion) — and checks that the
//! seeded campaign kills them. A mutation is *killed* when some seed
//! makes the mutated run disagree with the true baseline.
//!
//! Mutations come in two families:
//!
//! * **stream/sink mutations** wrap the reference engine and corrupt
//!   its observable behaviour (reports or chunk protocol);
//! * **automaton mutations** rewrite the machine before the reference
//!   engine runs it (semantic changes the oracle must notice).

use azoo_core::{Automaton, CounterMode, ElementKind, ReportCode, StartKind};
use azoo_engines::{CollectSink, Engine, NfaEngine, ReportSink, StreamingEngine};

use crate::adapter::Rep;
use crate::gen::{gen_automaton, gen_chunk_plan, gen_input, GenConfig};
use crate::oracle::baseline;
use crate::rng::OracleRng;

/// A deliberately planted bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Every report offset shifted by one (window off-by-one).
    OffsetPlusOne,
    /// Every report emitted twice (dropped per-cycle dedup).
    DuplicateReports,
    /// The flush of held-back `$` reports on an empty end-of-data chunk
    /// is skipped (the empty-eod-chunk bug this PR fixes).
    DropEmptyEodFlush,
    /// Report offsets computed relative to the current chunk instead of
    /// the whole stream (forgotten stream base after a `feed`).
    ChunkOffsetRebase,
    /// `eod` is passed on every chunk (premature `$` anchoring).
    EodEveryChunk,
    /// Stream state is reset before every chunk (lost cross-chunk
    /// matches).
    ResetPerChunk,
    /// Latch counters demoted to pulse mode (skipped counter latch).
    LatchBecomesPulse,
    /// `report_eod_only` flags dropped (un-anchored `$`).
    DropEodOnlyFlag,
    /// Counter targets incremented (threshold off-by-one).
    CounterTargetOffByOne,
    /// `AllInput` starts demoted to `StartOfData` (no re-arming).
    StartDowngrade,
}

impl Mutation {
    /// All ten planted bugs.
    pub const ALL: [Mutation; 10] = [
        Mutation::OffsetPlusOne,
        Mutation::DuplicateReports,
        Mutation::DropEmptyEodFlush,
        Mutation::ChunkOffsetRebase,
        Mutation::EodEveryChunk,
        Mutation::ResetPerChunk,
        Mutation::LatchBecomesPulse,
        Mutation::DropEodOnlyFlag,
        Mutation::CounterTargetOffByOne,
        Mutation::StartDowngrade,
    ];

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::OffsetPlusOne => "offset-plus-one",
            Mutation::DuplicateReports => "duplicate-reports",
            Mutation::DropEmptyEodFlush => "drop-empty-eod-flush",
            Mutation::ChunkOffsetRebase => "chunk-offset-rebase",
            Mutation::EodEveryChunk => "eod-every-chunk",
            Mutation::ResetPerChunk => "reset-per-chunk",
            Mutation::LatchBecomesPulse => "latch-becomes-pulse",
            Mutation::DropEodOnlyFlag => "drop-eod-only-flag",
            Mutation::CounterTargetOffByOne => "counter-target-off-by-one",
            Mutation::StartDowngrade => "start-downgrade",
        }
    }
}

/// Sink wrapper applying report-level corruption.
struct MutatedSink<'a> {
    inner: &'a mut CollectSink,
    mutation: Mutation,
    /// Absolute offset of the chunk currently being fed; reports carry
    /// offsets at or past it, so `ChunkOffsetRebase` can subtract.
    chunk_base: u64,
}

impl ReportSink for MutatedSink<'_> {
    fn report(&mut self, offset: u64, code: ReportCode) {
        match self.mutation {
            Mutation::OffsetPlusOne => self.inner.report(offset + 1, code),
            Mutation::DuplicateReports => {
                self.inner.report(offset, code);
                self.inner.report(offset, code);
            }
            Mutation::ChunkOffsetRebase => self.inner.report(offset - self.chunk_base, code),
            _ => self.inner.report(offset, code),
        }
    }
}

/// Rewrites `a` under an automaton-family mutation; `None` when the
/// mutation has nothing to bite on (the machine is unchanged).
///
/// Public so semantic-change detectors (the azoo-serve content hash
/// among them) can assert that every mutation this module can plant
/// also changes their fingerprint.
pub fn mutate_automaton(mutation: Mutation, a: &Automaton) -> Option<Automaton> {
    let mut out = a.clone();
    let mut hit = false;
    for idx in 0..out.state_count() {
        let id = azoo_core::StateId::new(idx);
        let e = out.element_mut(id);
        match (mutation, &mut e.kind) {
            (
                Mutation::LatchBecomesPulse,
                ElementKind::Counter {
                    mode: mode @ CounterMode::Latch,
                    ..
                },
            ) => {
                *mode = CounterMode::Pulse;
                hit = true;
            }
            (Mutation::CounterTargetOffByOne, ElementKind::Counter { target, .. }) => {
                *target += 1;
                hit = true;
            }
            (
                Mutation::StartDowngrade,
                ElementKind::Ste {
                    start: start @ StartKind::AllInput,
                    ..
                },
            ) => {
                *start = StartKind::StartOfData;
                hit = true;
            }
            (Mutation::DropEodOnlyFlag, _) if e.report_eod_only => {
                e.report_eod_only = false;
                hit = true;
            }
            _ => {}
        }
    }
    hit.then_some(out)
}

/// Runs the reference engine with `mutation` planted, over `chunks`
/// when given (stream mutations only bite there) or the whole input.
///
/// Returns `None` when the mutation cannot affect this case at all
/// (e.g. a counter mutation on a counter-free machine), so the caller
/// does not count a trivially-equal run as a surviving mutant.
pub fn mutated_run(
    mutation: Mutation,
    a: &Automaton,
    input: &[u8],
    chunks: Option<&[usize]>,
) -> Option<Vec<Rep>> {
    let rewritten;
    let a = match mutation {
        Mutation::LatchBecomesPulse
        | Mutation::CounterTargetOffByOne
        | Mutation::StartDowngrade
        | Mutation::DropEodOnlyFlag => {
            rewritten = mutate_automaton(mutation, a)?;
            &rewritten
        }
        _ => a,
    };
    let mut engine = NfaEngine::new(a).ok()?;
    engine.set_quiescent_skip(false);
    let mut sink = CollectSink::new();
    match chunks {
        None => {
            let mut msink = MutatedSink {
                inner: &mut sink,
                mutation,
                chunk_base: 0,
            };
            engine.scan(input, &mut msink);
        }
        Some(plan) => {
            engine.reset_stream();
            let mut off = 0;
            for (i, &len) in plan.iter().enumerate() {
                let chunk = &input[off..off + len];
                let chunk_base = off as u64;
                off += len;
                let eod = i + 1 == plan.len();
                let eod = mutation == Mutation::EodEveryChunk || eod;
                if mutation == Mutation::DropEmptyEodFlush && len == 0 && i + 1 == plan.len() {
                    continue;
                }
                if mutation == Mutation::ResetPerChunk {
                    engine.reset_stream();
                }
                let mut msink = MutatedSink {
                    inner: &mut sink,
                    mutation,
                    chunk_base,
                };
                engine.feed(chunk, eod, &mut msink);
            }
        }
    }
    Some(
        sink.sorted_reports()
            .into_iter()
            .map(|r| (r.offset, r.code.0))
            .collect(),
    )
}

/// Outcome of the self-check for one mutation.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// Which planted bug.
    pub mutation: Mutation,
    /// The first seed whose campaign detected it, if any.
    pub killed_by: Option<u64>,
}

/// Runs the seeded campaign against every planted bug.
///
/// For each mutation, seeds `0..seeds` are generated exactly as the
/// real oracle generates them; the mutation is killed as soon as the
/// mutated run disagrees with the true baseline in block mode or under
/// any of the seed's chunk plans.
pub fn kill_check(seeds: u64, gen: &GenConfig) -> Vec<MutationOutcome> {
    Mutation::ALL
        .iter()
        .map(|&mutation| {
            let mut killed_by = None;
            'seeds: for seed in 0..seeds {
                let mut rng = OracleRng::new(seed);
                let a = gen_automaton(&mut rng, gen);
                let input = gen_input(&mut rng, gen, &a);
                let plans: Vec<Vec<usize>> = (0..gen.chunk_plans)
                    .map(|_| gen_chunk_plan(&mut rng, input.len()))
                    .collect();
                let expected = baseline(&a, &input);
                let mut cases: Vec<Option<&[usize]>> = vec![None];
                cases.extend(plans.iter().map(|p| Some(p.as_slice())));
                for chunks in cases {
                    if let Some(got) = mutated_run(mutation, &a, &input, chunks) {
                        if got != expected {
                            killed_by = Some(seed);
                            break 'seeds;
                        }
                    }
                }
            }
            MutationOutcome {
                mutation,
                killed_by,
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn campaign_kills_at_least_eight_of_ten() {
        let outcomes = kill_check(150, &GenConfig::default());
        let killed = outcomes.iter().filter(|o| o.killed_by.is_some()).count();
        let surviving: Vec<&str> = outcomes
            .iter()
            .filter(|o| o.killed_by.is_none())
            .map(|o| o.mutation.name())
            .collect();
        assert!(
            killed >= 8,
            "only {killed}/10 mutations killed; survivors: {surviving:?}"
        );
    }

    #[test]
    fn unmutated_reference_matches_baseline() {
        // Sanity: the mutation plumbing itself must not perturb a
        // mutation-free path; `OffsetPlusOne` with zero reports is the
        // closest to a no-op — use a reportless-in-practice input.
        let gen = GenConfig::default();
        let mut rng = OracleRng::new(9);
        let a = gen_automaton(&mut rng, &gen);
        let empty: &[u8] = &[];
        assert_eq!(
            mutated_run(Mutation::OffsetPlusOne, &a, empty, None),
            Some(vec![])
        );
    }
}

//! Seeded generation of automata, inputs, and chunk plans.
//!
//! The generator's job is to hit engine corner cases with *small*
//! machines, so it is deliberately biased rather than uniform: a tiny
//! alphabet (so states collide and matches are frequent), a hefty dose
//! of start states and report codes, occasional wildcard classes,
//! counters in all three modes, end-of-data-gated reports, and report
//! codes both tiny and near `u32::MAX`. Every generated automaton
//! passes [`Automaton::validate`] by construction.

use azoo_core::{Automaton, CounterMode, ElementKind, Port, StartKind, SymbolClass};
use azoo_fuzzy::{fuzzy_from_bytes, EditProfile};

use crate::rng::OracleRng;

/// Tuning knobs for one generated test case.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Upper bound on generated state count (at least 1 is generated).
    pub max_states: usize,
    /// Whether counter elements may be generated.
    pub counters: bool,
    /// Upper bound on generated input length in bytes.
    pub max_input_len: usize,
    /// Streaming chunk plans tried per seed (in addition to block mode).
    pub chunk_plans: usize,
    /// Generate fuzzy (edit-distance mesh) automata instead of random
    /// graphs: [`gen_fuzzy_automaton`] machines over inputs seeded with
    /// near-miss pattern copies ([`gen_fuzzy_input`]).
    pub fuzzy: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_states: 8,
            counters: true,
            max_input_len: 48,
            chunk_plans: 3,
            fuzzy: false,
        }
    }
}

/// Byte pool the generator draws symbol classes from. Small on purpose:
/// with three letters, random states share symbols and random inputs
/// actually traverse the machine.
const POOL: &[u8] = b"abz";

/// Generates a small valid automaton.
pub fn gen_automaton(rng: &mut OracleRng, cfg: &GenConfig) -> Automaton {
    let n = 1 + rng.below(cfg.max_states as u64) as usize;
    let mut a = Automaton::with_capacity(n);
    for i in 0..n {
        // State 0 stays an STE so a start state can always be forced.
        if i > 0 && cfg.counters && rng.chance(1, 6) {
            let mode = match rng.below(3) {
                0 => CounterMode::Latch,
                1 => CounterMode::Pulse,
                _ => CounterMode::Roll,
            };
            a.add_counter(1 + rng.below(4) as u32, mode);
        } else {
            let class = match rng.below(8) {
                0 => SymbolClass::FULL,
                1 | 2 => {
                    let mut c = SymbolClass::from_byte(*rng.pick(POOL));
                    c.insert(*rng.pick(POOL));
                    c
                }
                _ => SymbolClass::from_byte(*rng.pick(POOL)),
            };
            let start = if rng.chance(1, 3) {
                if rng.chance(1, 4) {
                    StartKind::StartOfData
                } else {
                    StartKind::AllInput
                }
            } else {
                StartKind::None
            };
            a.add_ste(class, start);
        }
    }
    // Edges: small random out-degrees, with occasional reset edges into
    // counters. Duplicate (target, port) pairs are skipped.
    let ids: Vec<_> = a.iter().map(|(id, _)| id).collect();
    for &from in &ids {
        let deg = rng.below(3);
        for _ in 0..deg {
            let to = ids[rng.below(n as u64) as usize];
            let port = if a.element(to).is_counter() && rng.chance(1, 4) {
                Port::Reset
            } else {
                Port::Activate
            };
            if a.successors(from)
                .iter()
                .any(|e| e.to == to && e.port == port)
            {
                continue;
            }
            match port {
                Port::Activate => a.add_edge(from, to),
                Port::Reset => a.add_reset_edge(from, to),
            }
        }
    }
    // Reports: frequent, with occasional huge codes and $-anchoring.
    for &id in &ids {
        if rng.chance(1, 3) {
            let code = if rng.chance(1, 10) {
                u32::MAX - rng.below(3) as u32
            } else {
                rng.below(5) as u32
            };
            a.set_report(id, code);
            if rng.chance(1, 4) {
                a.set_report_eod_only(id, true);
            }
        }
    }
    // Force the global invariants the random draws may have missed: at
    // least one start state and at least one report state (a reportless
    // machine would make the whole seed vacuous).
    if !a.iter().any(|(_, e)| e.start_kind() != StartKind::None) {
        if let ElementKind::Ste { start, .. } = &mut a.element_mut(ids[0]).kind {
            *start = StartKind::AllInput;
        }
    }
    if a.report_states().is_empty() {
        a.set_report(ids[0], 0);
    }
    debug_assert!(
        a.validate().is_ok(),
        "generator produced {:?}",
        a.validate()
    );
    a
}

/// Edit-cost profiles the fuzzy generator samples: the two named
/// profiles plus both mixed pairs, so every down-edge kind is exercised
/// alone and in combination.
const FUZZY_PROFILES: [EditProfile; 4] = [
    EditProfile::LEVENSHTEIN,
    EditProfile::HAMMING,
    EditProfile {
        substitutions: true,
        insertions: true,
        deletions: false,
    },
    EditProfile {
        substitutions: true,
        insertions: false,
        deletions: true,
    },
];

/// Generates a small fuzzy automaton: one or two patterns over [`POOL`],
/// each compiled at a random edit budget `k <= 3` (always below the
/// pattern length) under a random edit-cost profile. Returns the
/// patterns alongside so [`gen_fuzzy_input`] can plant near misses.
pub fn gen_fuzzy_automaton(rng: &mut OracleRng, _cfg: &GenConfig) -> (Automaton, Vec<Vec<u8>>) {
    let mut a = Automaton::new();
    let mut patterns = Vec::new();
    let n = 1 + rng.below(2) as usize;
    for i in 0..n {
        let len = 2 + rng.below(6) as usize;
        let pattern: Vec<u8> = (0..len).map(|_| *rng.pick(POOL)).collect();
        let k = rng.below((len as u64).min(4)) as usize;
        let profile = FUZZY_PROFILES[rng.below(FUZZY_PROFILES.len() as u64) as usize];
        let (f, _) = fuzzy_from_bytes(&pattern, k, profile, i as u32)
            .expect("generated pattern is within construction bounds");
        a.append(&f);
        patterns.push(pattern);
    }
    // Occasionally $-anchor the whole machine: every accepting state of
    // a mesh may report, so eod gating exercises the engines' pending-
    // report paths on realistic (multi-report-state) automata.
    if rng.chance(1, 6) {
        for r in a.report_states() {
            a.set_report_eod_only(r, true);
        }
    }
    debug_assert!(
        a.validate().is_ok(),
        "fuzzy generator produced {:?}",
        a.validate()
    );
    (a, patterns)
}

/// Generates an input for a fuzzy automaton: [`POOL`] noise with, per
/// pattern, an occasional spliced-in copy carrying zero to two random
/// edits — near misses that straddle the machine's edit budget.
pub fn gen_fuzzy_input(rng: &mut OracleRng, cfg: &GenConfig, patterns: &[Vec<u8>]) -> Vec<u8> {
    let len = rng.below(cfg.max_input_len as u64 + 1) as usize;
    let mut input: Vec<u8> = (0..len).map(|_| *rng.pick(POOL)).collect();
    for p in patterns {
        if rng.chance(1, 4) {
            continue;
        }
        let mut copy = p.clone();
        for _ in 0..rng.below(3) {
            match rng.below(3) {
                0 if !copy.is_empty() => {
                    let at = rng.below(copy.len() as u64) as usize;
                    copy[at] = *rng.pick(POOL);
                }
                1 => {
                    let at = rng.below(copy.len() as u64 + 1) as usize;
                    copy.insert(at, *rng.pick(POOL));
                }
                _ if !copy.is_empty() => {
                    let at = rng.below(copy.len() as u64) as usize;
                    copy.remove(at);
                }
                _ => {}
            }
        }
        if !copy.is_empty() && copy.len() <= input.len() {
            let at = rng.below((input.len() - copy.len()) as u64 + 1) as usize;
            input[at..at + copy.len()].copy_from_slice(&copy);
        }
    }
    input
}

/// Generates an input drawn from the automaton's own alphabet plus one
/// guaranteed-miss byte, so both matching and non-matching transitions
/// are exercised. May be empty.
pub fn gen_input(rng: &mut OracleRng, cfg: &GenConfig, a: &Automaton) -> Vec<u8> {
    let alphabet = sample_alphabet(a);
    let len = rng.below(cfg.max_input_len as u64 + 1) as usize;
    (0..len).map(|_| *rng.pick(&alphabet)).collect()
}

/// Bytes worth sampling for `a`: up to two representatives per symbol
/// class plus one byte outside every class (if one exists).
pub fn sample_alphabet(a: &Automaton) -> Vec<u8> {
    let mut in_class = [false; 256];
    let mut alphabet: Vec<u8> = Vec::new();
    for (_, e) in a.iter() {
        if let Some(class) = e.class() {
            for b in class.iter() {
                in_class[b as usize] = true;
            }
            for b in class.iter().take(2) {
                if !alphabet.contains(&b) {
                    alphabet.push(b);
                }
            }
        }
    }
    if let Some(miss) = (0u16..256)
        .map(|b| b as u8)
        .find(|&b| !in_class[b as usize])
    {
        alphabet.push(miss);
    }
    if alphabet.is_empty() {
        alphabet.push(b'a');
    }
    alphabet
}

/// Generates a chunk plan: a list of chunk lengths summing to `len`.
///
/// Plans deliberately include the degenerate shapes streaming engines
/// get wrong: single-feed, all-one-byte, coincident cut points (empty
/// chunks mid-stream), and an empty final end-of-data chunk.
pub fn gen_chunk_plan(rng: &mut OracleRng, len: usize) -> Vec<usize> {
    let mut plan = match rng.below(4) {
        0 => vec![len],
        1 if len > 0 => vec![1; len],
        _ => {
            // Random cut points, repeats allowed (repeats yield empty
            // chunks mid-stream).
            let cuts = 1 + rng.below(4) as usize;
            let mut points: Vec<usize> = (0..cuts)
                .map(|_| rng.below(len as u64 + 1) as usize)
                .collect();
            points.sort_unstable();
            let mut plan = Vec::with_capacity(cuts + 1);
            let mut prev = 0;
            for p in points {
                plan.push(p - prev);
                prev = p;
            }
            plan.push(len - prev);
            if rng.chance(1, 2) {
                plan.push(0); // empty end-of-data chunk
            }
            plan
        }
    };
    if plan.is_empty() {
        plan.push(0);
    }
    debug_assert_eq!(plan.iter().sum::<usize>(), len);
    plan
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn generated_automata_validate() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let mut rng = OracleRng::new(seed);
            let a = gen_automaton(&mut rng, &cfg);
            assert!(a.validate().is_ok(), "seed {seed}: {:?}", a.validate());
            assert!(!a.report_states().is_empty(), "seed {seed} has no reports");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let mut r1 = OracleRng::new(42);
        let mut r2 = OracleRng::new(42);
        assert_eq!(gen_automaton(&mut r1, &cfg), gen_automaton(&mut r2, &cfg));
    }

    #[test]
    fn chunk_plans_sum_to_len() {
        for seed in 0..100 {
            let mut rng = OracleRng::new(seed);
            for len in [0usize, 1, 5, 33] {
                let plan = gen_chunk_plan(&mut rng, len);
                assert_eq!(plan.iter().sum::<usize>(), len);
                assert!(!plan.is_empty());
            }
        }
    }

    #[test]
    fn plans_include_empty_chunks_and_empty_eod() {
        let mut saw_empty_mid = false;
        let mut saw_empty_eod = false;
        for seed in 0..200 {
            let mut rng = OracleRng::new(seed);
            let plan = gen_chunk_plan(&mut rng, 16);
            if plan.last() == Some(&0) {
                saw_empty_eod = true;
            }
            if plan[..plan.len() - 1].contains(&0) {
                saw_empty_mid = true;
            }
        }
        assert!(saw_empty_mid && saw_empty_eod);
    }

    #[test]
    fn fuzzy_automata_validate_and_are_deterministic() {
        let cfg = GenConfig {
            fuzzy: true,
            ..GenConfig::default()
        };
        let mut saw_multi_layer = false;
        let mut saw_eod = false;
        for seed in 0..200 {
            let mut rng = OracleRng::new(seed);
            let (a, patterns) = gen_fuzzy_automaton(&mut rng, &cfg);
            assert_eq!(a.validate_all(), Vec::new(), "seed {seed}");
            assert!(!patterns.is_empty());
            assert!(!a.report_states().is_empty(), "seed {seed} has no reports");
            // Multi-layer machines have more report states than patterns.
            saw_multi_layer |= a.report_states().len() > patterns.len();
            saw_eod |= a.iter().any(|(_, e)| e.report_eod_only);
            let input = gen_fuzzy_input(&mut rng, &cfg, &patterns);
            assert!(input.len() <= cfg.max_input_len);

            let mut r2 = OracleRng::new(seed);
            let (a2, p2) = gen_fuzzy_automaton(&mut r2, &cfg);
            assert_eq!(a, a2);
            assert_eq!(patterns, p2);
            assert_eq!(input, gen_fuzzy_input(&mut r2, &cfg, &p2));
        }
        assert!(saw_multi_layer && saw_eod);
    }

    #[test]
    fn counters_and_eod_reports_are_reachable() {
        let cfg = GenConfig::default();
        let mut saw_counter = false;
        let mut saw_eod = false;
        for seed in 0..200 {
            let mut rng = OracleRng::new(seed);
            let a = gen_automaton(&mut rng, &cfg);
            saw_counter |= a.counter_count() > 0;
            saw_eod |= a.iter().any(|(_, e)| e.report_eod_only);
        }
        assert!(saw_counter && saw_eod);
    }
}

//! Regenerates the checked-in regression corpus under `tests/bugbank/`.
//!
//! Each entry witnesses a real bug found (and fixed) by the oracle
//! campaign; the recorded report streams are produced by the *fixed*
//! engines, so every entry replays green today and turns red if its
//! bug ever regresses. Run from the workspace root:
//!
//! ```text
//! cargo run -p azoo-oracle --example seed_bugbank -- tests/bugbank
//! ```

use std::path::PathBuf;

use azoo_core::{Automaton, CounterMode, StartKind, SymbolClass};
use azoo_oracle::{baseline, BugbankEntry, EngineKind, EngineUnderTest};

/// Two AllInput states on the same symbol sharing a report code, one of
/// them `$`-anchored. On the final symbol the lazy DFA's per-transition
/// report list contained both `(code, false)` and `(code, true)` and
/// emitted the same `(offset, code)` twice — canonical streams must
/// dedup per cycle per code.
fn lazydfa_eod_dup() -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    let plain = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
    a.set_report(plain, 0);
    let anchored = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
    a.set_report(anchored, 0);
    a.set_report_eod_only(anchored, true);
    (a, b"zz".to_vec())
}

/// A `$`-anchored report whose final symbol arrives in a non-final
/// chunk: the end-of-data flag only shows up on a later *empty* chunk.
/// Every streaming engine used to drop the report instead of holding it
/// back and emitting it on the empty end-of-data feed.
fn empty_eod_chunk() -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    let classes: Vec<SymbolClass> = b"abz".iter().map(|&b| SymbolClass::from_byte(b)).collect();
    let (_, last) = a.add_chain(&classes, StartKind::AllInput);
    a.set_report(last, 7);
    a.set_report_eod_only(last, true);
    (a, b"xabz".to_vec())
}

/// A report code of `u32::MAX`. The NFA and lazy-DFA engines used the
/// same value as their internal "state does not report" sentinel and
/// silently swallowed every report.
fn max_report_code() -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    a.set_report(s, u32::MAX);
    (a, b"za".to_vec())
}

/// A rolling counter that activates itself (oracle seed 2040): the
/// fire → self-enable → count → fire cascade looped forever inside one
/// symbol cycle. A counter samples its enable line once per cycle.
fn counter_combinational_loop() -> (Automaton, Vec<u8>) {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let c = a.add_counter(1, CounterMode::Roll);
    a.add_edge(s, c);
    a.add_edge(c, c);
    a.set_report(c, 5);
    (a, b"axa".to_vec())
}

fn entry(
    name: &str,
    note: &str,
    kind: EngineKind,
    a: &Automaton,
    input: &[u8],
    chunks: Option<Vec<usize>>,
) -> BugbankEntry {
    // Expected streams come from the reference engine on the whole
    // input — the bank records correct behaviour, not buggy behaviour.
    let expected = baseline(a, input);
    let entry = BugbankEntry {
        name: name.to_string(),
        engine: kind.label(),
        pass: None,
        chunks,
        expected,
        note: note.to_string(),
        automaton: a.clone(),
        input: input.to_vec(),
    };
    // Refuse to write an entry the fixed engines cannot replay.
    let mut e = EngineUnderTest::build(kind, a)
        .expect("valid automaton")
        .expect("engine applies");
    let got = match &entry.chunks {
        None => e.run_block(input),
        Some(plan) => e.run_chunks(input, plan),
    };
    assert_eq!(got, entry.expected, "{name} does not replay green");
    entry
}

fn main() {
    let root: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/bugbank".to_string())
        .into();

    let mut entries = Vec::new();

    let (a, input) = lazydfa_eod_dup();
    entries.push(entry(
        "lazydfa-eod-dup",
        "lazy DFA emitted the same (offset, code) twice on the last symbol when an \
         eod-gated and an unconditional state shared a report code",
        EngineKind::LazyDfa { max_states: 0 },
        &a,
        &input,
        None,
    ));

    let (a, input) = empty_eod_chunk();
    for kind in [
        EngineKind::NfaSkip,
        EngineKind::LazyDfa { max_states: 0 },
        EngineKind::BitPar,
        EngineKind::Prefilter,
    ] {
        entries.push(entry(
            &format!("empty-eod-chunk-{}", kind.label().replace(':', "-")),
            "streaming engines dropped $-anchored reports when eod arrived on an \
             empty final chunk after the last symbol had already been fed",
            kind,
            &a,
            &input,
            Some(vec![input.len(), 0]),
        ));
    }

    let (a, input) = max_report_code();
    for kind in [EngineKind::NfaSkip, EngineKind::LazyDfa { max_states: 0 }] {
        entries.push(entry(
            &format!("max-report-code-{}", kind.label().replace(':', "-")),
            "report code u32::MAX collided with the engines' internal NO_REPORT \
             sentinel and every report from the state was silently dropped",
            kind,
            &a,
            &input,
            None,
        ));
    }

    let (a, input) = counter_combinational_loop();
    entries.push(entry(
        "counter-combinational-loop",
        "a rolling counter with a self-activation edge made the NFA's same-cycle \
         counter cascade loop forever; enables are now sampled once per cycle",
        EngineKind::NfaSkip,
        &a,
        &input,
        Some(vec![1, 0, 2]),
    ));

    for e in &entries {
        e.save(&root).expect("write bank entry");
        e.replay().expect("entry must replay green");
        println!("wrote {}/{}", root.display(), e.name);
    }
    println!("{} entries", entries.len());
}

//! Fixtures shared by the Criterion benchmarks.
//!
//! Each bench target regenerates the performance dimension of one paper
//! artifact at reduced scale (Criterion needs many iterations):
//!
//! * `engines` — engine portfolio throughput on regex rulesets (Table I's
//!   performance dimension).
//! * `mesh` — Hamming/Levenshtein mesh simulation by (l, d) (Figure 1 /
//!   Table V cost model).
//! * `padding` — padded vs native Sequence Matching (Table III).
//! * `random_forest` — native vs automata classification (Tables II/IV).
//! * `passes` — prefix merging and 8-striding cost.
//! * `parallel` — `ParallelScanner` scaling at 1/2/4/8 worker threads on
//!   Snort and Random Forest workloads.
//! * `prefilter` — baseline NFA vs quiescence-aware NFA vs the
//!   literal-prefilter engine on sparse workloads (DESIGN.md §6d).

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

use azoo_core::Automaton;
use azoo_regex::compile_ruleset;

/// A small Snort-like ruleset automaton for engine benches.
pub fn small_ruleset() -> Automaton {
    let rules = azoo_zoo::snort::generate_ruleset(1, 150);
    let kept = azoo_zoo::snort::filter_rules(&rules, true, true);
    azoo_zoo::snort::compile_rules(&kept).automaton
}

/// A small literal-set automaton (chain-shaped) for bit-parallel benches.
pub fn literal_set(n: usize) -> Automaton {
    let mut rng = azoo_workloads::rng(2);
    let patterns: Vec<String> = (0..n)
        .map(|i| {
            let w = azoo_workloads::text::word(&mut rng);
            format!("{w}{i:04}")
        })
        .collect();
    compile_ruleset(patterns.iter().map(String::as_str)).automaton
}

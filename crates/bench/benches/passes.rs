//! Pass costs: prefix merging on a ruleset and 8-striding of a bit-level
//! automaton (the transformations the benchmark generation pipeline runs).

use azoo_bench::small_ruleset;
use azoo_passes::{merge_prefixes, remove_dead, stride8};
use azoo_regex::{compile_pattern, Flags, Pattern};
use azoo_zoo::file_carving::zip_local_header_bits;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_passes(c: &mut Criterion) {
    let ruleset = small_ruleset();
    c.bench_function("merge_prefixes_ruleset", |b| {
        b.iter(|| std::hint::black_box(merge_prefixes(&ruleset)));
    });
    c.bench_function("remove_dead_ruleset", |b| {
        b.iter(|| std::hint::black_box(remove_dead(&ruleset)));
    });
    let bit_nfa = compile_pattern(
        &Pattern {
            ast: zip_local_header_bits(),
            anchored_start: false,
            anchored_end: false,
            flags: Flags::default(),
        },
        0,
    )
    .expect("well-formed");
    c.bench_function("stride8_zip_header", |b| {
        b.iter(|| std::hint::black_box(stride8(&bit_nfa).expect("strides")));
    });
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);

//! Tables II/IV performance dimension: Random Forest classification —
//! native tree inference (single- and multi-threaded) versus automata
//! execution on the bit-parallel engine.

use azoo_engines::{BitParallelEngine, Engine, NullSink};
use azoo_ml::{synthetic_mnist, Forest, ForestAutomaton, ForestParams};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_random_forest(c: &mut Criterion) {
    let data = synthetic_mnist(1, 700);
    let (train, test) = data.split(0.7);
    let forest = Forest::train(
        &train,
        &ForestParams {
            trees: 8,
            max_leaves: 100,
            feature_pool: 200,
            subspace: 30,
            seed: 5,
        },
    );
    let fa = ForestAutomaton::build(&forest);
    let stream = fa.encode_batch(&test);
    let n = test.len() as u64;

    let mut group = c.benchmark_group("rf_classification");
    group.throughput(Throughput::Elements(n));
    group.bench_function("native_serial", |b| {
        b.iter(|| std::hint::black_box(forest.predict_batch(&test)));
    });
    group.bench_function("native_mt4", |b| {
        b.iter(|| std::hint::black_box(forest.predict_batch_parallel(&test, 4)));
    });
    group.bench_function("automata_bit_parallel", |b| {
        let mut engine = BitParallelEngine::new(&fa.automaton).expect("chains");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&stream, &mut sink));
    });
    group.bench_function("encode_stream", |b| {
        b.iter(|| std::hint::black_box(fa.encode_batch(&test)));
    });
    group.finish();
}

criterion_group!(benches, bench_random_forest);
criterion_main!(benches);

//! Quiescence-aware scanning and the literal-prefilter engine: the same
//! sparse workloads scanned by the baseline NFA (skip disabled), the
//! quiescence-aware NFA, and the `PrefilterEngine`. This is the
//! performance dimension behind the DESIGN.md §6d fallback matrix and
//! the `--prefilter` harness flag.

use azoo_bench::{literal_set, small_ruleset};
use azoo_engines::{Engine, NfaEngine, NullSink, PrefilterEngine};
use azoo_workloads::network::{pcap_like, PcapConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_prefilter(c: &mut Criterion) {
    // Snort-like ruleset over PCAP-like traffic: quiescent most of the
    // time, so both the wake-up skip and the literal gate pay off.
    let ruleset = small_ruleset();
    let input = pcap_like(
        1,
        &PcapConfig {
            len: 1 << 17,
            ..PcapConfig::default()
        },
    );
    let mut group = c.benchmark_group("snort_scan");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("nfa_no_skip", |b| {
        let mut engine = NfaEngine::new(&ruleset).expect("valid");
        engine.set_quiescent_skip(false);
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    group.bench_function("nfa_quiescent_skip", |b| {
        let mut engine = NfaEngine::new(&ruleset).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    group.bench_function("prefilter", |b| {
        let mut engine = PrefilterEngine::new(&ruleset).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    group.finish();

    // Literal set over english-like text: every component carries a
    // required literal, so the prefilter gates the whole state space.
    let literals = literal_set(256);
    let text = azoo_workloads::text::english_like(3, 1 << 17);
    let mut group = c.benchmark_group("literal_prefilter");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("nfa_quiescent_skip", |b| {
        let mut engine = NfaEngine::new(&literals).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&text, &mut sink));
    });
    group.bench_function("prefilter", |b| {
        let mut engine = PrefilterEngine::new(&literals).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&text, &mut sink));
    });
    group.finish();
}

criterion_group!(benches, bench_prefilter);
criterion_main!(benches);

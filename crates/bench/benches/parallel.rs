//! Parallel-scanning throughput: the sharding/chunking `ParallelScanner`
//! at 1/2/4/8 worker threads against the single-threaded NFA baseline, on
//! the two workload shapes the design targets:
//!
//! * a Snort-like ruleset — many connected components, so both automaton
//!   sharding and input chunking apply;
//! * Random Forest leaf chains — thousands of tiny chunkable components,
//!   the best case for chunked scanning;
//! * SPM `wC` support counters — counter-bearing filters that used to
//!   pin the scanner to a sequential whole-input fallback and now run
//!   chunk-parallel through speculative frontier summaries.

use azoo_bench::small_ruleset;
use azoo_engines::{Engine, NfaEngine, NullSink, ParallelScanner};
use azoo_workloads::network::{pcap_like, PcapConfig};
use azoo_zoo::random_forest::{build, RandomForestParams, Variant};
use azoo_zoo::sequence_match::{self, SeqMatchParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_parallel(c: &mut Criterion) {
    let ruleset = small_ruleset();
    let input = pcap_like(
        7,
        &PcapConfig {
            len: 1 << 17,
            ..PcapConfig::default()
        },
    );
    let mut group = c.benchmark_group("parallel_snort");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("nfa_baseline", |b| {
        let mut engine = NfaEngine::new(&ruleset).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut engine = ParallelScanner::new(&ruleset, threads).expect("valid");
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&input, &mut sink));
            },
        );
    }
    group.finish();

    let mut params = RandomForestParams::published(Variant::B);
    params.trees = 10;
    params.train_samples = 2000;
    params.test_samples = 200;
    let bench = build(&params);
    let mut group = c.benchmark_group("parallel_random_forest");
    group.throughput(Throughput::Bytes(bench.input.len() as u64));
    group.bench_function("nfa_baseline", |b| {
        let mut engine = NfaEngine::new(&bench.fa.automaton).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&bench.input, &mut sink));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut engine = ParallelScanner::new(&bench.fa.automaton, threads).expect("valid");
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&bench.input, &mut sink));
            },
        );
    }
    group.finish();

    // SPM with support counters: every filter ends in a terminal latch
    // counter, so the shard takes the speculative summary-and-stitch
    // path rather than the old whole-input fallback.
    let mut params = SeqMatchParams::published(6, true);
    params.filters = 40;
    params.transactions = 2_000;
    let (spm, input) = sequence_match::build(&params);
    let mut group = c.benchmark_group("parallel_spm_counters");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("nfa_baseline", |b| {
        let mut engine = NfaEngine::new(&spm).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut engine = ParallelScanner::new(&spm, threads).expect("valid");
                assert_eq!(
                    engine.whole_input_shard_count(),
                    0,
                    "SPM wC must chunk speculatively, not fall back"
                );
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&input, &mut sink));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

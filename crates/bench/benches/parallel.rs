//! Parallel-scanning throughput: the sharding/chunking `ParallelScanner`
//! at 1/2/4/8 worker threads against the single-threaded NFA baseline, on
//! the two workload shapes the design targets:
//!
//! * a Snort-like ruleset — many connected components, so both automaton
//!   sharding and input chunking apply;
//! * Random Forest leaf chains — thousands of tiny chunkable components,
//!   the best case for chunked scanning.

use azoo_bench::small_ruleset;
use azoo_engines::{Engine, NfaEngine, NullSink, ParallelScanner};
use azoo_workloads::network::{pcap_like, PcapConfig};
use azoo_zoo::random_forest::{build, RandomForestParams, Variant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_parallel(c: &mut Criterion) {
    let ruleset = small_ruleset();
    let input = pcap_like(
        7,
        &PcapConfig {
            len: 1 << 17,
            ..PcapConfig::default()
        },
    );
    let mut group = c.benchmark_group("parallel_snort");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("nfa_baseline", |b| {
        let mut engine = NfaEngine::new(&ruleset).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut engine = ParallelScanner::new(&ruleset, threads).expect("valid");
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&input, &mut sink));
            },
        );
    }
    group.finish();

    let mut params = RandomForestParams::published(Variant::B);
    params.trees = 10;
    params.train_samples = 2000;
    params.test_samples = 200;
    let bench = build(&params);
    let mut group = c.benchmark_group("parallel_random_forest");
    group.throughput(Throughput::Bytes(bench.input.len() as u64));
    group.bench_function("nfa_baseline", |b| {
        let mut engine = NfaEngine::new(&bench.fa.automaton).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&bench.input, &mut sink));
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let mut engine = ParallelScanner::new(&bench.fa.automaton, threads).expect("valid");
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&bench.input, &mut sink));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

//! Engine-portfolio throughput: the same ruleset scanned by the sparse
//! NFA engine, the lazy DFA, and (for chain shapes) the bit-parallel
//! engine. This is the performance dimension behind Table I's active-set
//! proxy.

use azoo_bench::{literal_set, small_ruleset};
use azoo_engines::{BitParallelEngine, Engine, LazyDfaEngine, NfaEngine, NullSink};
use azoo_workloads::network::{pcap_like, PcapConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let ruleset = small_ruleset();
    let input = pcap_like(
        1,
        &PcapConfig {
            len: 1 << 17,
            ..PcapConfig::default()
        },
    );
    let mut group = c.benchmark_group("ruleset_scan");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("nfa", |b| {
        let mut engine = NfaEngine::new(&ruleset).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&input, &mut sink));
    });
    group.bench_function("lazy_dfa", |b| {
        let mut engine = LazyDfaEngine::new(&ruleset).expect("no counters");
        let mut sink = NullSink::new();
        engine.scan(&input, &mut sink); // warm the cache
        b.iter(|| engine.scan(&input, &mut sink));
    });
    group.finish();

    let literals = literal_set(256);
    let text = azoo_workloads::text::english_like(3, 1 << 17);
    let mut group = c.benchmark_group("literal_scan");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("nfa", |b| {
        let mut engine = NfaEngine::new(&literals).expect("valid");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&text, &mut sink));
    });
    group.bench_function("bit_parallel", |b| {
        let mut engine = BitParallelEngine::new(&literals).expect("chain-shaped");
        let mut sink = NullSink::new();
        b.iter(|| engine.scan(&text, &mut sink));
    });
    group.bench_function("lazy_dfa", |b| {
        let mut engine = LazyDfaEngine::new(&literals).expect("no counters");
        let mut sink = NullSink::new();
        engine.scan(&text, &mut sink);
        b.iter(|| engine.scan(&text, &mut sink));
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

//! Mesh-automata simulation cost by (l, d) — the engine-side cost model
//! behind Figure 1's profiling sweep and Table V's variants.

use azoo_engines::{Engine, NfaEngine, NullSink};
use azoo_workloads::dna;
use azoo_zoo::{hamming, levenshtein};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_mesh(c: &mut Criterion) {
    let input = dna::random_dna(1, 1 << 15);
    let mut group = c.benchmark_group("hamming_filter");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for (l, d) in [(18, 3), (22, 5), (31, 10)] {
        let pattern = dna::random_dna(7, l);
        let automaton = hamming::hamming_filter(&pattern, d, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{l}x{d}")),
            &automaton,
            |b, a| {
                let mut engine = NfaEngine::new(a).expect("valid");
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&input, &mut sink));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("levenshtein_filter");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for (l, d) in [(19, 3), (24, 5), (37, 10)] {
        let pattern = dna::random_dna(7, l);
        let automaton = levenshtein::levenshtein_filter(&pattern, d, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{l}x{d}")),
            &automaton,
            |b, a| {
                let mut engine = NfaEngine::new(a).expect("valid");
                let mut sink = NullSink::new();
                b.iter(|| engine.scan(&input, &mut sink));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);

//! Table III's performance dimension: the cost of AP soft-reconfiguration
//! padding on the active-set engine vs the lazy DFA.

use azoo_core::Automaton;
use azoo_engines::{Engine, LazyDfaEngine, NfaEngine, NullSink};
use azoo_zoo::sequence_match::{append_filter, generate_sequence, transaction_stream};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn build_pair(filters: usize) -> (Automaton, Automaton) {
    let mut rng = azoo_workloads::rng(0x7AB3);
    let mut native = Automaton::new();
    let mut padded = Automaton::new();
    for i in 0..filters {
        let seq = generate_sequence(&mut rng, 6, 6);
        append_filter(&mut native, &seq, i as u32, None, None);
        append_filter(&mut padded, &seq, i as u32, None, Some(10));
    }
    (native, padded)
}

fn bench_padding(c: &mut Criterion) {
    let (native, padded) = build_pair(24);
    let input = transaction_stream(0x17EA, 3000);
    let mut group = c.benchmark_group("seqmatch_padding");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for (name, automaton) in [("nfa_native", &native), ("nfa_padded", &padded)] {
        group.bench_function(name, |b| {
            let mut engine = NfaEngine::new(automaton).expect("valid");
            let mut sink = NullSink::new();
            b.iter(|| engine.scan(&input, &mut sink));
        });
    }
    for (name, automaton) in [("dfa_native", &native), ("dfa_padded", &padded)] {
        group.bench_function(name, |b| {
            let mut engine =
                LazyDfaEngine::with_max_states(automaton, 1 << 17).expect("no counters");
            let mut sink = NullSink::new();
            engine.scan(&input, &mut sink); // warm
            b.iter(|| engine.scan(&input, &mut sink));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);

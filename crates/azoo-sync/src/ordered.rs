//! Rank-ordered lock wrappers and the per-thread held-rank stack.

use std::cell::RefCell;
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::graph;
use crate::rank::LockRank;

thread_local! {
    /// Locks this thread currently holds (acquisition tokens + ranks).
    /// A plain stack is not enough — guards may be dropped in any order
    /// — so entries carry a token and are removed by identity.
    static HELD: RefCell<HeldSet> = const {
        RefCell::new(HeldSet {
            entries: Vec::new(),
            next_token: 0,
        })
    };
}

struct HeldSet {
    entries: Vec<(u64, LockRank)>,
    next_token: u64,
}

/// Registers the intent to acquire `rank` on this thread: records one
/// *(held → acquired)* edge per lock currently held (in every build),
/// then — in debug/test builds — panics if the acquisition inverts the
/// rank order. Returns the token the guard releases on drop.
///
/// Edges are recorded **before** the inversion check panics, so an
/// inversion that a debug run aborts still lands in the lock graph:
/// the same run's dump shows the cycle.
fn acquire(rank: LockRank) -> u64 {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        let mut worst: Option<LockRank> = None;
        for &(_, h) in &held.entries {
            graph::record(h, rank);
            if worst.is_none_or(|w| h.rank > w.rank) {
                worst = Some(h);
            }
        }
        if let Some(worst) = worst {
            if cfg!(debug_assertions) && rank.rank <= worst.rank {
                panic!(
                    "lock rank inversion: acquiring {rank} while holding {worst}; \
                     ranks must be strictly increasing (workspace table: \
                     azoo_sync::ranks, DESIGN.md §6h)"
                );
            }
        }
        let token = held.next_token;
        held.next_token += 1;
        held.entries.push((token, rank));
        token
    })
}

fn release(token: u64) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(i) = held.entries.iter().position(|&(t, _)| t == token) {
            held.entries.swap_remove(i);
        }
    });
}

/// Releases the held-set entry when the guard drops.
struct HeldToken(u64);

impl Drop for HeldToken {
    fn drop(&mut self) {
        release(self.0);
    }
}

/// Recovers a poisoned guard: every workspace critical section is a
/// plain push/pop or map operation that cannot be left half-updated,
/// so a panic elsewhere in a holder must not cascade.
fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A [`Mutex`] that carries a declared [`LockRank`] and enforces the
/// workspace acquisition order (see [`crate::ranks`]).
///
/// [`lock`](OrderedMutex::lock) panics in debug/test builds when this
/// lock's rank is not strictly greater than every rank the thread
/// already holds; in all builds the acquisition edge is recorded in
/// [`crate::graph`]. Poisoning is recovered, never propagated.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` under `rank`.
    pub const fn new(rank: LockRank, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// The declared rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the lock, enforcing the rank discipline.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = HeldToken(acquire(self.rank));
        OrderedMutexGuard {
            guard: unpoison(self.inner.lock()),
            _token: token,
        }
    }

    /// Mutable access without locking (requires exclusive ownership,
    /// so the rank discipline is trivially upheld).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

/// RAII guard for [`OrderedMutex`]; releases the held-rank entry on drop.
pub struct OrderedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _token: HeldToken,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An [`RwLock`] carrying a declared [`LockRank`]; read and write
/// acquisitions follow the same strictly-increasing discipline as
/// [`OrderedMutex`] (a read held at rank r still forbids acquiring
/// ranks ≤ r — reader/reader deadlocks through writer queuing are real).
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    rank: LockRank,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` under `rank`.
    pub const fn new(rank: LockRank, value: T) -> OrderedRwLock<T> {
        OrderedRwLock {
            rank,
            inner: RwLock::new(value),
        }
    }

    /// The declared rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires a shared read guard, enforcing the rank discipline.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let token = HeldToken(acquire(self.rank));
        OrderedRwLockReadGuard {
            guard: unpoison(self.inner.read()),
            _token: token,
        }
    }

    /// Acquires the exclusive write guard, enforcing the rank discipline.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let token = HeldToken(acquire(self.rank));
        OrderedRwLockWriteGuard {
            guard: unpoison(self.inner.write()),
            _token: token,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

/// Shared-read RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: HeldToken,
}

impl<T> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-write RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: HeldToken,
}

impl<T> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::rank::ranks;

    fn r(rank: u16, name: &'static str) -> LockRank {
        assert!(rank >= ranks::TEST_BASE);
        LockRank::new(rank, name)
    }

    #[test]
    fn ascending_acquisition_is_legal() {
        let a = OrderedMutex::new(r(0x8100, "ord-a"), 1);
        let b = OrderedMutex::new(r(0x8101, "ord-b"), 2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn out_of_order_guard_drops_are_tracked_correctly() {
        let a = OrderedMutex::new(r(0x8110, "drop-a"), ());
        let b = OrderedMutex::new(r(0x8111, "drop-b"), ());
        let c = OrderedMutex::new(r(0x8112, "drop-c"), ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropped before b: the held set must not corrupt
        let gc = c.lock(); // still legal: only drop-b (lower) is held
        drop(gb);
        drop(gc);
        // Everything released: a low-rank acquisition is legal again.
        let _ga = a.lock();
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank inversion"))]
    fn descending_acquisition_panics_in_debug() {
        let a = OrderedMutex::new(r(0x8120, "inv-a"), ());
        let b = OrderedMutex::new(r(0x8121, "inv-b"), ());
        let _gb = b.lock();
        let _ga = a.lock(); // inversion
                            // In release builds this is reachable: the edge is recorded
                            // for the graph instead of panicking.
        if !cfg!(debug_assertions) {
            panic!("lock rank inversion (recorded, not enforced)");
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank inversion"))]
    fn equal_rank_acquisition_panics_in_debug() {
        let a = OrderedMutex::new(r(0x8130, "eq-a"), ());
        let b = OrderedMutex::new(r(0x8130, "eq-b"), ());
        let _ga = a.lock();
        let _gb = b.lock(); // same rank: two shards held at once
        if !cfg!(debug_assertions) {
            panic!("lock rank inversion (recorded, not enforced)");
        }
    }

    #[test]
    fn rwlock_read_then_higher_write_is_legal() {
        let a = OrderedRwLock::new(r(0x8140, "rw-a"), 7);
        let b = OrderedRwLock::new(r(0x8141, "rw-b"), 0);
        let ra = a.read();
        let mut wb = b.write();
        *wb = *ra;
        drop(wb);
        drop(ra);
        assert_eq!(*b.read(), 7);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock rank inversion"))]
    fn rwlock_read_does_not_exempt_the_discipline() {
        let a = OrderedRwLock::new(r(0x8150, "rwinv-a"), ());
        let b = OrderedRwLock::new(r(0x8151, "rwinv-b"), ());
        let _rb = b.read();
        let _ra = a.read(); // reads still must ascend
        if !cfg!(debug_assertions) {
            panic!("lock rank inversion (recorded, not enforced)");
        }
    }

    #[test]
    fn poisoned_lock_recovers() {
        let a = std::sync::Arc::new(OrderedMutex::new(r(0x8160, "poison-a"), 5));
        let a2 = a.clone();
        let _ = std::thread::spawn(move || {
            let _g = a2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*a.lock(), 5, "poisoning must not propagate");
    }
}

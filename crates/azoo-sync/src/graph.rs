//! The process-global lock-acquisition graph.
//!
//! Every time a thread acquires an [`crate::OrderedMutex`] or
//! [`crate::OrderedRwLock`] while already holding locks, one
//! *(held-rank → acquired-rank)* edge per held lock is recorded here —
//! in **every** build, debug and release. The graph is therefore the
//! union of acquisition orders observed across a whole run, and a cycle
//! in it is a latent deadlock even if no single interleaving ever
//! deadlocked (two threads that each completed their ABBA halves at
//! different times still deposit both edges). `azoo-lint --lock-graph`
//! exercises the concurrent subsystems, dumps this graph, and fails on
//! any cycle.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::rank::LockRank;

/// One observed acquisition edge: `to` was acquired while `from` was
/// held, `count` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The rank already held.
    pub from: LockRank,
    /// The rank being acquired.
    pub to: LockRank,
    /// How many acquisitions deposited this edge.
    pub count: u64,
}

/// Keyed by (from.rank, to.rank); names are taken from the first sighting.
static EDGES: OnceLock<Mutex<BTreeMap<(u16, u16), Edge>>> = OnceLock::new();

fn edges() -> &'static Mutex<BTreeMap<(u16, u16), Edge>> {
    EDGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn with_edges<R>(f: impl FnOnce(&mut BTreeMap<(u16, u16), Edge>) -> R) -> R {
    // A plain std mutex, deliberately outside the rank discipline: it is
    // only ever held for one map operation and acquires nothing else.
    let mut map = match edges().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut map)
}

/// Records one observed edge (called by the wrappers on every nested
/// acquisition).
pub(crate) fn record(from: LockRank, to: LockRank) {
    with_edges(|map| {
        map.entry((from.rank, to.rank))
            .or_insert(Edge { from, to, count: 0 })
            .count += 1;
    });
}

/// Clears the registry (test isolation).
pub fn reset() {
    with_edges(|map| map.clear());
}

/// Snapshots the registry into an analyzable [`LockGraph`].
pub fn snapshot() -> LockGraph {
    LockGraph {
        edges: with_edges(|map| map.values().copied().collect()),
    }
}

/// An immutable snapshot of the acquisition graph.
#[derive(Debug, Clone)]
pub struct LockGraph {
    edges: Vec<Edge>,
}

impl LockGraph {
    /// The observed edges, ordered by (from, to) rank.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The distinct ranks appearing in any edge, ascending.
    pub fn nodes(&self) -> Vec<LockRank> {
        let mut nodes: BTreeMap<u16, LockRank> = BTreeMap::new();
        for e in &self.edges {
            nodes.entry(e.from.rank).or_insert(e.from);
            nodes.entry(e.to.rank).or_insert(e.to);
        }
        nodes.into_values().collect()
    }

    /// Every cycle in the graph, reported as the strongly connected
    /// components with more than one node (plus self-loops), each
    /// listed ascending by rank. An empty result means the observed
    /// acquisition order is consistent — no latent ordering deadlock.
    pub fn cycles(&self) -> Vec<Vec<LockRank>> {
        let nodes = self.nodes();
        let index_of: BTreeMap<u16, usize> =
            nodes.iter().enumerate().map(|(i, r)| (r.rank, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut self_loop = vec![false; nodes.len()];
        for e in &self.edges {
            let (f, t) = (index_of[&e.from.rank], index_of[&e.to.rank]);
            if f == t {
                self_loop[f] = true;
            } else {
                adj[f].push(t);
            }
        }
        let mut out: Vec<Vec<LockRank>> = Vec::new();
        for scc in tarjan_sccs(&adj) {
            if scc.len() > 1 {
                let mut cycle: Vec<LockRank> = scc.iter().map(|&i| nodes[i]).collect();
                cycle.sort_unstable();
                out.push(cycle);
            }
        }
        for (i, &looped) in self_loop.iter().enumerate() {
            if looped {
                out.push(vec![nodes[i]]);
            }
        }
        out.sort_unstable();
        out
    }

    /// Human-readable dump: the edge table, then any cycles.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "lock-acquisition graph: {} edge(s)", self.edges.len());
        for e in &self.edges {
            let _ = writeln!(s, "  {} -> {}  (x{})", e.from, e.to, e.count);
        }
        let cycles = self.cycles();
        if cycles.is_empty() {
            let _ = writeln!(s, "no cycles: acquisition order is consistent");
        } else {
            for c in &cycles {
                let names: Vec<String> = c.iter().map(LockRank::to_string).collect();
                let _ = writeln!(s, "CYCLE: {}", names.join(" <-> "));
            }
        }
        s
    }

    /// Graphviz rendering of the observed edges.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph lock_order {\n");
        for n in self.nodes() {
            let _ = writeln!(s, "  \"{}\" [label=\"{}\"];", n.name, n);
        }
        for e in &self.edges {
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [label=\"x{}\"];",
                e.from.name, e.to.name, e.count
            );
        }
        s.push_str("}\n");
        s
    }
}

/// Iterative Tarjan strongly-connected components (no recursion: lock
/// graphs are small, but the detector must not assume so).
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let n = adj.len();
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if state[root].visited {
            continue;
        }
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                state[v].visited = true;
                state[v].index = next_index;
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if !state[w].visited {
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(low);
                }
                if state[v].lowlink == state[v].index {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn r(rank: u16, name: &'static str) -> LockRank {
        LockRank::new(rank, name)
    }

    fn graph(edges: &[(u16, u16)]) -> LockGraph {
        LockGraph {
            edges: edges
                .iter()
                .map(|&(f, t)| Edge {
                    from: r(f, "n"),
                    to: r(t, "n"),
                    count: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn acyclic_chain_has_no_cycles() {
        assert!(graph(&[(1, 2), (2, 3), (1, 3)]).cycles().is_empty());
    }

    #[test]
    fn abba_is_a_cycle() {
        let cycles = graph(&[(1, 2), (2, 1)]).cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].iter().map(|x| x.rank).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let cycles = graph(&[(5, 5)]).cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0][0].rank, 5);
    }

    #[test]
    fn three_node_cycle_found_among_acyclic_edges() {
        let g = graph(&[(1, 2), (2, 3), (3, 1), (1, 9), (9, 10)]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].iter().map(|x| x.rank).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn text_dump_flags_cycles() {
        assert!(graph(&[(1, 2)]).to_text().contains("no cycles"));
        assert!(graph(&[(1, 2), (2, 1)]).to_text().contains("CYCLE"));
    }
}

//! azoo-sync: the workspace's concurrency correctness layer.
//!
//! Three of this repository's subsystems are genuinely concurrent — the
//! multi-tenant scan service, its compiled-database cache, and the
//! multi-threaded scanner — and their failure modes (lock-order
//! inversion, lost rollbacks, races on session teardown) do not show up
//! in ordinary tests because no single interleaving hits them. This
//! crate makes those properties machine-checked instead of
//! reviewer-checked:
//!
//! * **[`OrderedMutex`] / [`OrderedRwLock`]** — drop-in lock wrappers
//!   that carry a declared [`LockRank`] from the single workspace-wide
//!   rank table in [`ranks`]. A thread may only acquire a lock whose
//!   rank is *strictly greater* than every rank it already holds; in
//!   debug/test builds any violation panics at the acquisition site,
//!   naming both locks.
//! * **[`graph`]** — a process-global registry of every observed
//!   *(held-rank → acquired-rank)* edge, in every build. Cycle
//!   detection over the union of edges seen across a whole test run
//!   catches ABBA orderings that never deadlocked at runtime —
//!   a race detector for lock-ordering bugs. `azoo-lint --lock-graph`
//!   dumps and checks it.
//! * **[`sched`]** — a deterministic schedule-permutation harness (the
//!   vendored-`loom` fallback; see DESIGN.md §6h): threads pause at
//!   explicit [`sched::point`] hooks, a controller enumerates *every*
//!   interleaving of those pause points depth-first, and model tests
//!   assert their invariants under each one.
//!
//! Locks are never poisoned-fatal here: every guard recovers from
//! poisoning, because every critical section in the workspace is a
//! plain push/pop or map operation that cannot be left half-updated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod graph;
mod ordered;
mod rank;
pub mod sched;

pub use ordered::{
    OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard, OrderedRwLockWriteGuard,
};
pub use rank::{ranks, LockRank};

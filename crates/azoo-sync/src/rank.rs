//! Lock ranks and the workspace-wide rank table.

/// A lock's position in the workspace acquisition order.
///
/// The discipline: a thread may acquire a lock only when its rank is
/// **strictly greater** than the rank of every lock the thread already
/// holds. Equal ranks are also refused — several locks may share a rank
/// (the session-map shards do) exactly *because* no code path is
/// allowed to hold two of them at once.
///
/// Every rank used by the workspace is declared once, in [`ranks`];
/// tests may mint private ranks (use values ≥ [`ranks::TEST_BASE`]) to
/// exercise the detector without colliding with the real table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockRank {
    /// Acquisition-order position; lower ranks are acquired first.
    pub rank: u16,
    /// Stable human-readable name, used in panics and the dumped graph.
    pub name: &'static str,
}

impl LockRank {
    /// Declares a rank. `name` should match the DESIGN.md §6h table row.
    pub const fn new(rank: u16, name: &'static str) -> LockRank {
        LockRank { rank, name }
    }
}

impl std::fmt::Display for LockRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.rank)
    }
}

/// The single workspace-wide rank table.
///
/// One row per lock (or per family of same-rank locks). The authoritative
/// prose version — what each lock guards and which locks may legally be
/// held while acquiring it — lives in DESIGN.md §6h; keep the two in
/// sync when adding a lock.
///
/// Current acquisition chains (all strictly ascending):
///
/// ```text
/// SERVE_SESSION → SERVE_TENANTS      (close: drop tenant admission state)
/// SERVE_SESSION → DB_POOL            (close/timeout: recycle the executor)
/// ```
///
/// Everything else is acquired with no lock held.
pub mod ranks {
    use super::LockRank;

    /// `DbCache.map` — the compiled-database cache (azoo-serve).
    /// Held only for a map lookup/insert; never while compiling.
    pub const DB_CACHE: LockRank = LockRank::new(10, "db-cache");

    /// `ScanService.shards[i]` — one session-map shard (azoo-serve).
    /// All 16 shards share this rank: no path may hold two shards.
    pub const SERVE_SHARD: LockRank = LockRank::new(20, "serve-shard");

    /// `SessionInner` — one session's stream state (azoo-serve).
    /// The only rank legally held while acquiring others (see chains).
    pub const SERVE_SESSION: LockRank = LockRank::new(30, "serve-session");

    /// `ScanService.tenants` — per-tenant admission gauges (azoo-serve).
    /// Acquired bare on open, and under `SERVE_SESSION` on close.
    pub const SERVE_TENANTS: LockRank = LockRank::new(40, "serve-tenants");

    /// `Db.pool` — the recycled-executor free list (azoo-serve).
    /// Acquired bare on checkout, and under `SERVE_SESSION` on checkin.
    pub const DB_POOL: LockRank = LockRank::new(50, "db-pool");

    /// `Db.proto` — the pristine prototype executor (azoo-serve).
    /// Acquired bare, only when the free list is empty.
    pub const DB_PROTO: LockRank = LockRank::new(60, "db-proto");

    /// `ParallelScanner` speculative-summary accumulator (azoo-engines):
    /// workers deposit per-subchunk transfer summaries for the
    /// main-thread stitch. Acquired bare, never while holding
    /// [`ENGINE_MERGE`] (ranked below it so a worker could legally
    /// escalate, though none does today).
    pub const ENGINE_SUMMARY: LockRank = LockRank::new(65, "engine-summary");

    /// `ParallelScanner` merge accumulator (azoo-engines): workers
    /// append their locally-collected report batches. Acquired bare,
    /// once per worker per scan.
    pub const ENGINE_MERGE: LockRank = LockRank::new(70, "engine-merge");

    /// Ranks at or above this value are reserved for tests exercising
    /// the detector itself; the real table never grows into them.
    pub const TEST_BASE: u16 = 0x8000;
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn table_is_strictly_ordered_and_uniquely_named() {
        let table = [
            ranks::DB_CACHE,
            ranks::SERVE_SHARD,
            ranks::SERVE_SESSION,
            ranks::SERVE_TENANTS,
            ranks::DB_POOL,
            ranks::DB_PROTO,
            ranks::ENGINE_SUMMARY,
            ranks::ENGINE_MERGE,
        ];
        for pair in table.windows(2) {
            assert!(pair[0].rank < pair[1].rank, "{} !< {}", pair[0], pair[1]);
        }
        let mut names: Vec<&str> = table.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), table.len(), "duplicate rank name");
        assert!(table.iter().all(|r| r.rank < ranks::TEST_BASE));
    }

    #[test]
    fn display_names_rank() {
        assert_eq!(ranks::DB_POOL.to_string(), "db-pool(50)");
    }
}

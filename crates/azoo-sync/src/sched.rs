//! Deterministic schedule-permutation model checking.
//!
//! `loom` cannot be vendored into this offline workspace (see DESIGN.md
//! §6h), so this module provides the fallback it prescribes: a
//! cooperative scheduler that runs real code on real threads but
//! serializes them at explicit [`point`] hooks and enumerates **every**
//! interleaving of those hooks depth-first.
//!
//! # How it works
//!
//! Code under test calls [`point("name")`](point) at its racy
//! boundaries (a relaxed atomic load makes it free outside model runs).
//! A model test wraps a scenario in [`model`]; inside, [`run`] starts
//! the scenario's threads under a controller that lets **exactly one
//! thread run at a time**. At every pause point the controller chooses
//! which paused thread resumes; the sequence of choices is recorded,
//! and [`model`] replays the scenario with the next untried choice
//! sequence until the whole tree is explored (or the cap is hit —
//! reported in [`ModelStats::complete`]).
//!
//! Because only one thread runs at a time, exploration is deterministic
//! and the harness itself cannot deadlock — **provided no schedule
//! point sits inside a lock-held critical section** (the running thread
//! must always be able to reach its next point without waiting on a
//! paused thread). Every hook placed in the workspace honours that
//! rule; the rank discipline ([`crate::OrderedMutex`]) independently
//! checks it at runtime.
//!
//! # Scope and limits
//!
//! Unlike `loom`, interleavings are explored only at the coarse
//! granularity of the placed hooks, and weak-memory reorderings are not
//! modelled (all workspace protocols use `SeqCst` gauges and mutexes).
//! What it does share with `loom`: exhaustiveness over the modelled
//! schedule space, deterministic replay of a failing schedule (the
//! failing choice sequence is printed on panic), and assertions that
//! run under every explored interleaving.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Wall-clock bound on one scheduling step; hitting it means a
/// scheduled thread blocked outside a schedule point (a placement bug),
/// and the harness panics with a diagnosis instead of hanging CI.
const STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Number of live controllers, so [`point`] costs one relaxed load when
/// no model is running.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The controller this thread is scheduled under, if any.
    static CONTROLLER: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
    /// Exploration state for the `model` driver running on this thread.
    static MODEL: RefCell<Option<ModelCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    ctrl: Arc<Controller>,
    id: usize,
}

struct ModelCtx {
    /// Choice indices to replay, decided by the previous schedules.
    plan: Vec<usize>,
    /// Decisions this schedule actually made: (arity, chosen).
    log: Vec<(usize, usize)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Waiting at a schedule point (or not yet started).
    Ready,
    /// The one thread currently allowed to run.
    Running,
    /// Body returned (or panicked).
    Finished,
}

struct SchedState {
    status: Vec<Status>,
    /// The thread allowed to run; `None` once all are finished.
    current: Option<usize>,
    /// Full replay plan and the number of decisions consumed before
    /// this `run` started (a schedule may contain several `run`s).
    plan: Vec<usize>,
    base: usize,
    log: Vec<(usize, usize)>,
    /// Panic messages from scheduled threads.
    panics: Vec<String>,
}

struct Controller {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Controller {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Picks the next thread to run among the ready ones (ascending id
    /// order, so arity and choice meaning are deterministic), consuming
    /// the replay plan first and defaulting to the first thereafter.
    fn choose(&self, st: &mut SchedState) {
        let ready: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            st.current = None;
            return;
        }
        let decision = st.base + st.log.len();
        let chosen = st
            .plan
            .get(decision)
            .copied()
            .unwrap_or(0)
            .min(ready.len() - 1);
        st.log.push((ready.len(), chosen));
        st.current = Some(ready[chosen]);
    }

    /// Called from [`point`]: yield, let the controller choose, and
    /// block until chosen again. (Stalls are diagnosed by [`run`]'s
    /// timed wait, not here — a long-running sibling is legitimate.)
    fn pause(&self, id: usize) {
        let mut st = self.lock();
        st.status[id] = Status::Ready;
        self.choose(&mut st);
        self.cv.notify_all();
        while st.current != Some(id) {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        st.status[id] = Status::Running;
    }

    /// First wait: block until this thread is chosen to start.
    fn wait_for_start(&self, id: usize) {
        let mut st = self.lock();
        while st.current != Some(id) {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        st.status[id] = Status::Running;
    }

    fn finish(&self, id: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.status[id] = Status::Finished;
        if let Some(msg) = panic_msg {
            st.panics.push(msg);
        }
        self.choose(&mut st);
        self.cv.notify_all();
    }
}

/// A schedule point. In code under test, marks a boundary where the
/// model checker may switch threads; outside a model run (or on threads
/// not scheduled by one) it is a no-op costing one relaxed atomic load.
///
/// **Placement rule:** never call this while holding a lock — the
/// paused thread would block the running one. The rank discipline's
/// held-set makes violations visible as harness stalls, caught by a
/// timeout panic rather than a CI hang.
pub fn point(_name: &'static str) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    let ctx = CONTROLLER.with(|c| c.borrow().as_ref().map(|ctx| (ctx.ctrl.clone(), ctx.id)));
    if let Some((ctrl, id)) = ctx {
        ctrl.pause(id);
    }
}

/// One scheduled thread of a scenario; build with [`thread`].
pub struct ScheduledThread {
    body: Box<dyn FnOnce() + Send + 'static>,
}

/// Wraps a closure as a scenario thread for [`run`].
pub fn thread(f: impl FnOnce() + Send + 'static) -> ScheduledThread {
    ScheduledThread { body: Box::new(f) }
}

/// Runs a scenario's threads under the scheduler and joins them all.
///
/// Inside [`model`], the exploration plan decides every scheduling
/// choice; standalone, the default (first-ready) schedule runs once.
/// Thread registration order is the choice-index order, so scenarios
/// must register threads deterministically.
///
/// # Panics
///
/// Re-raises the first panic from any scenario thread (after all
/// threads finished, so no state is left astray), and panics on a
/// harness stall (a schedule point inside a lock-held region).
pub fn run(threads: Vec<ScheduledThread>) {
    let n = threads.len();
    let (plan, base) = MODEL.with(|m| {
        m.borrow()
            .as_ref()
            .map(|ctx| (ctx.plan.clone(), ctx.log.len()))
            .unwrap_or_default()
    });
    let ctrl = Arc::new(Controller {
        state: Mutex::new(SchedState {
            status: vec![Status::Ready; n],
            current: None,
            plan,
            base,
            log: Vec::new(),
            panics: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    ACTIVE.fetch_add(1, Ordering::SeqCst);
    let handles: Vec<_> = threads
        .into_iter()
        .enumerate()
        .map(|(id, t)| {
            let ctrl = ctrl.clone();
            std::thread::spawn(move || {
                CONTROLLER.with(|c| {
                    *c.borrow_mut() = Some(ThreadCtx {
                        ctrl: ctrl.clone(),
                        id,
                    });
                });
                ctrl.wait_for_start(id);
                let result = catch_unwind(AssertUnwindSafe(t.body));
                CONTROLLER.with(|c| *c.borrow_mut() = None);
                let msg = result.err().map(|e| panic_message(&e));
                ctrl.finish(id, msg);
            })
        })
        .collect();

    // Kick the first choice, then wait for every thread to finish.
    let mut stalled = false;
    {
        let mut st = ctrl.lock();
        ctrl.choose(&mut st);
        ctrl.cv.notify_all();
        while st.status.iter().any(|s| *s != Status::Finished) {
            let (g, timeout) = match ctrl.cv.wait_timeout(st, STALL_TIMEOUT) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            st = g;
            if timeout.timed_out() && st.status.iter().any(|s| *s != Status::Finished) {
                stalled = true;
                break;
            }
        }
    }
    if !stalled {
        // All finished; joins cannot block.
        for h in handles {
            let _ = h.join();
        }
    }
    ACTIVE.fetch_sub(1, Ordering::SeqCst);
    assert!(
        !stalled,
        "sched: harness stalled — a scheduled thread blocked outside a schedule \
         point (is a point placed inside a lock-held region?)"
    );

    let st = ctrl.lock();
    MODEL.with(|m| {
        if let Some(ctx) = m.borrow_mut().as_mut() {
            ctx.log.extend(st.log.iter().copied());
        }
    });
    if let Some(first) = st.panics.first().cloned() {
        let log = st.log.clone();
        drop(st);
        panic!("scenario thread panicked under schedule {log:?}: {first}");
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Exploration bounds for [`model_with`].
#[derive(Debug, Clone, Copy)]
pub struct ModelOpts {
    /// Stop after this many schedules even if the tree is not exhausted.
    pub max_schedules: usize,
}

impl Default for ModelOpts {
    fn default() -> Self {
        ModelOpts {
            max_schedules: 100_000,
        }
    }
}

/// What [`model`] explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Total scheduling decisions across all schedules.
    pub decisions: usize,
    /// Whether the whole schedule tree was exhausted (false only when
    /// [`ModelOpts::max_schedules`] stopped exploration early).
    pub complete: bool,
}

/// Explores every interleaving of a scenario (see the module docs).
///
/// `scenario` is invoked once per schedule; it must build fresh state,
/// call [`run`] with its threads, and assert its invariants afterwards.
/// Returns exploration statistics; asserting
/// [`ModelStats::complete`] in the caller guards against silent
/// truncation.
///
/// # Panics
///
/// Propagates the first assertion failure, printing the choice
/// sequence of the failing schedule for replay.
pub fn model(scenario: impl FnMut()) -> ModelStats {
    model_with(ModelOpts::default(), scenario)
}

/// [`model`] with explicit exploration bounds.
pub fn model_with(opts: ModelOpts, mut scenario: impl FnMut()) -> ModelStats {
    let mut stats = ModelStats {
        schedules: 0,
        decisions: 0,
        complete: true,
    };
    let mut plan: Vec<usize> = Vec::new();
    loop {
        MODEL.with(|m| {
            *m.borrow_mut() = Some(ModelCtx {
                plan: plan.clone(),
                log: Vec::new(),
            });
        });
        let result = catch_unwind(AssertUnwindSafe(&mut scenario));
        let ctx = MODEL.with(|m| m.borrow_mut().take());
        let log = ctx.map(|c| c.log).unwrap_or_default();
        if let Err(e) = result {
            eprintln!(
                "sched::model: schedule {} failed; choices: {:?}",
                stats.schedules, log
            );
            resume_unwind(e);
        }
        stats.schedules += 1;
        stats.decisions += log.len();

        // Depth-first: bump the rightmost decision that still has an
        // untried branch; exhausted when none does.
        let next = log.iter().enumerate().rev().find_map(|(i, &(arity, c))| {
            (c + 1 < arity).then(|| {
                let mut p: Vec<usize> = log[..i].iter().map(|&(_, c)| c).collect();
                p.push(c + 1);
                p
            })
        });
        match next {
            Some(p) => {
                if stats.schedules >= opts.max_schedules {
                    stats.complete = false;
                    break;
                }
                plan = p;
            }
            None => break,
        }
    }
    stats
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn explores_all_interleavings_of_two_threads() {
        // Two threads, one point each: sequences of per-thread segments
        // A1 A2 / B1 B2 interleave in C(4,2) = 6 ways. Record the order
        // segments ran and check every distinct order appears.
        let seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        let seen2 = seen.clone();
        let stats = model(move || {
            let trace = Arc::new(Mutex::new(String::new()));
            let (ta, tb) = (trace.clone(), trace.clone());
            run(vec![
                thread(move || {
                    ta.lock().unwrap().push('a');
                    point("a-mid");
                    ta.lock().unwrap().push('A');
                }),
                thread(move || {
                    tb.lock().unwrap().push('b');
                    point("b-mid");
                    tb.lock().unwrap().push('B');
                }),
            ]);
            let t = trace.lock().unwrap().clone();
            assert_eq!(t.len(), 4);
            seen2.lock().unwrap().insert(t);
        });
        assert!(stats.complete);
        assert_eq!(stats.schedules, 6, "C(4,2) interleavings");
        assert_eq!(seen.lock().unwrap().len(), 6, "all distinct orders seen");
    }

    #[test]
    fn finds_a_lost_update_some_schedule() {
        // Classic read-modify-write race at schedule-point granularity:
        // some interleaving must lose an update.
        let lost = std::cell::Cell::new(false);
        let stats = model(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let mut bodies = Vec::new();
            for _ in 0..2 {
                let c = counter.clone();
                bodies.push(thread(move || {
                    let v = c.load(Ordering::SeqCst);
                    point("between-read-and-write");
                    c.store(v + 1, Ordering::SeqCst);
                }));
            }
            run(bodies);
            // Cannot assert == 2: that is exactly the bug this harness
            // exists to surface. Record whether any schedule lost one.
            if counter.load(Ordering::SeqCst) != 2 {
                lost.set(true);
            }
        });
        assert!(stats.complete);
        assert!(
            lost.get(),
            "exploration must hit the lost-update interleaving"
        );
    }

    #[test]
    fn failing_assertion_propagates_with_schedule() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                run(vec![thread(|| point("only")), thread(|| {})]);
                panic!("scenario assertion failed");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn point_is_a_noop_outside_models() {
        point("free");
    }

    #[test]
    fn schedule_cap_reports_incomplete() {
        let stats = model_with(ModelOpts { max_schedules: 2 }, || {
            run(vec![
                thread(|| point("x")),
                thread(|| point("y")),
                thread(|| point("z")),
            ]);
        });
        assert_eq!(stats.schedules, 2);
        assert!(!stats.complete);
    }
}

//! The detector detecting itself: deliberately-broken lock usage must
//! be caught — by a panic at the acquisition site in debug builds, and
//! by cycle detection over the recorded graph in every build, even when
//! no deadlock occurred at runtime.

#![allow(clippy::unwrap_used)]

use azoo_sync::{graph, ranks, LockRank, OrderedMutex};
use std::sync::Arc;

fn r(rank: u16, name: &'static str) -> LockRank {
    assert!(rank >= ranks::TEST_BASE, "tests must use private ranks");
    LockRank::new(rank, name)
}

/// A deliberately rank-inverted pair of locks must panic in debug
/// builds, at the second acquisition, naming both locks.
#[test]
#[cfg(debug_assertions)]
fn deliberate_inversion_panics_at_the_acquisition_site() {
    let low = Arc::new(OrderedMutex::new(r(0x9000, "det-low"), ()));
    let high = Arc::new(OrderedMutex::new(r(0x9001, "det-high"), ()));
    let (l2, h2) = (low.clone(), high.clone());
    let err = std::thread::spawn(move || {
        let _h = h2.lock();
        let _l = l2.lock(); // inversion: det-low under det-high
    })
    .join()
    .expect_err("inverted acquisition must panic in debug builds");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic message");
    assert!(msg.contains("lock rank inversion"), "got: {msg}");
    assert!(
        msg.contains("det-low") && msg.contains("det-high"),
        "got: {msg}"
    );
}

/// The ABBA pattern run on two threads that never overlap — thread 1
/// finishes its A→B half before thread 2 starts its B→A half, so no
/// interleaving could deadlock — must still surface as a cycle in the
/// dumped lock graph: the registry accumulates edges across the whole
/// run, which is exactly what makes it a race detector for ordering
/// bugs no single schedule hits.
#[test]
fn abba_without_runtime_deadlock_is_a_graph_cycle() {
    let a = Arc::new(OrderedMutex::new(r(0x9010, "abba-a"), ()));
    let b = Arc::new(OrderedMutex::new(r(0x9011, "abba-b"), ()));

    // Thread 1: A then B (legal; deposits edge A→B) — run to completion.
    let (a1, b1) = (a.clone(), b.clone());
    std::thread::spawn(move || {
        let _ga = a1.lock();
        let _gb = b1.lock();
    })
    .join()
    .expect("ascending half must not panic");

    // Thread 2, strictly afterwards: B then A. In debug builds the
    // acquisition panics — but the edge B→A is recorded *before* the
    // panic, so the cycle lands in the graph either way.
    let (a2, b2) = (a.clone(), b.clone());
    let second = std::thread::spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.lock();
    })
    .join();
    assert_eq!(
        second.is_err(),
        cfg!(debug_assertions),
        "descending half panics exactly in debug builds"
    );

    let g = graph::snapshot();
    let cycle = g
        .cycles()
        .into_iter()
        .find(|c| c.iter().any(|n| n.rank == 0x9010))
        .expect("ABBA edges must form a cycle in the dumped graph");
    let ranks: Vec<u16> = cycle.iter().map(|n| n.rank).collect();
    assert_eq!(ranks, vec![0x9010, 0x9011]);
    assert!(g.to_text().contains("CYCLE"));
    // And the dot rendering names both locks.
    let dot = g.to_dot();
    assert!(dot.contains("abba-a") && dot.contains("abba-b"));
}

/// Clean nested use deposits edges but no cycle.
#[test]
fn consistent_nesting_yields_an_acyclic_graph() {
    let outer = Arc::new(OrderedMutex::new(r(0x9020, "nest-outer"), ()));
    let inner = Arc::new(OrderedMutex::new(r(0x9021, "nest-inner"), ()));
    for _ in 0..3 {
        let _go = outer.lock();
        let _gi = inner.lock();
    }
    let g = graph::snapshot();
    let edge = g
        .edges()
        .iter()
        .find(|e| e.from.rank == 0x9020 && e.to.rank == 0x9021)
        .expect("nested acquisition must be recorded");
    assert!(edge.count >= 3);
    assert!(
        !g.cycles()
            .iter()
            .any(|c| c.iter().any(|n| n.rank == 0x9020)),
        "consistent order must not cycle"
    );
}

//! Datasets: quantized feature matrices with class labels, and the
//! synthetic MNIST stand-in.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A classification dataset with byte-quantized features.
///
/// Features are stored row-major: sample `i` occupies
/// `features[i * n_features .. (i + 1) * n_features]`. Byte quantization
/// (0..=255) matches both MNIST pixel intensities and the 8-bit symbol
/// alphabet of automata processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Number of features per sample.
    pub n_features: usize,
    /// Number of distinct class labels.
    pub n_classes: usize,
    features: Vec<u8>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Creates a dataset from row-major features and labels.
    ///
    /// # Panics
    ///
    /// Panics if the feature length is not `labels.len() * n_features`.
    pub fn new(n_features: usize, n_classes: usize, features: Vec<u8>, labels: Vec<u8>) -> Self {
        assert_eq!(features.len(), labels.len() * n_features);
        Dataset {
            n_features,
            n_classes,
            features,
            labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature vector of sample `i`.
    pub fn sample(&self, i: usize) -> &[u8] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// Splits into `(first, second)` at `fraction` of the samples.
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * fraction) as usize;
        let first = Dataset {
            n_features: self.n_features,
            n_classes: self.n_classes,
            features: self.features[..cut * self.n_features].to_vec(),
            labels: self.labels[..cut].to_vec(),
        };
        let second = Dataset {
            n_features: self.n_features,
            n_classes: self.n_classes,
            features: self.features[cut * self.n_features..].to_vec(),
            labels: self.labels[cut..].to_vec(),
        };
        (first, second)
    }

    /// Per-feature variance, used to rank features when restricting a
    /// model to a feature pool (Table II's *features* hyperparameter).
    pub fn feature_variances(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        let mut sums = vec![0f64; self.n_features];
        let mut sq = vec![0f64; self.n_features];
        for i in 0..self.len() {
            for (f, &v) in self.sample(i).iter().enumerate() {
                sums[f] += v as f64;
                sq[f] += (v as f64) * (v as f64);
            }
        }
        sums.iter()
            .zip(&sq)
            .map(|(&s, &q)| q / n - (s / n) * (s / n))
            .collect()
    }
}

/// Generates a synthetic MNIST-like dataset: 784 features (28x28), 10
/// classes, each class defined by a smooth random prototype image with
/// per-sample noise, jitter, and intensity scaling.
///
/// This stands in for the real MNIST database (unavailable offline). The
/// structure preserves what the Random Forest benchmarks exercise:
/// informative low-variance and high-variance pixels, class-dependent
/// pixel correlations, and byte-quantized intensities.
pub fn synthetic_mnist(seed: u64, n_samples: usize) -> Dataset {
    const SIDE: usize = 28;
    const N_FEATURES: usize = SIDE * SIDE;
    const N_CLASSES: usize = 10;
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    // Class prototypes: sums of random Gaussian-ish blobs ("strokes").
    let mut prototypes = vec![[0f32; N_FEATURES]; N_CLASSES];
    for proto in prototypes.iter_mut() {
        for _ in 0..r.random_range(3..7) {
            let cx = r.random_range(4..24) as f32;
            let cy = r.random_range(4..24) as f32;
            let sx = r.random_range(2..6) as f32;
            let sy = r.random_range(2..6) as f32;
            let amp = 120.0 + 135.0 * r.random::<f32>();
            for y in 0..SIDE {
                for x in 0..SIDE {
                    let dx = (x as f32 - cx) / sx;
                    let dy = (y as f32 - cy) / sy;
                    proto[y * SIDE + x] += amp * (-(dx * dx + dy * dy)).exp();
                }
            }
        }
    }
    let mut features = Vec::with_capacity(n_samples * N_FEATURES);
    let mut labels = Vec::with_capacity(n_samples);
    for i in 0..n_samples {
        let class = (i % N_CLASSES) as u8;
        let proto = &prototypes[class as usize];
        // Jitter: shift the prototype by up to ±2 pixels.
        let (jx, jy) = (r.random_range(-2..3i32), r.random_range(-2..3i32));
        let scale = 0.8 + 0.4 * r.random::<f32>();
        for y in 0..SIDE as i32 {
            for x in 0..SIDE as i32 {
                let (sx, sy) = (x - jx, y - jy);
                let base = if (0..SIDE as i32).contains(&sx) && (0..SIDE as i32).contains(&sy) {
                    proto[(sy as usize) * SIDE + sx as usize]
                } else {
                    0.0
                };
                let noise = (r.random::<f32>() - 0.5) * 60.0;
                features.push((base * scale + noise).clamp(0.0, 255.0) as u8);
            }
        }
        labels.push(class);
    }
    Dataset::new(N_FEATURES, N_CLASSES, features, labels)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mnist_shape_and_determinism() {
        let d = synthetic_mnist(1, 100);
        assert_eq!(d.len(), 100);
        assert_eq!(d.n_features, 784);
        assert_eq!(d.n_classes, 10);
        assert_eq!(d.sample(0).len(), 784);
        let e = synthetic_mnist(1, 100);
        assert_eq!(d, e);
    }

    #[test]
    fn labels_cycle_classes() {
        let d = synthetic_mnist(2, 30);
        for i in 0..30 {
            assert_eq!(d.label(i), (i % 10) as u8);
        }
    }

    #[test]
    fn split_partitions() {
        let d = synthetic_mnist(3, 50);
        let (a, b) = d.split(0.8);
        assert_eq!(a.len(), 40);
        assert_eq!(b.len(), 10);
        assert_eq!(a.sample(0), d.sample(0));
        assert_eq!(b.sample(0), d.sample(40));
    }

    #[test]
    fn classes_are_separable() {
        // Same-class samples should correlate more than cross-class ones.
        let d = synthetic_mnist(4, 40);
        let dist = |a: &[u8], b: &[u8]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let d = x as f64 - y as f64;
                    d * d
                })
                .sum()
        };
        // samples 0 and 10 are class 0; sample 1 is class 1.
        let same = dist(d.sample(0), d.sample(10));
        let diff = dist(d.sample(0), d.sample(1));
        assert!(same < diff, "same-class distance {same} >= cross {diff}");
    }

    #[test]
    fn variances_nonnegative() {
        let d = synthetic_mnist(5, 20);
        assert!(d.feature_variances().iter().all(|&v| v >= -1e-9));
    }
}

//! Random forests: training, native inference, and multi-threaded batch
//! prediction.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;
use crate::tree::Tree;

/// Hyperparameters for [`Forest::train`], mirroring the knobs the paper's
/// Table II varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestParams {
    /// Number of trees (the paper trains 20).
    pub trees: usize,
    /// Leaf budget per tree (Table II: 400 or 800).
    pub max_leaves: usize,
    /// Size of the feature pool the model may use, selected by variance
    /// ranking (Table II: 270 or 200 "features").
    pub feature_pool: usize,
    /// Random subspace size per tree; with the +1 separator state this is
    /// the automata chain length (30 → 31-state chains, as in Table I).
    pub subspace: usize,
    /// Training seed.
    pub seed: u64,
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<Tree>,
    /// Number of classes in the training data.
    pub n_classes: usize,
    /// Number of features per sample.
    pub n_features: usize,
    /// The hyperparameters the forest was trained with.
    pub params: ForestParams,
}

impl Forest {
    /// Trains a forest: ranks features by variance, keeps the top
    /// `feature_pool`, then grows `trees` CART trees on bootstrap samples,
    /// each restricted to a random `subspace` of the pool.
    ///
    /// # Panics
    ///
    /// Panics if `subspace > feature_pool` or `feature_pool` exceeds the
    /// dataset's feature count.
    pub fn train(data: &Dataset, params: &ForestParams) -> Forest {
        assert!(params.feature_pool <= data.n_features);
        assert!(params.subspace <= params.feature_pool);
        assert!(params.subspace > 0 && params.trees > 0);
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        // Variance-ranked feature pool.
        let variances = data.feature_variances();
        let mut ranked: Vec<u32> = (0..data.n_features as u32).collect();
        ranked.sort_by(|&a, &b| variances[b as usize].total_cmp(&variances[a as usize]));
        let pool = &ranked[..params.feature_pool];

        let mtry = (params.subspace as f64).sqrt().ceil() as usize * 2;
        let mut trees = Vec::with_capacity(params.trees);
        for t in 0..params.trees {
            // Bootstrap rows.
            let rows: Vec<u32> = (0..data.len())
                .map(|_| rng.random_range(0..data.len()) as u32)
                .collect();
            // Random subspace from the pool.
            let mut pool_shuffled = pool.to_vec();
            for i in (1..pool_shuffled.len()).rev() {
                let j = rng.random_range(0..=i);
                pool_shuffled.swap(i, j);
            }
            let subspace = pool_shuffled[..params.subspace].to_vec();
            trees.push(Tree::train(
                data,
                &rows,
                subspace,
                params.max_leaves,
                mtry,
                params.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ));
        }
        Forest {
            trees,
            n_classes: data.n_classes,
            n_features: data.n_features,
            params: *params,
        }
    }

    /// The trained trees.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Majority-vote prediction for one sample (ties break toward the
    /// smaller class label).
    pub fn predict(&self, sample: &[u8]) -> u8 {
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(sample) as usize] += 1;
        }
        majority(&votes)
    }

    /// Serial batch prediction (the "Scikit Learn" row of Table IV).
    pub fn predict_batch(&self, data: &Dataset) -> Vec<u8> {
        (0..data.len())
            .map(|i| self.predict(data.sample(i)))
            .collect()
    }

    /// Multi-threaded batch prediction over `threads` worker threads (the
    /// "Scikit Learn MT" row of Table IV).
    pub fn predict_batch_parallel(&self, data: &Dataset, threads: usize) -> Vec<u8> {
        let threads = threads.max(1);
        let n = data.len();
        let chunk = n.div_ceil(threads);
        let mut out = vec![0u8; n];
        crossbeam::thread::scope(|scope| {
            for (t, slot) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move |_| {
                    for (k, o) in slot.iter_mut().enumerate() {
                        *o = self.predict(data.sample(start + k));
                    }
                });
            }
        })
        .expect("prediction workers never panic");
        out
    }

    /// Classification accuracy on `data`.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict_batch(data);
        let correct = preds
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p == data.label(i))
            .count();
        correct as f64 / data.len() as f64
    }

    /// Total number of leaves across all trees (one automata chain each).
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(Tree::leaf_count).sum()
    }

    /// Split-frequency feature importance, normalized to sum to 1
    /// (all-zero if the forest somehow made no splits).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut counts = vec![0u32; self.n_features];
        for tree in &self.trees {
            for (f, c) in tree.split_counts(self.n_features).iter().enumerate() {
                counts[f] += c;
            }
        }
        let total: u32 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.n_features];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

/// Index of the maximum vote, ties toward the smaller index.
pub(crate) fn majority(votes: &[u32]) -> u8 {
    votes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u8)
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::dataset::synthetic_mnist;

    fn quick_forest() -> (Dataset, Dataset, Forest) {
        let data = synthetic_mnist(11, 400);
        let (train, test) = data.split(0.75);
        let forest = Forest::train(
            &train,
            &ForestParams {
                trees: 8,
                max_leaves: 60,
                feature_pool: 200,
                subspace: 30,
                seed: 5,
            },
        );
        (train, test, forest)
    }

    #[test]
    fn forest_beats_chance_convincingly() {
        let (_, test, forest) = quick_forest();
        let acc = forest.accuracy(&test);
        assert!(acc > 0.6, "test accuracy only {acc}");
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let (_, test, forest) = quick_forest();
        let serial = forest.predict_batch(&test);
        for threads in [1, 2, 3, 7] {
            assert_eq!(forest.predict_batch_parallel(&test, threads), serial);
        }
    }

    #[test]
    fn more_leaves_do_not_hurt_training_fit() {
        let data = synthetic_mnist(12, 300);
        let small = Forest::train(
            &data,
            &ForestParams {
                trees: 4,
                max_leaves: 10,
                feature_pool: 150,
                subspace: 25,
                seed: 1,
            },
        );
        let big = Forest::train(
            &data,
            &ForestParams {
                trees: 4,
                max_leaves: 120,
                feature_pool: 150,
                subspace: 25,
                seed: 1,
            },
        );
        assert!(big.accuracy(&data) >= small.accuracy(&data));
        assert!(big.total_leaves() > small.total_leaves());
    }

    #[test]
    fn majority_tie_breaks_low() {
        assert_eq!(majority(&[3, 3, 1]), 0);
        assert_eq!(majority(&[1, 3, 3]), 1);
        assert_eq!(majority(&[]), 0);
    }

    #[test]
    fn feature_importance_is_a_distribution_over_the_pool() {
        let (_, _, forest) = quick_forest();
        let imp = forest.feature_importance();
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let used = imp.iter().filter(|&&v| v > 0.0).count();
        assert!(used > 20, "only {used} features ever split on");
        assert!(used <= 200, "importance leaked outside the pool");
    }

    #[test]
    fn subspaces_restricted_to_pool() {
        let (_, _, forest) = quick_forest();
        for tree in forest.trees() {
            assert_eq!(tree.subspace.len(), 30);
        }
    }
}

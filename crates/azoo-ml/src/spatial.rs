//! Analytic throughput/capacity model for spatial automata-processing
//! architectures (FPGA overlays like REAPR, and Micron's AP).
//!
//! The AutomataZoo paper itself evaluates the FPGA this way: "multiplying
//! the resulting maximum virtual clock frequency by the number of input
//! symbols required to drive the automaton". Spatial architectures consume
//! one symbol per clock regardless of active set, but are bounded by
//! state capacity (requiring sequential passes when a benchmark exceeds
//! one chip).

/// An analytic spatial-architecture model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Symbols consumed per second (one per clock).
    pub clock_hz: f64,
    /// Automaton states placeable on one chip.
    pub states_per_chip: usize,
}

impl SpatialModel {
    /// A REAPR-style overlay on a Xilinx Kintex Ultrascale KU060
    /// (the FPGA used in the paper's Table IV).
    pub const REAPR_KU060: SpatialModel = SpatialModel {
        name: "REAPR (Kintex KU060)",
        clock_hz: 250.0e6,
        states_per_chip: 300_000,
    };

    /// Micron's D480 Automata Processor: 133 MB/s symbol rate, 49,152
    /// STEs per chip.
    pub const AP_D480: SpatialModel = SpatialModel {
        name: "Micron AP D480",
        clock_hz: 133.0e6,
        states_per_chip: 49_152,
    };

    /// Chips (or sequential passes on one chip) needed for an automaton
    /// of `states`.
    pub fn chips_required(&self, states: usize) -> usize {
        states.div_ceil(self.states_per_chip).max(1)
    }

    /// Classifications (or other fixed-size work items) per second, given
    /// the number of input symbols each item consumes, assuming the
    /// automaton fits on the available chips.
    pub fn items_per_second(&self, symbols_per_item: usize) -> f64 {
        self.clock_hz / symbols_per_item.max(1) as f64
    }

    /// Sustained input bandwidth in megabytes per second.
    pub fn bandwidth_mbps(&self) -> f64 {
        self.clock_hz / 1.0e6
    }

    /// Items per second when the automaton needs `passes` sequential
    /// passes because it exceeds one chip.
    pub fn items_per_second_partitioned(&self, symbols_per_item: usize, states: usize) -> f64 {
        self.items_per_second(symbols_per_item) / self.chips_required(states) as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn chips_round_up() {
        let m = SpatialModel::AP_D480;
        assert_eq!(m.chips_required(1), 1);
        assert_eq!(m.chips_required(49_152), 1);
        assert_eq!(m.chips_required(49_153), 2);
        assert_eq!(m.chips_required(0), 1);
    }

    #[test]
    fn throughput_scales_inversely_with_item_size() {
        let m = SpatialModel::REAPR_KU060;
        let fast = m.items_per_second(100);
        let slow = m.items_per_second(200);
        assert!((fast / slow - 2.0).abs() < 1e-9);
        assert_eq!(m.bandwidth_mbps(), 250.0);
    }

    #[test]
    fn partitioning_divides_throughput() {
        let m = SpatialModel::AP_D480;
        let one = m.items_per_second_partitioned(620, 40_000);
        let two = m.items_per_second_partitioned(620, 90_000);
        assert!((one / two - 2.0).abs() < 1e-9);
    }
}

//! CART decision trees with best-first growth to a leaf budget.

use rand::RngExt;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;

/// A trained decision tree over byte features.
///
/// Internal nodes route on `value <= threshold`; leaves predict a class.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    /// The features this tree was allowed to split on (its random
    /// subspace), sorted ascending.
    pub subspace: Vec<u32>,
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: u32,
        threshold: u8,
        left: u32,
        right: u32,
    },
    Leaf {
        class: u8,
    },
}

/// A root-to-leaf path constraint set: for each constrained feature, the
/// inclusive byte interval a sample must fall in to reach the leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafPath {
    /// `(feature, lo, hi)` constraints, one per constrained feature.
    pub constraints: Vec<(u32, u8, u8)>,
    /// The class predicted at the leaf.
    pub class: u8,
}

struct Builder<'a> {
    data: &'a Dataset,
    rows: Vec<u32>,
    nodes: Vec<Node>,
    subspace: Vec<u32>,
    mtry: usize,
    rng: ChaCha8Rng,
}

struct Candidate {
    node: u32,
    rows: std::ops::Range<usize>,
    gain: f64,
    feature: u32,
    threshold: u8,
}

impl Tree {
    /// Trains a tree on `rows` of `data`, splitting only on features in
    /// `subspace`, growing best-first until `max_leaves`.
    ///
    /// `mtry` candidate features are examined per split (classic Random
    /// Forest de-correlation).
    pub fn train(
        data: &Dataset,
        rows: &[u32],
        mut subspace: Vec<u32>,
        max_leaves: usize,
        mtry: usize,
        seed: u64,
    ) -> Tree {
        use rand::SeedableRng;
        subspace.sort_unstable();
        subspace.dedup();
        let mut b = Builder {
            data,
            rows: rows.to_vec(),
            nodes: Vec::new(),
            subspace,
            mtry: mtry.max(1),
            rng: ChaCha8Rng::seed_from_u64(seed),
        };
        b.grow(max_leaves);
        Tree {
            nodes: b.nodes,
            subspace: b.subspace,
        }
    }

    /// Predicts the class of `sample`.
    pub fn predict(&self, sample: &[u8]) -> u8 {
        let mut at = 0u32;
        loop {
            match &self.nodes[at as usize] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if sample[*feature as usize] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Maximum root-to-leaf depth (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(0u32, 0usize)];
        while let Some((at, d)) = stack.pop() {
            match &self.nodes[at as usize] {
                Node::Leaf { .. } => max = max.max(d),
                Node::Split { left, right, .. } => {
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
        }
        max
    }

    /// How many internal splits test each feature, a simple
    /// split-frequency importance measure.
    pub fn split_counts(&self, n_features: usize) -> Vec<u32> {
        let mut counts = vec![0u32; n_features];
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1;
            }
        }
        counts
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Enumerates every root-to-leaf path with its merged feature
    /// intervals — the form the automata conversion consumes.
    pub fn leaf_paths(&self) -> Vec<LeafPath> {
        let mut out = Vec::new();
        // (node, constraints by feature: map feature -> (lo, hi))
        type Constraints = Vec<(u32, u8, u8)>;
        let mut stack: Vec<(u32, Constraints)> = vec![(0, Vec::new())];
        while let Some((at, constraints)) = stack.pop() {
            match &self.nodes[at as usize] {
                Node::Leaf { class } => out.push(LeafPath {
                    constraints: constraints.clone(),
                    class: *class,
                }),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let narrow = |cs: &[(u32, u8, u8)], lo: u8, hi: u8| {
                        let mut cs = cs.to_vec();
                        match cs.iter_mut().find(|c| c.0 == *feature) {
                            Some(c) => {
                                c.1 = c.1.max(lo);
                                c.2 = c.2.min(hi);
                            }
                            None => cs.push((*feature, lo, hi)),
                        }
                        cs
                    };
                    stack.push((*left, narrow(&constraints, 0, *threshold)));
                    if *threshold < 255 {
                        stack.push((*right, narrow(&constraints, *threshold + 1, 255)));
                    }
                }
            }
        }
        out
    }

    /// All thresholds used for `feature`, sorted and deduplicated.
    pub fn thresholds_of(&self, feature: u32) -> Vec<u8> {
        let mut t: Vec<u8> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split {
                    feature: f,
                    threshold,
                    ..
                } if *f == feature => Some(*threshold),
                _ => None,
            })
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

impl Builder<'_> {
    fn grow(&mut self, max_leaves: usize) {
        let n = self.rows.len();
        self.nodes.push(self.leaf_for(0..n));
        let mut leaves = 1;
        // Best-first frontier ordered by impurity gain.
        let mut frontier = Vec::new();
        if let Some(c) = self.best_split(0, 0..n) {
            frontier.push(c);
        }
        while leaves < max_leaves {
            // Pop the highest-gain candidate.
            let Some(best_idx) = frontier
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.gain.total_cmp(&b.1.gain))
                .map(|(i, _)| i)
            else {
                break;
            };
            let cand = frontier.swap_remove(best_idx);
            if cand.gain <= 1e-12 {
                break;
            }
            // Partition rows in place around the split.
            let mid = partition(
                self.data,
                &mut self.rows,
                cand.rows.clone(),
                cand.feature,
                cand.threshold,
            );
            if mid == cand.rows.start || mid == cand.rows.end {
                continue; // degenerate split; drop the candidate
            }
            let left_range = cand.rows.start..mid;
            let right_range = mid..cand.rows.end;
            let left = self.nodes.len() as u32;
            let node_l = self.leaf_for(left_range.clone());
            self.nodes.push(node_l);
            let right = self.nodes.len() as u32;
            let node_r = self.leaf_for(right_range.clone());
            self.nodes.push(node_r);
            self.nodes[cand.node as usize] = Node::Split {
                feature: cand.feature,
                threshold: cand.threshold,
                left,
                right,
            };
            leaves += 1;
            if let Some(c) = self.best_split(left, left_range) {
                frontier.push(c);
            }
            if let Some(c) = self.best_split(right, right_range) {
                frontier.push(c);
            }
        }
    }

    fn leaf_for(&self, rows: std::ops::Range<usize>) -> Node {
        let mut counts = vec![0u32; self.data.n_classes];
        for &row in &self.rows[rows] {
            counts[self.data.label(row as usize) as usize] += 1;
        }
        let class = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as u8)
            .unwrap_or(0);
        Node::Leaf { class }
    }

    /// Finds the best (feature, threshold) over `mtry` random candidate
    /// features via 256-bin class histograms.
    fn best_split(&mut self, node: u32, rows: std::ops::Range<usize>) -> Option<Candidate> {
        let n = rows.len();
        if n < 2 {
            return None;
        }
        let n_classes = self.data.n_classes;
        let mut total = vec![0u32; n_classes];
        for &row in &self.rows[rows.clone()] {
            total[self.data.label(row as usize) as usize] += 1;
        }
        let parent_gini = gini(&total, n as u32);
        if parent_gini <= 1e-12 {
            return None; // pure node
        }
        let mut best: Option<Candidate> = None;
        for _ in 0..self.mtry {
            let feature = self.subspace[self.rng.random_range(0..self.subspace.len())];
            // Class histogram over the 256 byte values.
            let mut hist = vec![0u32; 256 * n_classes];
            for &row in &self.rows[rows.clone()] {
                let v = self.data.sample(row as usize)[feature as usize] as usize;
                let c = self.data.label(row as usize) as usize;
                hist[v * n_classes + c] += 1;
            }
            // Sweep thresholds, maintaining left-side counts.
            let mut left = vec![0u32; n_classes];
            let mut left_n = 0u32;
            for threshold in 0..255usize {
                let mut any = false;
                for c in 0..n_classes {
                    let h = hist[threshold * n_classes + c];
                    if h > 0 {
                        left[c] += h;
                        left_n += h;
                        any = true;
                    }
                }
                if !any || left_n == 0 || left_n == n as u32 {
                    continue;
                }
                let right_n = n as u32 - left_n;
                let right: Vec<u32> = total.iter().zip(&left).map(|(&t, &l)| t - l).collect();
                let w_gini = (left_n as f64 * gini(&left, left_n)
                    + right_n as f64 * gini(&right, right_n))
                    / n as f64;
                let gain = parent_gini - w_gini;
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(Candidate {
                        node,
                        rows: rows.clone(),
                        gain,
                        feature,
                        threshold: threshold as u8,
                    });
                }
            }
        }
        best
    }
}

fn gini(counts: &[u32], n: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

/// Partitions `rows[range]` so samples with `feature <= threshold` come
/// first; returns the split point.
fn partition(
    data: &Dataset,
    rows: &mut [u32],
    range: std::ops::Range<usize>,
    feature: u32,
    threshold: u8,
) -> usize {
    let slice = &mut rows[range.clone()];
    let mut i = 0;
    let mut j = slice.len();
    while i < j {
        if data.sample(slice[i] as usize)[feature as usize] <= threshold {
            i += 1;
        } else {
            j -= 1;
            slice.swap(i, j);
        }
    }
    range.start + i
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::dataset::synthetic_mnist;

    fn small_tree() -> (Dataset, Tree) {
        let data = synthetic_mnist(1, 200);
        let rows: Vec<u32> = (0..data.len() as u32).collect();
        let subspace: Vec<u32> = (0..784).step_by(7).collect();
        let tree = Tree::train(&data, &rows, subspace, 30, 16, 99);
        (data, tree)
    }

    #[test]
    fn tree_respects_leaf_budget() {
        let (_, tree) = small_tree();
        assert!(tree.leaf_count() <= 30);
        assert!(tree.leaf_count() > 5, "tree barely grew");
    }

    #[test]
    fn tree_fits_training_data_reasonably() {
        let (data, tree) = small_tree();
        let correct = (0..data.len())
            .filter(|&i| tree.predict(data.sample(i)) == data.label(i))
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.5, "training accuracy only {acc}");
    }

    #[test]
    fn leaf_paths_partition_the_space() {
        let (data, tree) = small_tree();
        let paths = tree.leaf_paths();
        assert_eq!(paths.len(), tree.leaf_count());
        // Every sample satisfies exactly one path, and its class matches
        // tree.predict.
        for i in 0..50 {
            let s = data.sample(i);
            let matching: Vec<&LeafPath> = paths
                .iter()
                .filter(|p| {
                    p.constraints
                        .iter()
                        .all(|&(f, lo, hi)| (lo..=hi).contains(&s[f as usize]))
                })
                .collect();
            assert_eq!(matching.len(), 1, "sample {i} matches {}", matching.len());
            assert_eq!(matching[0].class, tree.predict(s));
        }
    }

    #[test]
    fn paths_only_use_subspace_features() {
        let (_, tree) = small_tree();
        for p in tree.leaf_paths() {
            for (f, _, _) in p.constraints {
                assert!(tree.subspace.contains(&f));
            }
        }
    }

    #[test]
    fn depth_and_split_counts() {
        let (data, tree) = small_tree();
        let depth = tree.depth();
        assert!((2..30).contains(&depth), "depth {depth}");
        let counts = tree.split_counts(data.n_features);
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, tree.leaf_count() - 1, "splits = leaves - 1");
        // Only subspace features are ever split on.
        for (f, &c) in counts.iter().enumerate() {
            if c > 0 {
                assert!(tree.subspace.contains(&(f as u32)));
            }
        }
    }

    #[test]
    fn thresholds_are_sorted_unique() {
        let (_, tree) = small_tree();
        for &f in &tree.subspace {
            let t = tree.thresholds_of(f);
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

//! Decision-tree / Random Forest substrate for the AutomataZoo Random
//! Forest benchmarks (Tracy et al., "Towards machine learning on the
//! automata processor").
//!
//! The paper's pipeline is: train a Random Forest on MNIST with
//! scikit-learn, convert each leaf path into an automata chain, and
//! compare automata-based inference (CPU engines, FPGA) against native
//! decision-tree inference. This crate rebuilds that pipeline from
//! scratch:
//!
//! * [`Dataset`] / [`synthetic_mnist`] — a seeded, 784-feature, 10-class
//!   digit-like dataset standing in for MNIST (which is not shipped).
//! * [`Tree`] — CART training with Gini impurity and best-first growth to
//!   a leaf budget (the paper's *max leaves* hyperparameter).
//! * [`Forest`] — random-subspace forests with bootstrap sampling, plus
//!   single- and multi-threaded native batch inference (the
//!   scikit-learn / scikit-learn-MT comparison rows of Table IV).
//! * [`ForestAutomaton`] — the forest-to-automata conversion and the
//!   symbol-stream encoder; automata classification is exactly equivalent
//!   to native forest prediction, which the tests verify.
//!
//! # Example
//!
//! ```
//! use azoo_ml::{synthetic_mnist, Forest, ForestParams};
//!
//! let data = synthetic_mnist(1, 300);
//! let (train, test) = data.split(0.8);
//! let forest = Forest::train(&train, &ForestParams {
//!     trees: 5,
//!     max_leaves: 40,
//!     feature_pool: 100,
//!     subspace: 30,
//!     seed: 7,
//! });
//! let acc = forest.accuracy(&test);
//! assert!(acc > 0.5, "forest should beat chance by far, got {acc}");
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
mod automata;
mod dataset;
mod forest;
mod spatial;
mod tree;

pub use automata::ForestAutomaton;
pub use dataset::{synthetic_mnist, Dataset};
pub use forest::{Forest, ForestParams};
pub use spatial::SpatialModel;
pub use tree::Tree;

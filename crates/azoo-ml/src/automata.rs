//! Forest → automata conversion (the Tracy et al. design, adapted).
//!
//! Each leaf of each tree becomes one automata chain. A classification is
//! presented as a *per-tree segmented symbol stream*: for every tree, one
//! separator symbol followed by the tree's subspace features, each
//! quantized to a *bin* index against the thresholds that tree actually
//! uses for that feature. Chain states match bin sets, so automata
//! classification is exactly equivalent to native forest voting (the test
//! suite verifies bit-exact agreement).
//!
//! With a 30-feature subspace each chain is 31 states (separator + 30
//! feature states) — the chain size the paper's Table I reports for the
//! Random Forest benchmarks (8,000 chains x 31 = 248k states).
//!
//! The alphabet is split as: bins `0..=235`, tree separators `236..=255`
//! (so at most 20 trees, matching the paper's forests).

use azoo_core::{Automaton, StartKind, SymbolClass};

use crate::dataset::Dataset;
use crate::forest::{majority, Forest};

/// Highest byte value usable as a bin index.
pub const MAX_BIN: u8 = 235;
/// First byte value used as a tree separator.
pub const SEP_BASE: u8 = 236;

/// A forest compiled to automata, with its stream encoder.
#[derive(Debug, Clone)]
pub struct ForestAutomaton {
    /// The chain automaton; each leaf is one subgraph whose report code is
    /// the leaf's predicted class.
    pub automaton: Automaton,
    /// Symbols consumed per classification.
    pub symbols_per_classification: usize,
    n_classes: usize,
    n_trees: usize,
    encoders: Vec<TreeEncoder>,
}

#[derive(Debug, Clone)]
struct TreeEncoder {
    sep: u8,
    /// `(feature, thresholds)` in subspace order.
    features: Vec<(u32, Vec<u8>)>,
}

impl TreeEncoder {
    /// Bin of byte `v` for subspace slot `slot`: the number of this
    /// tree's thresholds for that feature that are `< v`.
    fn bin(&self, slot: usize, v: u8) -> u8 {
        let thresholds = &self.features[slot].1;
        thresholds.iter().take_while(|&&t| t < v).count() as u8
    }
}

impl ForestAutomaton {
    /// Compiles `forest` into chains.
    ///
    /// # Panics
    ///
    /// Panics if the forest has more than 20 trees, or if a tree uses
    /// more than [`MAX_BIN`] thresholds on a single feature (neither
    /// occurs for the paper's hyperparameters).
    pub fn build(forest: &Forest) -> ForestAutomaton {
        let trees = forest.trees();
        assert!(
            trees.len() <= (255 - SEP_BASE as usize) + 1,
            "at most 20 trees fit the separator alphabet"
        );
        let full_bins = SymbolClass::from_range(0, MAX_BIN);
        let mut automaton = Automaton::new();
        let mut encoders = Vec::with_capacity(trees.len());
        for (t, tree) in trees.iter().enumerate() {
            let sep = SEP_BASE + t as u8;
            let features: Vec<(u32, Vec<u8>)> = tree
                .subspace
                .iter()
                .map(|&f| {
                    let th = tree.thresholds_of(f);
                    assert!(
                        th.len() <= MAX_BIN as usize,
                        "feature {f} uses {} thresholds (> {MAX_BIN})",
                        th.len()
                    );
                    (f, th)
                })
                .collect();
            let encoder = TreeEncoder { sep, features };
            for path in tree.leaf_paths() {
                // One class per chain state, in subspace order.
                let mut classes = Vec::with_capacity(encoder.features.len() + 1);
                classes.push(SymbolClass::from_byte(sep));
                for (slot, (f, _)) in encoder.features.iter().enumerate() {
                    let class = match path.constraints.iter().find(|c| c.0 == *f) {
                        Some(&(_, lo, hi)) => {
                            SymbolClass::from_range(encoder.bin(slot, lo), encoder.bin(slot, hi))
                        }
                        None => full_bins,
                    };
                    classes.push(class);
                }
                let (_, last) = automaton.add_chain(&classes, StartKind::AllInput);
                automaton.set_report(last, path.class as u32);
            }
            encoders.push(encoder);
        }
        let symbols_per_classification = encoders.iter().map(|e| e.features.len() + 1).sum();
        ForestAutomaton {
            automaton,
            symbols_per_classification,
            n_classes: forest.n_classes,
            n_trees: trees.len(),
            encoders,
        }
    }

    /// Encodes one sample into its classification symbol stream.
    pub fn encode(&self, sample: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.symbols_per_classification);
        self.encode_into(sample, &mut out);
        out
    }

    fn encode_into(&self, sample: &[u8], out: &mut Vec<u8>) {
        for enc in &self.encoders {
            out.push(enc.sep);
            for (slot, (f, _)) in enc.features.iter().enumerate() {
                out.push(enc.bin(slot, sample[*f as usize]));
            }
        }
    }

    /// Encodes every sample of `data` back-to-back.
    pub fn encode_batch(&self, data: &Dataset) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() * self.symbols_per_classification);
        for i in 0..data.len() {
            self.encode_into(data.sample(i), &mut out);
        }
        out
    }

    /// Turns a report stream from scanning an [`encode_batch`] stream into
    /// per-sample predictions. `reports` are `(offset, class)` pairs.
    ///
    /// Every classification produces exactly one report per tree (leaf
    /// paths partition the feature space), so votes are majority-counted
    /// per stream segment.
    pub fn classify(&self, n_samples: usize, reports: &[(u64, u32)]) -> Vec<u8> {
        let mut votes = vec![vec![0u32; self.n_classes]; n_samples];
        for &(offset, class) in reports {
            let sample = offset as usize / self.symbols_per_classification;
            if sample < n_samples && (class as usize) < self.n_classes {
                votes[sample][class as usize] += 1;
            }
        }
        votes.iter().map(|v| majority(v)).collect()
    }

    /// Number of trees (expected reports per classification).
    pub fn tree_count(&self) -> usize {
        self.n_trees
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::dataset::synthetic_mnist;
    use crate::forest::ForestParams;
    use azoo_engines::{CollectSink, Engine, NfaEngine};

    fn setup() -> (Dataset, Forest, ForestAutomaton) {
        let data = synthetic_mnist(21, 260);
        let (train, test) = data.split(0.77);
        let forest = Forest::train(
            &train,
            &ForestParams {
                trees: 6,
                max_leaves: 50,
                feature_pool: 150,
                subspace: 30,
                seed: 3,
            },
        );
        let fa = ForestAutomaton::build(&forest);
        (test, forest, fa)
    }

    #[test]
    fn chain_shape_matches_paper() {
        let (_, forest, fa) = setup();
        // chains = total leaves; states = chains * (subspace + 1).
        let chains = forest.total_leaves();
        assert_eq!(fa.automaton.state_count(), chains * 31);
        let stats = azoo_core::AutomatonStats::compute(&fa.automaton);
        assert_eq!(stats.subgraphs, chains);
        assert_eq!(stats.avg_subgraph_size, 31.0);
        assert_eq!(stats.stddev_subgraph_size, 0.0);
        fa.automaton.validate().unwrap();
    }

    #[test]
    fn automata_classification_equals_native() {
        let (test, forest, fa) = setup();
        let stream = fa.encode_batch(&test);
        assert_eq!(stream.len(), test.len() * fa.symbols_per_classification);
        let mut engine = NfaEngine::new(&fa.automaton).unwrap();
        let mut sink = CollectSink::new();
        engine.scan(&stream, &mut sink);
        // Exactly one report per tree per classification.
        assert_eq!(
            sink.reports().len(),
            test.len() * fa.tree_count(),
            "leaf paths must partition the space"
        );
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let automata_preds = fa.classify(test.len(), &pairs);
        let native_preds = forest.predict_batch(&test);
        assert_eq!(automata_preds, native_preds);
    }

    #[test]
    fn encoder_is_deterministic_and_in_alphabet() {
        let (test, _, fa) = setup();
        let a = fa.encode(test.sample(0));
        let b = fa.encode(test.sample(0));
        assert_eq!(a, b);
        // Each segment: separator then bins.
        let mut i = 0;
        for enc_idx in 0..fa.tree_count() {
            assert_eq!(a[i], SEP_BASE + enc_idx as u8);
            i += 1;
            for _ in 0..30 {
                assert!(a[i] <= MAX_BIN);
                i += 1;
            }
        }
        assert_eq!(i, a.len());
    }

    #[test]
    fn classify_handles_missing_reports_gracefully() {
        let (_, _, fa) = setup();
        let preds = fa.classify(3, &[]);
        assert_eq!(preds, vec![0, 0, 0]);
    }
}

//! Minimal JSON tree, parser, and pretty-printer.
//!
//! The workspace builds offline (no crates.io), so MNRL interchange sits
//! on this hand-rolled JSON module instead of serde. It supports the full
//! JSON grammar minus two corners the MNRL dialect never produces:
//! non-integer number forms are parsed as `f64` but only `i64`s
//! round-trip exactly, and strings are ASCII-escaped on output.
//!
//! Object member order is preserved (members are a `Vec`, not a map), so
//! emitted documents are deterministic.

use std::fmt::Write as _;

use crate::error::CoreError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// final line, in member order.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`CoreError::Format`] on any syntax error, with a byte offset.
pub fn parse(text: &str) -> Result<Json, CoreError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> CoreError {
        CoreError::Format(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), CoreError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, CoreError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, CoreError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, CoreError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII byte in number"))?;
        if integral {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn string(&mut self) -> Result<String, CoreError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by MNRL docs.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str, so sequences are well-formed; decode just this
                    // one (validating the whole tail per character would
                    // make parsing quadratic).
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, CoreError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, CoreError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn roundtrips_nested_structure() {
        let doc = Json::Obj(vec![
            ("id".into(), Json::Str("net \"x\"".into())),
            (
                "nodes".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("report".into(), Json::Bool(false)),
                        (
                            "ranges".into(),
                            Json::Arr(vec![Json::Int(0), Json::Int(255)]),
                        ),
                    ]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn preserves_member_order() {
        let parsed = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        match parsed {
            Json::Obj(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "m"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{nope",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}

//! MNRL-style JSON interchange for automata.
//!
//! MNRL (the MNCaRT Network Representation Language) is the open JSON
//! automata format used by the AutomataZoo toolchain. This module emits and
//! parses an MNRL-flavoured document: homogeneous states (`hState`) with a
//! symbol set, enable signal, and report id; `upCounter` nodes; and typed
//! output connections. Symbol sets are encoded as inclusive `[lo, hi]` byte
//! ranges for compactness.
//!
//! # Example
//!
//! ```
//! use azoo_core::{mnrl, Automaton, StartKind, SymbolClass};
//!
//! let mut a = Automaton::new();
//! let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
//! a.set_report(s, 3);
//! let doc = mnrl::to_json(&a, "demo");
//! let back = mnrl::from_json(&doc)?;
//! assert_eq!(a, back);
//! # Ok::<(), azoo_core::CoreError>(())
//! ```

use serde::{Deserialize, Serialize};

use crate::automaton::{Automaton, StateId};
use crate::element::{CounterMode, ElementKind, Port, StartKind};
use crate::error::CoreError;
use crate::symbol::SymbolClass;

#[derive(Serialize, Deserialize)]
struct Document {
    id: String,
    nodes: Vec<Node>,
}

#[derive(Serialize, Deserialize)]
struct Node {
    id: String,
    #[serde(rename = "type")]
    node_type: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    enable: Option<String>,
    #[serde(default)]
    report: bool,
    #[serde(skip_serializing_if = "Option::is_none", rename = "reportId")]
    report_id: Option<u32>,
    #[serde(default, rename = "reportOnLast")]
    report_on_last: bool,
    #[serde(skip_serializing_if = "Option::is_none", rename = "symbolSet")]
    symbol_set: Option<Vec<[u8; 2]>>,
    #[serde(skip_serializing_if = "Option::is_none")]
    target: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    mode: Option<String>,
    #[serde(rename = "outputConnections")]
    outputs: Vec<Connection>,
}

#[derive(Serialize, Deserialize)]
struct Connection {
    id: String,
    port: String,
}

fn class_to_ranges(c: &SymbolClass) -> Vec<[u8; 2]> {
    let mut ranges = Vec::new();
    let mut run: Option<(u8, u8)> = None;
    for b in c.iter() {
        match run {
            Some((lo, hi)) if hi as u16 + 1 == b as u16 => run = Some((lo, b)),
            Some((lo, hi)) => {
                ranges.push([lo, hi]);
                run = Some((b, b));
            }
            None => run = Some((b, b)),
        }
    }
    if let Some((lo, hi)) = run {
        ranges.push([lo, hi]);
    }
    ranges
}

fn ranges_to_class(ranges: &[[u8; 2]]) -> Result<SymbolClass, CoreError> {
    let mut c = SymbolClass::new();
    for r in ranges {
        if r[0] > r[1] {
            return Err(CoreError::Format(format!(
                "reversed symbol range {}..{}",
                r[0], r[1]
            )));
        }
        for b in r[0]..=r[1] {
            c.insert(b);
        }
    }
    Ok(c)
}

/// Serializes an automaton to an MNRL-style JSON string.
pub fn to_json(a: &Automaton, network_id: &str) -> String {
    let nodes = a
        .iter()
        .map(|(id, e)| {
            let outputs = a
                .successors(id)
                .iter()
                .map(|edge| Connection {
                    id: format!("n{}", edge.to.index()),
                    port: match edge.port {
                        Port::Activate => "activate".to_owned(),
                        Port::Reset => "reset".to_owned(),
                    },
                })
                .collect();
            match &e.kind {
                ElementKind::Ste { class, start } => Node {
                    id: format!("n{}", id.index()),
                    node_type: "hState".to_owned(),
                    enable: Some(
                        match start {
                            StartKind::None => "onActivateIn",
                            StartKind::StartOfData => "onStartOfData",
                            StartKind::AllInput => "always",
                        }
                        .to_owned(),
                    ),
                    report: e.report.is_some(),
                    report_id: e.report.map(|r| r.0),
                    report_on_last: e.report_eod_only,
                    symbol_set: Some(class_to_ranges(class)),
                    target: None,
                    mode: None,
                    outputs,
                },
                ElementKind::Counter { target, mode } => Node {
                    id: format!("n{}", id.index()),
                    node_type: "upCounter".to_owned(),
                    enable: None,
                    report: e.report.is_some(),
                    report_id: e.report.map(|r| r.0),
                    report_on_last: e.report_eod_only,
                    symbol_set: None,
                    target: Some(*target),
                    mode: Some(
                        match mode {
                            CounterMode::Latch => "latch",
                            CounterMode::Pulse => "pulse",
                            CounterMode::Roll => "roll",
                        }
                        .to_owned(),
                    ),
                    outputs,
                },
            }
        })
        .collect();
    let doc = Document {
        id: network_id.to_owned(),
        nodes,
    };
    serde_json::to_string_pretty(&doc).expect("document serialization cannot fail")
}

/// Parses an MNRL-style JSON string into an automaton.
///
/// # Errors
///
/// Returns [`CoreError::Format`] for malformed JSON, unknown node types or
/// enables, dangling connection ids, or reversed symbol ranges.
pub fn from_json(json: &str) -> Result<Automaton, CoreError> {
    let doc: Document =
        serde_json::from_str(json).map_err(|e| CoreError::Format(e.to_string()))?;
    let mut a = Automaton::with_capacity(doc.nodes.len());
    let mut index_of = std::collections::HashMap::with_capacity(doc.nodes.len());
    for node in &doc.nodes {
        let id = match node.node_type.as_str() {
            "hState" => {
                let class = ranges_to_class(node.symbol_set.as_deref().unwrap_or(&[]))?;
                let start = match node.enable.as_deref() {
                    Some("onActivateIn") | None => StartKind::None,
                    Some("onStartOfData") => StartKind::StartOfData,
                    Some("always") => StartKind::AllInput,
                    Some(other) => {
                        return Err(CoreError::Format(format!("unknown enable '{other}'")))
                    }
                };
                a.add_ste(class, start)
            }
            "upCounter" => {
                let target = node
                    .target
                    .ok_or_else(|| CoreError::Format("counter missing target".into()))?;
                let mode = match node.mode.as_deref() {
                    Some("latch") | None => CounterMode::Latch,
                    Some("pulse") => CounterMode::Pulse,
                    Some("roll") => CounterMode::Roll,
                    Some(other) => {
                        return Err(CoreError::Format(format!("unknown counter mode '{other}'")))
                    }
                };
                a.add_counter(target, mode)
            }
            other => return Err(CoreError::Format(format!("unknown node type '{other}'"))),
        };
        if node.report {
            a.set_report(id, node.report_id.unwrap_or(0));
        }
        a.set_report_eod_only(id, node.report_on_last);
        index_of.insert(node.id.clone(), id);
    }
    for node in &doc.nodes {
        let from = index_of[&node.id];
        for conn in &node.outputs {
            let to: StateId = *index_of
                .get(&conn.id)
                .ok_or_else(|| CoreError::Format(format!("dangling connection '{}'", conn.id)))?;
            match conn.port.as_str() {
                "activate" => a.add_edge(from, to),
                "reset" => a.add_reset_edge(from, to),
                other => return Err(CoreError::Format(format!("unknown port '{other}'"))),
            }
        }
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::CounterMode;

    fn sample() -> Automaton {
        let mut a = Automaton::new();
        let s0 = a.add_ste(SymbolClass::from_range(b'a', b'f'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_bytes(&[0, 255, 7]), StartKind::None);
        let c = a.add_counter(4, CounterMode::Pulse);
        a.add_edge(s0, s1);
        a.add_edge(s1, c);
        a.add_reset_edge(s0, c);
        a.set_report(s1, 11);
        a.set_report(c, 12);
        a.set_report_eod_only(s1, true);
        a
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let a = sample();
        let json = to_json(&a, "t");
        let b = from_json(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_encoding_is_compact() {
        let mut c = SymbolClass::from_range(10, 20);
        c.insert(42);
        assert_eq!(class_to_ranges(&c), vec![[10, 20], [42, 42]]);
        assert_eq!(ranges_to_class(&class_to_ranges(&c)).unwrap(), c);
    }

    #[test]
    fn full_class_is_one_range() {
        assert_eq!(class_to_ranges(&SymbolClass::FULL), vec![[0, 255]]);
    }

    #[test]
    fn rejects_unknown_node_type() {
        let json = r#"{"id":"x","nodes":[{"id":"a","type":"quantum","outputConnections":[]}]}"#;
        assert!(matches!(from_json(json), Err(CoreError::Format(_))));
    }

    #[test]
    fn rejects_dangling_connection() {
        let json = r#"{"id":"x","nodes":[{"id":"a","type":"hState","enable":"always",
            "symbolSet":[[97,97]],"outputConnections":[{"id":"ghost","port":"activate"}]}]}"#;
        assert!(matches!(from_json(json), Err(CoreError::Format(_))));
    }

    #[test]
    fn rejects_bad_json() {
        assert!(matches!(from_json("{nope"), Err(CoreError::Format(_))));
    }
}

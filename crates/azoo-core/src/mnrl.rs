//! MNRL-style JSON interchange for automata.
//!
//! MNRL (the MNCaRT Network Representation Language) is the open JSON
//! automata format used by the AutomataZoo toolchain. This module emits and
//! parses an MNRL-flavoured document: homogeneous states (`hState`) with a
//! symbol set, enable signal, and report id; `upCounter` nodes; and typed
//! output connections. Symbol sets are encoded as inclusive `[lo, hi]` byte
//! ranges for compactness.
//!
//! Documents are built on the in-tree [`crate::json`] module (the build is
//! offline, so there is no serde); optional fields are omitted when absent,
//! and `report` / `reportOnLast` default to `false` when missing, matching
//! the previous serde-derived behaviour.
//!
//! # Example
//!
//! ```
//! use azoo_core::{mnrl, Automaton, StartKind, SymbolClass};
//!
//! let mut a = Automaton::new();
//! let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
//! a.set_report(s, 3);
//! let doc = mnrl::to_json(&a, "demo");
//! let back = mnrl::from_json(&doc)?;
//! assert_eq!(a, back);
//! # Ok::<(), azoo_core::CoreError>(())
//! ```

use crate::automaton::{Automaton, StateId};
use crate::element::{CounterMode, ElementKind, Port, StartKind};
use crate::error::CoreError;
use crate::json::{self, Json};
use crate::symbol::SymbolClass;

fn class_to_ranges(c: &SymbolClass) -> Vec<[u8; 2]> {
    let mut ranges = Vec::new();
    let mut run: Option<(u8, u8)> = None;
    for b in c.iter() {
        match run {
            Some((lo, hi)) if hi as u16 + 1 == b as u16 => run = Some((lo, b)),
            Some((lo, hi)) => {
                ranges.push([lo, hi]);
                run = Some((b, b));
            }
            None => run = Some((b, b)),
        }
    }
    if let Some((lo, hi)) = run {
        ranges.push([lo, hi]);
    }
    ranges
}

fn ranges_to_class(ranges: &[[u8; 2]]) -> Result<SymbolClass, CoreError> {
    let mut c = SymbolClass::new();
    for r in ranges {
        if r[0] > r[1] {
            return Err(CoreError::Format(format!(
                "reversed symbol range {}..{}",
                r[0], r[1]
            )));
        }
        for b in r[0]..=r[1] {
            c.insert(b);
        }
    }
    Ok(c)
}

/// Serializes an automaton to an MNRL-style JSON string.
pub fn to_json(a: &Automaton, network_id: &str) -> String {
    let nodes: Vec<Json> = a
        .iter()
        .map(|(id, e)| {
            let outputs: Vec<Json> = a
                .successors(id)
                .iter()
                .map(|edge| {
                    Json::Obj(vec![
                        ("id".into(), Json::Str(format!("n{}", edge.to.index()))),
                        (
                            "port".into(),
                            Json::Str(
                                match edge.port {
                                    Port::Activate => "activate",
                                    Port::Reset => "reset",
                                }
                                .into(),
                            ),
                        ),
                    ])
                })
                .collect();
            let mut node = vec![("id".into(), Json::Str(format!("n{}", id.index())))];
            match &e.kind {
                ElementKind::Ste { class, start } => {
                    node.push(("type".into(), Json::Str("hState".into())));
                    node.push((
                        "enable".into(),
                        Json::Str(
                            match start {
                                StartKind::None => "onActivateIn",
                                StartKind::StartOfData => "onStartOfData",
                                StartKind::AllInput => "always",
                            }
                            .into(),
                        ),
                    ));
                    node.push(("report".into(), Json::Bool(e.report.is_some())));
                    if let Some(r) = e.report {
                        node.push(("reportId".into(), Json::Int(i64::from(r.0))));
                    }
                    node.push(("reportOnLast".into(), Json::Bool(e.report_eod_only)));
                    node.push((
                        "symbolSet".into(),
                        Json::Arr(
                            class_to_ranges(class)
                                .iter()
                                .map(|r| {
                                    Json::Arr(vec![
                                        Json::Int(i64::from(r[0])),
                                        Json::Int(i64::from(r[1])),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                ElementKind::Counter { target, mode } => {
                    node.push(("type".into(), Json::Str("upCounter".into())));
                    node.push(("report".into(), Json::Bool(e.report.is_some())));
                    if let Some(r) = e.report {
                        node.push(("reportId".into(), Json::Int(i64::from(r.0))));
                    }
                    node.push(("reportOnLast".into(), Json::Bool(e.report_eod_only)));
                    node.push(("target".into(), Json::Int(i64::from(*target))));
                    node.push((
                        "mode".into(),
                        Json::Str(
                            match mode {
                                CounterMode::Latch => "latch",
                                CounterMode::Pulse => "pulse",
                                CounterMode::Roll => "roll",
                            }
                            .into(),
                        ),
                    ));
                }
            }
            node.push(("outputConnections".into(), Json::Arr(outputs)));
            Json::Obj(node)
        })
        .collect();
    Json::Obj(vec![
        ("id".into(), Json::Str(network_id.into())),
        ("nodes".into(), Json::Arr(nodes)),
    ])
    .pretty()
}

fn node_str<'a>(node: &'a Json, key: &str) -> Option<&'a str> {
    node.get(key).and_then(Json::as_str)
}

fn node_u32(node: &Json, key: &str) -> Result<Option<u32>, CoreError> {
    match node.get(key) {
        None | Some(Json::Null) => Ok(None),
        // Real-world MNRL emitters disagree on whether numeric fields
        // (reportId in particular) are numbers or decimal strings;
        // accept both.
        Some(Json::Str(s)) => s
            .parse::<u32>()
            .map(Some)
            .map_err(|_| CoreError::Format(format!("field '{key}' is not a u32"))),
        Some(v) => v
            .as_i64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| CoreError::Format(format!("field '{key}' is not a u32"))),
    }
}

fn node_bool(node: &Json, key: &str) -> Result<bool, CoreError> {
    match node.get(key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| CoreError::Format(format!("field '{key}' is not a boolean"))),
    }
}

fn parse_ranges(node: &Json) -> Result<Vec<[u8; 2]>, CoreError> {
    let bad = || CoreError::Format("symbolSet must be an array of [lo, hi] byte pairs".into());
    match node.get("symbolSet") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(v) => v
            .as_arr()
            .ok_or_else(bad)?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or_else(bad)?;
                if pair.len() != 2 {
                    return Err(bad());
                }
                let lo = pair[0].as_i64().and_then(|n| u8::try_from(n).ok());
                let hi = pair[1].as_i64().and_then(|n| u8::try_from(n).ok());
                match (lo, hi) {
                    (Some(lo), Some(hi)) => Ok([lo, hi]),
                    _ => Err(bad()),
                }
            })
            .collect(),
    }
}

/// Parses an MNRL-style JSON string into an automaton.
///
/// # Errors
///
/// Returns [`CoreError::Format`] for malformed JSON, unknown node types or
/// enables, dangling connection ids, or reversed symbol ranges.
pub fn from_json(text: &str) -> Result<Automaton, CoreError> {
    let doc = json::parse(text)?;
    let nodes = doc
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or_else(|| CoreError::Format("document has no 'nodes' array".into()))?;
    let mut a = Automaton::with_capacity(nodes.len());
    let mut index_of = std::collections::HashMap::with_capacity(nodes.len());
    for node in nodes {
        let node_id = node_str(node, "id")
            .ok_or_else(|| CoreError::Format("node missing string 'id'".into()))?;
        let id = match node_str(node, "type") {
            Some("hState") => {
                let class = ranges_to_class(&parse_ranges(node)?)?;
                let start = match node_str(node, "enable") {
                    Some("onActivateIn") | None => StartKind::None,
                    Some("onStartOfData") => StartKind::StartOfData,
                    Some("always") => StartKind::AllInput,
                    Some(other) => {
                        return Err(CoreError::Format(format!("unknown enable '{other}'")))
                    }
                };
                a.add_ste(class, start)
            }
            Some("upCounter") => {
                let target = node_u32(node, "target")?
                    .ok_or_else(|| CoreError::Format("counter missing target".into()))?;
                let mode = match node_str(node, "mode") {
                    Some("latch") | None => CounterMode::Latch,
                    Some("pulse") => CounterMode::Pulse,
                    Some("roll") => CounterMode::Roll,
                    Some(other) => {
                        return Err(CoreError::Format(format!("unknown counter mode '{other}'")))
                    }
                };
                a.add_counter(target, mode)
            }
            Some(other) => return Err(CoreError::Format(format!("unknown node type '{other}'"))),
            None => return Err(CoreError::Format("node missing 'type'".into())),
        };
        if node_bool(node, "report")? {
            a.set_report(id, node_u32(node, "reportId")?.unwrap_or(0));
        }
        a.set_report_eod_only(id, node_bool(node, "reportOnLast")?);
        index_of.insert(node_id.to_owned(), id);
    }
    for node in nodes {
        let node_id =
            node_str(node, "id").ok_or_else(|| CoreError::Format("node missing 'id'".into()))?;
        let from = *index_of
            .get(node_id)
            .ok_or_else(|| CoreError::Format(format!("unknown node id '{node_id}'")))?;
        let outputs = match node.get("outputConnections") {
            None | Some(Json::Null) => &[][..],
            Some(v) => v
                .as_arr()
                .ok_or_else(|| CoreError::Format("outputConnections must be an array".into()))?,
        };
        for conn in outputs {
            let conn_id = node_str(conn, "id")
                .ok_or_else(|| CoreError::Format("connection missing 'id'".into()))?;
            let to: StateId = *index_of
                .get(conn_id)
                .ok_or_else(|| CoreError::Format(format!("dangling connection '{conn_id}'")))?;
            match node_str(conn, "port") {
                Some("activate") | None => a.add_edge(from, to),
                Some("reset") => a.add_reset_edge(from, to),
                Some(other) => return Err(CoreError::Format(format!("unknown port '{other}'"))),
            }
        }
    }
    Ok(a)
}

/// Canonical alias for [`to_json`], matching the MNRL tool vocabulary.
pub fn to_mnrl(a: &Automaton, network_id: &str) -> String {
    to_json(a, network_id)
}

/// Canonical alias for [`from_json`], matching the MNRL tool vocabulary.
///
/// # Errors
///
/// Same as [`from_json`].
pub fn from_mnrl(text: &str) -> Result<Automaton, CoreError> {
    from_json(text)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::element::CounterMode;
    use crate::ReportCode;

    fn sample() -> Automaton {
        let mut a = Automaton::new();
        let s0 = a.add_ste(SymbolClass::from_range(b'a', b'f'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_bytes(&[0, 255, 7]), StartKind::None);
        let c = a.add_counter(4, CounterMode::Pulse);
        a.add_edge(s0, s1);
        a.add_edge(s1, c);
        a.add_reset_edge(s0, c);
        a.set_report(s1, 11);
        a.set_report(c, 12);
        a.set_report_eod_only(s1, true);
        a
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let a = sample();
        let json = to_json(&a, "t");
        let b = from_json(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_encoding_is_compact() {
        let mut c = SymbolClass::from_range(10, 20);
        c.insert(42);
        assert_eq!(class_to_ranges(&c), vec![[10, 20], [42, 42]]);
        assert_eq!(ranges_to_class(&class_to_ranges(&c)).unwrap(), c);
    }

    #[test]
    fn full_class_is_one_range() {
        assert_eq!(class_to_ranges(&SymbolClass::FULL), vec![[0, 255]]);
    }

    #[test]
    fn rejects_unknown_node_type() {
        let json = r#"{"id":"x","nodes":[{"id":"a","type":"quantum","outputConnections":[]}]}"#;
        assert!(matches!(from_json(json), Err(CoreError::Format(_))));
    }

    #[test]
    fn rejects_dangling_connection() {
        let json = r#"{"id":"x","nodes":[{"id":"a","type":"hState","enable":"always",
            "symbolSet":[[97,97]],"outputConnections":[{"id":"ghost","port":"activate"}]}]}"#;
        assert!(matches!(from_json(json), Err(CoreError::Format(_))));
    }

    #[test]
    fn rejects_bad_json() {
        assert!(matches!(from_json("{nope"), Err(CoreError::Format(_))));
    }

    #[test]
    fn missing_report_fields_default_to_false() {
        let json = r#"{"id":"x","nodes":[{"id":"a","type":"hState","enable":"always",
            "symbolSet":[[97,97]],"outputConnections":[]}]}"#;
        let a = from_json(json).unwrap();
        assert_eq!(a.report_states().len(), 0);
    }

    #[test]
    fn string_report_ids_are_accepted() {
        // Several MNRL emitters write reportId as a decimal string.
        let json = r#"{"id":"x","nodes":[{"id":"a","type":"hState","enable":"always",
            "symbolSet":[[97,97]],"report":true,"reportId":"4294967295",
            "outputConnections":[]}]}"#;
        let a = from_json(json).unwrap();
        let reports = a.report_states();
        assert_eq!(reports.len(), 1);
        assert_eq!(a.element(reports[0]).report, Some(ReportCode(u32::MAX)));
        let bad = r#"{"id":"x","nodes":[{"id":"a","type":"hState","enable":"always",
            "symbolSet":[[97,97]],"report":true,"reportId":"nope",
            "outputConnections":[]}]}"#;
        assert!(matches!(from_json(bad), Err(CoreError::Format(_))));
    }

    #[test]
    fn mnrl_aliases_round_trip() {
        let a = sample();
        assert_eq!(from_mnrl(&to_mnrl(&a, "t")).unwrap(), a);
        assert_eq!(to_mnrl(&a, "t"), to_json(&a, "t"));
    }
}

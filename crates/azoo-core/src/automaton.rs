//! The homogeneous-automaton graph container.

use crate::element::{CounterMode, Element, ElementKind, Port, ReportCode, StartKind};
use crate::error::CoreError;
use crate::symbol::SymbolClass;

/// Index of an element within an [`Automaton`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u32);

impl StateId {
    /// Creates a state id from a raw index.
    pub fn new(index: usize) -> Self {
        StateId(u32::try_from(index).expect("automaton larger than u32::MAX states"))
    }

    /// The raw index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed activation edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Target element.
    pub to: StateId,
    /// Which input port of the target this edge drives.
    pub port: Port,
}

/// A homogeneous non-deterministic finite automaton with optional counter
/// elements.
///
/// See the [crate-level documentation](crate) for the execution semantics.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, StartKind, SymbolClass};
///
/// let mut a = Automaton::new();
/// let (first, last) = a.add_chain(
///     &[
///         SymbolClass::from_byte(b'h'),
///         SymbolClass::from_byte(b'i'),
///     ],
///     StartKind::AllInput,
/// );
/// a.set_report(last, 1);
/// assert_eq!(a.state_count(), 2);
/// assert_eq!(a.successors(first).len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Automaton {
    elements: Vec<Element>,
    succ: Vec<Vec<Edge>>,
}

impl Automaton {
    /// Creates an empty automaton.
    pub fn new() -> Self {
        Automaton::default()
    }

    /// Creates an empty automaton with element capacity reserved.
    pub fn with_capacity(states: usize) -> Self {
        Automaton {
            elements: Vec::with_capacity(states),
            succ: Vec::with_capacity(states),
        }
    }

    /// Adds an arbitrary element, returning its id.
    pub fn add_element(&mut self, element: Element) -> StateId {
        let id = StateId::new(self.elements.len());
        self.elements.push(element);
        self.succ.push(Vec::new());
        debug_assert_eq!(self.elements.len(), self.succ.len());
        id
    }

    /// Adds an STE with the given class and start kind.
    pub fn add_ste(&mut self, class: SymbolClass, start: StartKind) -> StateId {
        self.add_element(Element::ste(class, start))
    }

    /// Adds a counter element.
    pub fn add_counter(&mut self, target: u32, mode: CounterMode) -> StateId {
        self.add_element(Element::counter(target, mode))
    }

    /// Adds an activation edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_edge(&mut self, from: StateId, to: StateId) {
        assert!(from.index() < self.elements.len(), "bad source {from:?}");
        assert!(to.index() < self.elements.len(), "bad target {to:?}");
        self.succ[from.index()].push(Edge {
            to,
            port: Port::Activate,
        });
    }

    /// Adds a reset edge into a counter element.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_reset_edge(&mut self, from: StateId, to: StateId) {
        assert!(from.index() < self.elements.len(), "bad source {from:?}");
        assert!(to.index() < self.elements.len(), "bad target {to:?}");
        self.succ[from.index()].push(Edge {
            to,
            port: Port::Reset,
        });
    }

    /// Marks `id` as reporting with the given code.
    pub fn set_report(&mut self, id: StateId, code: u32) {
        debug_assert!(
            id.index() < self.elements.len(),
            "set_report on unknown state {id:?}"
        );
        self.elements[id.index()].report = Some(ReportCode(code));
    }

    /// Restricts a report to fire only on the final input symbol
    /// (implements the `$` end anchor).
    pub fn set_report_eod_only(&mut self, id: StateId, eod_only: bool) {
        self.elements[id.index()].report_eod_only = eod_only;
    }

    /// Convenience: adds a linear chain of STEs, wiring each to the next.
    ///
    /// The first state receives `start`; the rest are `StartKind::None`.
    /// Returns `(first, last)`.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn add_chain(&mut self, classes: &[SymbolClass], start: StartKind) -> (StateId, StateId) {
        assert!(!classes.is_empty(), "chain must have at least one state");
        let first = self.add_ste(classes[0], start);
        let mut prev = first;
        for class in &classes[1..] {
            let next = self.add_ste(*class, StartKind::None);
            self.add_edge(prev, next);
            prev = next;
        }
        (first, prev)
    }

    /// Number of elements (STEs + counters).
    pub fn state_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of STE elements.
    pub fn ste_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_ste()).count()
    }

    /// Number of counter elements.
    pub fn counter_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_counter()).count()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// The element at `id`.
    pub fn element(&self, id: StateId) -> &Element {
        &self.elements[id.index()]
    }

    /// Mutable access to the element at `id`.
    pub fn element_mut(&mut self, id: StateId) -> &mut Element {
        &mut self.elements[id.index()]
    }

    /// Outgoing edges of `id`.
    pub fn successors(&self, id: StateId) -> &[Edge] {
        &self.succ[id.index()]
    }

    /// Iterates over `(id, element)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (StateId::new(i), e))
    }

    /// Ids of all start states.
    pub fn start_states(&self) -> Vec<StateId> {
        self.iter()
            .filter(|(_, e)| e.start_kind() != StartKind::None)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all reporting elements.
    pub fn report_states(&self) -> Vec<StateId> {
        self.iter()
            .filter(|(_, e)| e.report.is_some())
            .map(|(id, _)| id)
            .collect()
    }

    /// Computes the reverse adjacency (predecessors with ports).
    pub fn predecessors(&self) -> Vec<Vec<(StateId, Port)>> {
        let mut pred = vec![Vec::new(); self.elements.len()];
        for (i, edges) in self.succ.iter().enumerate() {
            for e in edges {
                pred[e.to.index()].push((StateId::new(i), e.port));
            }
        }
        pred
    }

    /// Disjoint union: appends all elements and edges of `other`, returning
    /// the id offset added to `other`'s states.
    ///
    /// Benchmarks are assembled by appending one automaton per
    /// pattern/filter; each appended automaton becomes one connected
    /// component ("subgraph" in AutomataZoo's Table I).
    pub fn append(&mut self, other: &Automaton) -> u32 {
        let offset = u32::try_from(self.elements.len()).expect("automaton exceeds u32::MAX states");
        debug_assert!(
            (offset as usize)
                .checked_add(other.elements.len())
                .is_some(),
            "appended automaton overflows the state index space"
        );
        self.elements.extend(other.elements.iter().cloned());
        for edges in &other.succ {
            self.succ.push(
                edges
                    .iter()
                    .map(|e| Edge {
                        to: StateId(e.to.0 + offset),
                        port: e.port,
                    })
                    .collect(),
            );
        }
        offset
    }

    /// Builds a new automaton keeping only states where `keep(id)` is true,
    /// remapping ids densely and dropping edges touching removed states.
    pub fn retain_states(&self, keep: impl Fn(StateId) -> bool) -> Automaton {
        let mut remap = vec![u32::MAX; self.elements.len()];
        let mut out = Automaton::new();
        for (id, e) in self.iter() {
            if keep(id) {
                let new_id = out.add_element(e.clone());
                remap[id.index()] = new_id.0;
            }
        }
        for (id, _) in self.iter() {
            let from = remap[id.index()];
            if from == u32::MAX {
                continue;
            }
            for e in self.successors(id) {
                let to = remap[e.to.index()];
                if to != u32::MAX {
                    out.succ[from as usize].push(Edge {
                        to: StateId(to),
                        port: e.port,
                    });
                }
            }
        }
        out
    }

    /// Checks structural invariants, stopping at the first violation.
    ///
    /// This is a thin wrapper over [`Automaton::validate_all`], which is
    /// the single source of truth for Error-level structural rules (the
    /// `azoo-analyze` linter reports the same findings, one diagnostic
    /// per violation).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: empty STE classes, zero
    /// counter targets, edges referencing missing states, duplicate
    /// edges, reset edges into STEs, or a complete absence of start
    /// states.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self.validate_all().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Checks every structural invariant and returns *all* violations, in
    /// state order.
    ///
    /// The checks, per state:
    ///
    /// * STEs must have a non-empty symbol class ([`CoreError::EmptySymbolClass`]);
    /// * counters must have a non-zero target ([`CoreError::ZeroCounterTarget`]);
    /// * edges must reference existing states ([`CoreError::InvalidStateId`]);
    /// * reset edges must target counters ([`CoreError::ResetIntoSte`]);
    /// * no `(target, port)` pair may appear twice on one source state
    ///   ([`CoreError::DuplicateEdge`]);
    ///
    /// and globally, a non-empty automaton must have at least one start
    /// state ([`CoreError::NoStartStates`]).
    pub fn validate_all(&self) -> Vec<CoreError> {
        let mut errors = Vec::new();
        let mut has_start = false;
        let mut seen: Vec<Edge> = Vec::new();
        for (id, e) in self.iter() {
            match &e.kind {
                ElementKind::Ste { class, start } => {
                    if class.is_empty() {
                        errors.push(CoreError::EmptySymbolClass(id));
                    }
                    if *start != StartKind::None {
                        has_start = true;
                    }
                }
                ElementKind::Counter { target, .. } => {
                    if *target == 0 {
                        errors.push(CoreError::ZeroCounterTarget(id));
                    }
                }
            }
            seen.clear();
            for edge in self.successors(id) {
                if edge.to.index() >= self.elements.len() {
                    errors.push(CoreError::InvalidStateId(edge.to));
                    continue;
                }
                if edge.port == Port::Reset && self.element(edge.to).is_ste() {
                    errors.push(CoreError::ResetIntoSte {
                        from: id,
                        to: edge.to,
                    });
                }
                if seen.contains(edge) {
                    errors.push(CoreError::DuplicateEdge {
                        from: id,
                        to: edge.to,
                    });
                } else {
                    seen.push(*edge);
                }
            }
        }
        if !has_start && !self.elements.is_empty() {
            errors.push(CoreError::NoStartStates);
        }
        errors
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn abc() -> Automaton {
        let mut a = Automaton::new();
        let (_, last) = a.add_chain(
            &[
                SymbolClass::from_byte(b'a'),
                SymbolClass::from_byte(b'b'),
                SymbolClass::from_byte(b'c'),
            ],
            StartKind::AllInput,
        );
        a.set_report(last, 9);
        a
    }

    #[test]
    fn chain_builder_wires_sequentially() {
        let a = abc();
        assert_eq!(a.state_count(), 3);
        assert_eq!(a.edge_count(), 2);
        assert_eq!(a.start_states(), vec![StateId::new(0)]);
        assert_eq!(a.report_states(), vec![StateId::new(2)]);
        assert_eq!(a.successors(StateId::new(0))[0].to, StateId::new(1));
        a.validate().unwrap();
    }

    #[test]
    fn append_offsets_ids() {
        let mut a = abc();
        let b = abc();
        let off = a.append(&b);
        assert_eq!(off, 3);
        assert_eq!(a.state_count(), 6);
        assert_eq!(a.edge_count(), 4);
        assert_eq!(a.successors(StateId::new(3))[0].to, StateId::new(4));
        a.validate().unwrap();
    }

    #[test]
    fn predecessors_mirror_successors() {
        let a = abc();
        let pred = a.predecessors();
        assert!(pred[0].is_empty());
        assert_eq!(pred[1], vec![(StateId::new(0), Port::Activate)]);
        assert_eq!(pred[2], vec![(StateId::new(1), Port::Activate)]);
    }

    #[test]
    fn retain_states_remaps_edges() {
        let a = abc();
        // Drop the middle state; the chain edge through it disappears.
        let b = a.retain_states(|id| id.index() != 1);
        assert_eq!(b.state_count(), 2);
        assert_eq!(b.edge_count(), 0);
        assert!(b.element(StateId::new(1)).report.is_some());
    }

    #[test]
    fn validate_rejects_empty_class() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        assert_eq!(
            a.validate(),
            Err(CoreError::EmptySymbolClass(StateId::new(0)))
        );
    }

    #[test]
    fn validate_rejects_no_starts() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::FULL, StartKind::None);
        assert_eq!(a.validate(), Err(CoreError::NoStartStates));
    }

    #[test]
    fn validate_rejects_reset_into_ste() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let t = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_reset_edge(s, t);
        assert!(matches!(a.validate(), Err(CoreError::ResetIntoSte { .. })));
    }

    #[test]
    fn validate_rejects_zero_counter_target() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = a.add_counter(0, CounterMode::Latch);
        a.add_edge(s, c);
        assert!(matches!(a.validate(), Err(CoreError::ZeroCounterTarget(_))));
    }

    #[test]
    fn validate_rejects_duplicate_edges() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let t = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(s, t);
        a.add_edge(s, t);
        assert_eq!(
            a.validate(),
            Err(CoreError::DuplicateEdge { from: s, to: t })
        );
        // An activate and a reset edge to the same target are distinct.
        let mut b = Automaton::new();
        let s = b.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = b.add_counter(2, CounterMode::Latch);
        b.add_edge(s, c);
        b.add_reset_edge(s, c);
        b.validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_edge_target() {
        let mut a = abc();
        // Forge an edge to a state that does not exist (the public
        // `add_edge` panics on this, but deserializers and passes build
        // adjacency directly).
        a.succ[0].push(Edge {
            to: StateId::new(99),
            port: Port::Activate,
        });
        assert_eq!(
            a.validate(),
            Err(CoreError::InvalidStateId(StateId::new(99)))
        );
    }

    #[test]
    fn validate_all_collects_every_violation() {
        let mut a = Automaton::new();
        let empty = a.add_ste(SymbolClass::EMPTY, StartKind::None);
        let c = a.add_counter(0, CounterMode::Latch);
        a.add_edge(empty, c);
        a.add_edge(empty, c);
        let errors = a.validate_all();
        assert_eq!(
            errors,
            vec![
                CoreError::EmptySymbolClass(empty),
                CoreError::DuplicateEdge { from: empty, to: c },
                CoreError::ZeroCounterTarget(c),
                CoreError::NoStartStates,
            ]
        );
        // `validate` reports exactly the first of these.
        assert_eq!(a.validate(), Err(CoreError::EmptySymbolClass(empty)));
    }

    #[test]
    fn validate_all_is_empty_for_valid_automata() {
        assert!(abc().validate_all().is_empty());
        assert!(Automaton::new().validate_all().is_empty());
    }

    #[test]
    fn counter_counts() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        assert_eq!(a.ste_count(), 1);
        assert_eq!(a.counter_count(), 1);
        a.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "chain must have at least one state")]
    fn empty_chain_panics() {
        let mut a = Automaton::new();
        a.add_chain(&[], StartKind::AllInput);
    }
}

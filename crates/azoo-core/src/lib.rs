//! Core data model for homogeneous finite automata, as used by automata
//! processing accelerators and the AutomataZoo benchmark suite.
//!
//! The model follows the ANML/MNRL conventions established by Micron's
//! Automata Processor and the VASim/MNCaRT toolchain:
//!
//! * Automata are **homogeneous**: the symbol class ("character set") lives
//!   on the *state* (called an STE — State Transition Element), not on the
//!   edge. A state *matches* when it is enabled and the current input symbol
//!   is in its class; a matching state *activates*, which enables all of its
//!   successors for the next input symbol.
//! * States can be **start states**: either `StartOfData` (enabled only
//!   before the first symbol) or `AllInput` (re-enabled on every symbol,
//!   giving "match anywhere" search semantics).
//! * States can **report**: when a reporting state matches, it emits a
//!   report `(input offset, report code)`.
//! * **Counter elements** (an extended-automata feature of the AP) count
//!   activation signals and fire when a target is reached.
//!
//! # Example
//!
//! ```
//! use azoo_core::{Automaton, StartKind, SymbolClass};
//!
//! // Build an automaton matching the literal "cat" anywhere in the input.
//! let mut a = Automaton::new();
//! let c = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
//! let s1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
//! let s2 = a.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
//! a.add_edge(c, s1);
//! a.add_edge(s1, s2);
//! a.set_report(s2, 0);
//! assert_eq!(a.state_count(), 3);
//! a.validate().unwrap();
//! ```

// Library code must not panic on malformed input: parse and validation
// failures are `CoreError`s the lint layer can report as diagnostics.
// Tests opt back in with a module-level allow.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

pub mod anml;
pub mod bitset;
pub mod dot;
pub mod element;
pub mod error;
pub mod hash;
pub mod json;
pub mod mnrl;
pub mod stats;
pub mod symbol;

mod automaton;

pub use automaton::{Automaton, Edge, StateId};
pub use bitset::BitSet;
pub use element::{CounterMode, Element, ElementKind, Port, ReportCode, StartKind};
pub use error::CoreError;
pub use hash::{content_hash, HASH_VERSION};
pub use stats::AutomatonStats;
pub use symbol::SymbolClass;

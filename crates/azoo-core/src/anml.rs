//! ANML-dialect XML interchange.
//!
//! ANML (the Automata Network Markup Language) is the Micron AP's native
//! automata format and the format ANMLZoo distributed benchmarks in.
//! This module emits and parses an ANML-flavoured dialect covering our
//! element set:
//!
//! ```xml
//! <automata-network id="demo">
//!   <state-transition-element id="ste0" symbol-set="[\x61-\x63]" start="all-input">
//!     <report-on-match reportcode="7"/>
//!     <activate-on-match element="ste1"/>
//!   </state-transition-element>
//!   <counter id="c2" target="4" at-target="latch">
//!     <activate-on-target element="ste3"/>
//!   </counter>
//! </automata-network>
//! ```
//!
//! Dialect notes (documented divergences from Micron's schema): the
//! `start` attribute takes `none | start-of-data | all-input` (Micron
//! splits this across two attributes); counters use
//! `activate-on-target` / `report-on-target`; reset edges are
//! `reset-on-match`. The parser accepts exactly what the writer emits
//! plus arbitrary attribute order and whitespace.

use std::fmt::Write as _;

use crate::automaton::{Automaton, StateId};
use crate::element::{CounterMode, ElementKind, Port, StartKind};
use crate::error::CoreError;
use crate::symbol::SymbolClass;

/// Renders a symbol class in ANML symbol-set notation (`[..]` with
/// `\xHH` escapes and ranges). The full class renders as `[\x00-\xff]`.
pub fn symbol_set_string(class: &SymbolClass) -> String {
    let mut out = String::from("[");
    let mut run: Option<(u8, u8)> = None;
    let flush = |out: &mut String, (lo, hi): (u8, u8)| {
        if lo == hi {
            let _ = write!(out, "\\x{lo:02x}");
        } else {
            let _ = write!(out, "\\x{lo:02x}-\\x{hi:02x}");
        }
    };
    for b in class.iter() {
        match run {
            Some((lo, hi)) if hi as u16 + 1 == b as u16 => run = Some((lo, b)),
            Some(r) => {
                flush(&mut out, r);
                run = Some((b, b));
            }
            None => run = Some((b, b)),
        }
    }
    if let Some(r) = run {
        flush(&mut out, r);
    }
    out.push(']');
    out
}

/// Parses ANML symbol-set notation produced by [`symbol_set_string`].
///
/// # Errors
///
/// Returns [`CoreError::Format`] on malformed notation.
pub fn parse_symbol_set(s: &str) -> Result<SymbolClass, CoreError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| CoreError::Format(format!("symbol set '{s}' missing brackets")))?;
    let bytes = inner.as_bytes();
    let mut class = SymbolClass::new();
    let mut i = 0;
    let take_byte = |i: &mut usize| -> Result<u8, CoreError> {
        if bytes.get(*i) == Some(&b'\\') && bytes.get(*i + 1) == Some(&b'x') {
            let hex = inner
                .get(*i + 2..*i + 4)
                .ok_or_else(|| CoreError::Format("truncated \\x escape".into()))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|e| CoreError::Format(format!("bad hex escape: {e}")))?;
            *i += 4;
            Ok(v)
        } else if let Some(&b) = bytes.get(*i) {
            *i += 1;
            Ok(b)
        } else {
            Err(CoreError::Format("truncated symbol set".into()))
        }
    };
    while i < bytes.len() {
        let lo = take_byte(&mut i)?;
        if bytes.get(i) == Some(&b'-') && i + 1 < bytes.len() {
            i += 1;
            let hi = take_byte(&mut i)?;
            if lo > hi {
                return Err(CoreError::Format(format!("reversed range {lo}-{hi}")));
            }
            for b in lo..=hi {
                class.insert(b);
            }
        } else {
            class.insert(lo);
        }
    }
    Ok(class)
}

/// Serializes an automaton to the ANML dialect.
pub fn to_anml(a: &Automaton, network_id: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<automata-network id=\"{}\">", escape(network_id));
    for (id, e) in a.iter() {
        let i = id.index();
        match &e.kind {
            ElementKind::Ste { class, start } => {
                let start = match start {
                    StartKind::None => "none",
                    StartKind::StartOfData => "start-of-data",
                    StartKind::AllInput => "all-input",
                };
                let _ = writeln!(
                    out,
                    "  <state-transition-element id=\"ste{i}\" symbol-set=\"{}\" start=\"{start}\">",
                    symbol_set_string(class)
                );
                if let Some(code) = e.report {
                    let eod = if e.report_eod_only {
                        " eod-only=\"true\""
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "    <report-on-match reportcode=\"{}\"{eod}/>", code.0);
                }
                for edge in a.successors(id) {
                    let verb = match edge.port {
                        Port::Activate => "activate-on-match",
                        Port::Reset => "reset-on-match",
                    };
                    let _ = writeln!(out, "    <{verb} element=\"ste{}\"/>", edge.to.index());
                }
                let _ = writeln!(out, "  </state-transition-element>");
            }
            ElementKind::Counter { target, mode } => {
                let mode = match mode {
                    CounterMode::Latch => "latch",
                    CounterMode::Pulse => "pulse",
                    CounterMode::Roll => "roll",
                };
                let _ = writeln!(
                    out,
                    "  <counter id=\"ste{i}\" target=\"{target}\" at-target=\"{mode}\">"
                );
                if let Some(code) = e.report {
                    let _ = writeln!(out, "    <report-on-target reportcode=\"{}\"/>", code.0);
                }
                for edge in a.successors(id) {
                    let _ = writeln!(
                        out,
                        "    <activate-on-target element=\"ste{}\"/>",
                        edge.to.index()
                    );
                }
                let _ = writeln!(out, "  </counter>");
            }
        }
    }
    out.push_str("</automata-network>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

/// Parses the ANML dialect emitted by [`to_anml`].
///
/// # Errors
///
/// Returns [`CoreError::Format`] for malformed documents, unknown tags
/// or attributes, dangling element references, or invalid symbol sets.
pub fn from_anml(text: &str) -> Result<Automaton, CoreError> {
    let mut tags = TagReader::new(text);
    let Some(root) = tags.next_tag()? else {
        return Err(CoreError::Format("empty document".into()));
    };
    if root.name != "automata-network" || root.kind != TagKind::Open {
        return Err(CoreError::Format("expected <automata-network>".into()));
    }

    struct PendingEdge {
        from: usize,
        to_name: String,
        port: Port,
    }
    let mut a = Automaton::new();
    let mut names: std::collections::HashMap<String, StateId> = std::collections::HashMap::new();
    let mut edges: Vec<PendingEdge> = Vec::new();
    let mut current: Option<StateId> = None;

    while let Some(tag) = tags.next_tag()? {
        match (tag.name.as_str(), tag.kind) {
            ("automata-network", TagKind::Close) => break,
            ("state-transition-element", TagKind::Open) => {
                let class = parse_symbol_set(&tag.require("symbol-set")?)?;
                let start = match tag.require("start")?.as_str() {
                    "none" => StartKind::None,
                    "start-of-data" => StartKind::StartOfData,
                    "all-input" => StartKind::AllInput,
                    other => return Err(CoreError::Format(format!("unknown start '{other}'"))),
                };
                let id = a.add_ste(class, start);
                names.insert(tag.require("id")?, id);
                current = Some(id);
            }
            ("counter", TagKind::Open) => {
                let target: u32 = tag
                    .require("target")?
                    .parse()
                    .map_err(|e| CoreError::Format(format!("bad target: {e}")))?;
                let mode = match tag.require("at-target")?.as_str() {
                    "latch" => CounterMode::Latch,
                    "pulse" => CounterMode::Pulse,
                    "roll" => CounterMode::Roll,
                    other => return Err(CoreError::Format(format!("unknown at-target '{other}'"))),
                };
                let id = a.add_counter(target, mode);
                names.insert(tag.require("id")?, id);
                current = Some(id);
            }
            ("state-transition-element" | "counter", TagKind::Close) => current = None,
            ("report-on-match" | "report-on-target", TagKind::Empty) => {
                let cur =
                    current.ok_or_else(|| CoreError::Format("report outside an element".into()))?;
                let code: u32 = tag
                    .require("reportcode")?
                    .parse()
                    .map_err(|e| CoreError::Format(format!("bad reportcode: {e}")))?;
                a.set_report(cur, code);
                if tag.attr("eod-only").as_deref() == Some("true") {
                    a.set_report_eod_only(cur, true);
                }
            }
            ("activate-on-match" | "activate-on-target", TagKind::Empty) => {
                let cur =
                    current.ok_or_else(|| CoreError::Format("edge outside an element".into()))?;
                edges.push(PendingEdge {
                    from: cur.index(),
                    to_name: tag.require("element")?,
                    port: Port::Activate,
                });
            }
            ("reset-on-match", TagKind::Empty) => {
                let cur =
                    current.ok_or_else(|| CoreError::Format("edge outside an element".into()))?;
                edges.push(PendingEdge {
                    from: cur.index(),
                    to_name: tag.require("element")?,
                    port: Port::Reset,
                });
            }
            (other, _) => {
                return Err(CoreError::Format(format!("unexpected tag '{other}'")));
            }
        }
    }
    for e in edges {
        let to = *names
            .get(&e.to_name)
            .ok_or_else(|| CoreError::Format(format!("dangling reference '{}'", e.to_name)))?;
        match e.port {
            Port::Activate => a.add_edge(StateId::new(e.from), to),
            Port::Reset => a.add_reset_edge(StateId::new(e.from), to),
        }
    }
    Ok(a)
}

#[derive(PartialEq, Clone, Copy)]
enum TagKind {
    Open,
    Close,
    Empty,
}

struct Tag {
    name: String,
    kind: TagKind,
    attrs: Vec<(String, String)>,
}

impl Tag {
    fn attr(&self, name: &str) -> Option<String> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }

    fn require(&self, name: &str) -> Result<String, CoreError> {
        self.attr(name)
            .ok_or_else(|| CoreError::Format(format!("<{}> missing '{name}'", self.name)))
    }
}

struct TagReader<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> TagReader<'a> {
    fn new(text: &'a str) -> Self {
        TagReader { text, pos: 0 }
    }

    fn next_tag(&mut self) -> Result<Option<Tag>, CoreError> {
        let rest = &self.text[self.pos..];
        let Some(start) = rest.find('<') else {
            return Ok(None);
        };
        let rest = &rest[start..];
        let end = rest
            .find('>')
            .ok_or_else(|| CoreError::Format("unterminated tag".into()))?;
        self.pos += start + end + 1;
        let mut body = &rest[1..end];
        let kind = if let Some(stripped) = body.strip_prefix('/') {
            body = stripped;
            TagKind::Close
        } else if let Some(stripped) = body.strip_suffix('/') {
            body = stripped;
            TagKind::Empty
        } else {
            TagKind::Open
        };
        let body = body.trim();
        let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
        let name = body[..name_end].to_owned();
        if name.is_empty() {
            return Err(CoreError::Format("empty tag name".into()));
        }
        // Attributes: key="value" pairs.
        let mut attrs = Vec::new();
        let mut attr_text = body[name_end..].trim();
        while !attr_text.is_empty() {
            let eq = attr_text
                .find('=')
                .ok_or_else(|| CoreError::Format(format!("malformed attributes in <{name}>")))?;
            let key = attr_text[..eq].trim().to_owned();
            let after = attr_text[eq + 1..].trim_start();
            let value_body = after
                .strip_prefix('"')
                .ok_or_else(|| CoreError::Format(format!("unquoted value in <{name}>")))?;
            let close = value_body
                .find('"')
                .ok_or_else(|| CoreError::Format(format!("unterminated value in <{name}>")))?;
            let value = value_body[..close]
                .replace("&quot;", "\"")
                .replace("&lt;", "<")
                .replace("&amp;", "&");
            attrs.push((key, value));
            attr_text = value_body[close + 1..].trim_start();
        }
        Ok(Some(Tag { name, kind, attrs }))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> Automaton {
        let mut a = Automaton::new();
        let s0 = a.add_ste(SymbolClass::from_range(b'a', b'c'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_bytes(&[0, 255]), StartKind::StartOfData);
        let c = a.add_counter(5, CounterMode::Roll);
        a.add_edge(s0, s1);
        a.add_edge(s1, c);
        a.add_reset_edge(s0, c);
        a.set_report(s1, 3);
        a.set_report_eod_only(s1, true);
        a.set_report(c, 4);
        a
    }

    #[test]
    fn roundtrip_preserves_automaton() {
        let a = sample();
        let xml = to_anml(&a, "t");
        let b = from_anml(&xml).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symbol_set_notation_roundtrips() {
        for class in [
            SymbolClass::from_byte(b'x'),
            SymbolClass::from_range(0, 255),
            SymbolClass::from_bytes(&[1, 2, 3, 9, 200]),
            SymbolClass::from_bytes(b"-[]"),
        ] {
            let s = symbol_set_string(&class);
            assert_eq!(parse_symbol_set(&s).unwrap(), class, "notation {s}");
        }
    }

    #[test]
    fn emitted_xml_shape() {
        let xml = to_anml(&sample(), "net");
        assert!(xml.starts_with("<automata-network id=\"net\">"));
        assert!(xml.contains("start=\"all-input\""));
        assert!(xml.contains("<report-on-match reportcode=\"3\" eod-only=\"true\"/>"));
        assert!(xml.contains("<counter id=\"ste2\" target=\"5\" at-target=\"roll\">"));
        assert!(xml.contains("<reset-on-match element=\"ste2\"/>"));
        assert!(xml.trim_end().ends_with("</automata-network>"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_anml("").is_err());
        assert!(from_anml("<wrong-root/>").is_err());
        assert!(from_anml("<automata-network id=\"x\"><bogus/></automata-network>").is_err());
        assert!(from_anml(
            "<automata-network id=\"x\">\
             <state-transition-element id=\"a\" start=\"none\">\
             </state-transition-element></automata-network>"
        )
        .is_err()); // missing symbol-set
        assert!(from_anml(
            "<automata-network id=\"x\">\
             <state-transition-element id=\"a\" symbol-set=\"[\\x41]\" start=\"all-input\">\
             <activate-on-match element=\"ghost\"/>\
             </state-transition-element></automata-network>"
        )
        .is_err()); // dangling reference
    }

    #[test]
    fn parse_symbol_set_errors() {
        assert!(parse_symbol_set("no-brackets").is_err());
        assert!(parse_symbol_set("[\\x4]").is_err());
        assert!(parse_symbol_set("[\\x63-\\x61]").is_err());
    }
}

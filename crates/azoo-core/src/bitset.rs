//! A dense, growable bitset used by engines and passes for active-state
//! tracking over large automata.

/// A fixed-capacity bitset over `len` bits, backed by 64-bit words.
///
/// # Example
///
/// ```
/// use azoo_core::BitSet;
///
/// let mut b = BitSet::new(100);
/// b.set(3);
/// b.set(64);
/// assert!(b.get(3));
/// assert_eq!(b.count_ones(), 2);
/// assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset with capacity for `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits the set can hold.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i`, returning whether it was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i >> 6];
        let m = 1u64 << (i & 63);
        let fresh = *w & m == 0;
        *w |= m;
        fresh
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates over indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words, low bit = index 0.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words for engine hot loops.
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// Iterator over set-bit indices of a [`BitSet`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::new(130);
        assert!(b.none());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn insert_reports_freshness() {
        let mut b = BitSet::new(10);
        assert!(b.insert(5));
        assert!(!b.insert(5));
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        a.set(1);
        a.set(100);
        b.set(100);
        b.set(199);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 100, 199]);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![100]);
    }

    #[test]
    fn iter_ones_empty_and_boundaries() {
        let b = BitSet::new(0);
        assert_eq!(b.iter_ones().count(), 0);
        let mut b = BitSet::new(64);
        b.set(63);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut b = BitSet::new(8);
        b.set(8);
    }
}

//! 256-bit symbol classes ("character sets") recognized by automata states.

use std::fmt;

/// A set of 8-bit input symbols, stored as a 256-bit mask.
///
/// This is the "character class" configured into an STE. All set operations
/// are O(1) over four machine words.
///
/// # Example
///
/// ```
/// use azoo_core::SymbolClass;
///
/// let digits = SymbolClass::from_range(b'0', b'9');
/// assert!(digits.contains(b'5'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SymbolClass {
    bits: [u64; 4],
}

impl SymbolClass {
    /// The empty class, matching no symbol.
    pub const EMPTY: SymbolClass = SymbolClass { bits: [0; 4] };

    /// The full class, matching every symbol (`*` in ANML notation).
    pub const FULL: SymbolClass = SymbolClass {
        bits: [u64::MAX; 4],
    };

    /// Creates an empty class. Equivalent to [`SymbolClass::EMPTY`].
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a class containing exactly one symbol.
    pub fn from_byte(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// Creates a class containing the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn from_range(lo: u8, hi: u8) -> Self {
        assert!(lo <= hi, "invalid symbol range {lo}..={hi}");
        let mut c = Self::EMPTY;
        for b in lo..=hi {
            c.insert(b);
        }
        c
    }

    /// Creates a class containing every symbol in `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = Self::EMPTY;
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// Adds a symbol to the class.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes a symbol from the class.
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Tests whether the class contains `b`.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Number of symbols in the class.
    pub fn len(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the class matches no symbol.
    pub fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    /// Whether the class matches every symbol.
    pub fn is_full(&self) -> bool {
        self.bits == [u64::MAX; 4]
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &SymbolClass) -> SymbolClass {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] |= other.bits[i];
        }
        out
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &SymbolClass) -> SymbolClass {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] &= other.bits[i];
        }
        out
    }

    /// Set complement over the 256-symbol alphabet.
    #[must_use]
    pub fn complement(&self) -> SymbolClass {
        let mut out = *self;
        for w in &mut out.bits {
            *w = !*w;
        }
        out
    }

    /// Iterates over the symbols in the class in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            class: self,
            next: 0,
            done: false,
        }
    }

    /// Case-insensitive closure: for every ASCII letter in the class, adds
    /// the letter of the opposite case.
    #[must_use]
    pub fn ascii_case_fold(&self) -> SymbolClass {
        let mut out = *self;
        for b in self.iter() {
            if b.is_ascii_lowercase() {
                out.insert(b.to_ascii_uppercase());
            } else if b.is_ascii_uppercase() {
                out.insert(b.to_ascii_lowercase());
            }
        }
        out
    }

    /// Raw 256-bit mask, low word first.
    pub fn as_words(&self) -> &[u64; 4] {
        &self.bits
    }
}

impl FromIterator<u8> for SymbolClass {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut c = Self::EMPTY;
        for b in iter {
            c.insert(b);
        }
        c
    }
}

impl Extend<u8> for SymbolClass {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

/// Iterator over the symbols of a [`SymbolClass`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    class: &'a SymbolClass,
    next: u8,
    done: bool,
}

impl Iterator for Iter<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        while !self.done {
            let b = self.next;
            if self.next == 255 {
                self.done = true;
            } else {
                self.next += 1;
            }
            if self.class.contains(b) {
                return Some(b);
            }
        }
        None
    }
}

impl fmt::Debug for SymbolClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return write!(f, "SymbolClass(*)");
        }
        write!(f, "SymbolClass[")?;
        // Render as compact ranges.
        let mut first = true;
        let mut run: Option<(u8, u8)> = None;
        let flush = |f: &mut fmt::Formatter<'_>, run: (u8, u8), first: &mut bool| {
            if !*first {
                write!(f, ",")?;
            }
            *first = false;
            let show = |b: u8| -> String {
                if b.is_ascii_graphic() {
                    format!("{}", b as char)
                } else {
                    format!("\\x{b:02x}")
                }
            };
            if run.0 == run.1 {
                write!(f, "{}", show(run.0))
            } else {
                write!(f, "{}-{}", show(run.0), show(run.1))
            }
        };
        for b in self.iter() {
            match run {
                Some((lo, hi)) if hi as u16 + 1 == b as u16 => run = Some((lo, b)),
                Some(r) => {
                    flush(f, r, &mut first)?;
                    run = Some((b, b));
                }
                None => run = Some((b, b)),
            }
        }
        if let Some(r) = run {
            flush(f, r, &mut first)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(SymbolClass::EMPTY.is_empty());
        assert_eq!(SymbolClass::EMPTY.len(), 0);
        assert!(SymbolClass::FULL.is_full());
        assert_eq!(SymbolClass::FULL.len(), 256);
        assert!(SymbolClass::FULL.contains(0));
        assert!(SymbolClass::FULL.contains(255));
    }

    #[test]
    fn insert_remove_contains() {
        let mut c = SymbolClass::new();
        c.insert(b'a');
        c.insert(0);
        c.insert(255);
        assert!(c.contains(b'a'));
        assert!(c.contains(0));
        assert!(c.contains(255));
        assert_eq!(c.len(), 3);
        c.remove(b'a');
        assert!(!c.contains(b'a'));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn range_boundaries() {
        let c = SymbolClass::from_range(10, 20);
        assert!(!c.contains(9));
        assert!(c.contains(10));
        assert!(c.contains(20));
        assert!(!c.contains(21));
        assert_eq!(c.len(), 11);
        let whole = SymbolClass::from_range(0, 255);
        assert!(whole.is_full());
    }

    #[test]
    #[should_panic(expected = "invalid symbol range")]
    fn reversed_range_panics() {
        let _ = SymbolClass::from_range(5, 1);
    }

    #[test]
    fn set_algebra() {
        let a = SymbolClass::from_range(b'a', b'm');
        let b = SymbolClass::from_range(b'g', b'z');
        let u = a.union(&b);
        let i = a.intersect(&b);
        assert_eq!(u.len(), 26);
        assert_eq!(i.len(), (b'm' - b'g' + 1) as u32);
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.union(&a.complement()), SymbolClass::FULL);
        assert!(a.intersect(&a.complement()).is_empty());
    }

    #[test]
    fn iter_yields_sorted_members() {
        let c = SymbolClass::from_bytes(&[200, 3, 5, 255, 0]);
        let v: Vec<u8> = c.iter().collect();
        assert_eq!(v, vec![0, 3, 5, 200, 255]);
    }

    #[test]
    fn case_folding() {
        let c = SymbolClass::from_bytes(b"aZ9");
        let f = c.ascii_case_fold();
        assert!(f.contains(b'A'));
        assert!(f.contains(b'z'));
        assert!(f.contains(b'9'));
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn debug_renders_ranges() {
        let c = SymbolClass::from_range(b'a', b'c');
        assert_eq!(format!("{c:?}"), "SymbolClass[a-c]");
    }

    #[test]
    fn collect_from_iterator() {
        let c: SymbolClass = (b'0'..=b'9').collect();
        assert_eq!(c, SymbolClass::from_range(b'0', b'9'));
    }
}

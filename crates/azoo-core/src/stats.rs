//! Static statistics over automata, matching the columns of AutomataZoo's
//! Table I (states, edges, edges/node, subgraph count, average subgraph
//! size, standard deviation).

use crate::automaton::{Automaton, StateId};

/// Static graph statistics for an automaton.
///
/// Produced by [`AutomatonStats::compute`]. "Subgraphs" are weakly connected
/// components — one per appended pattern/filter in a well-formed benchmark.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, AutomatonStats, StartKind, SymbolClass};
///
/// let mut a = Automaton::new();
/// a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
/// a.add_chain(&[SymbolClass::from_byte(b'y'); 2], StartKind::AllInput);
/// let stats = AutomatonStats::compute(&a);
/// assert_eq!(stats.states, 6);
/// assert_eq!(stats.subgraphs, 2);
/// assert_eq!(stats.avg_subgraph_size, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonStats {
    /// Total element count.
    pub states: usize,
    /// Total edge count.
    pub edges: usize,
    /// Edges per node.
    pub edges_per_node: f64,
    /// Number of weakly connected components.
    pub subgraphs: usize,
    /// Mean component size in states.
    pub avg_subgraph_size: f64,
    /// Population standard deviation of component sizes.
    pub stddev_subgraph_size: f64,
}

impl AutomatonStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &Automaton) -> AutomatonStats {
        let states = a.state_count();
        let edges = a.edge_count();
        let sizes = component_sizes(a);
        let subgraphs = sizes.len();
        let avg = if subgraphs == 0 {
            0.0
        } else {
            states as f64 / subgraphs as f64
        };
        let var = if subgraphs == 0 {
            0.0
        } else {
            sizes
                .iter()
                .map(|&s| {
                    let d = s as f64 - avg;
                    d * d
                })
                .sum::<f64>()
                / subgraphs as f64
        };
        AutomatonStats {
            states,
            edges,
            edges_per_node: if states == 0 {
                0.0
            } else {
                edges as f64 / states as f64
            },
            subgraphs,
            avg_subgraph_size: avg,
            stddev_subgraph_size: var.sqrt(),
        }
    }
}

/// Sizes of the weakly connected components of `a`, via union-find.
pub fn component_sizes(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        *counts.entry(uf.find(i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Assigns each state its weakly-connected-component index (dense, ordered
/// by smallest member id).
pub fn component_labels(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut label_of_root = std::collections::HashMap::new();
    let mut labels = vec![0usize; n];
    let mut next = 0usize;
    for (i, label) in labels.iter_mut().enumerate() {
        let root = uf.find(i);
        *label = *label_of_root.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    labels
}

/// Per-component structural profile: the facts reduction and lint
/// policies gate on (see `azoo-passes`' reduction refusal matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentProfile {
    /// Dense component label, as assigned by [`component_labels`].
    pub component: usize,
    /// Smallest state id in the component (diagnostic anchor).
    pub first_state: StateId,
    /// States in the component.
    pub states: usize,
    /// Whether the component contains a counter element.
    pub has_counter: bool,
    /// Whether the component contains a `StartOfData`-anchored STE.
    pub has_start_of_data: bool,
}

/// Profiles every weakly connected component of `a`, in label order.
pub fn component_profiles(a: &Automaton) -> Vec<ComponentProfile> {
    let labels = component_labels(a);
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut out: Vec<ComponentProfile> = (0..ncomp)
        .map(|c| ComponentProfile {
            component: c,
            first_state: StateId::new(0), // overwritten by the first member
            states: 0,
            has_counter: false,
            has_start_of_data: false,
        })
        .collect();
    for (id, e) in a.iter() {
        let p = &mut out[labels[id.index()]];
        if p.states == 0 {
            p.first_state = id;
        }
        p.states += 1;
        p.has_counter |= e.is_counter();
        p.has_start_of_data |= e.start_kind() == crate::element::StartKind::StartOfData;
    }
    out
}

/// Ids of states reachable from any start state (forward closure over
/// activation and reset edges).
pub fn reachable_from_starts(a: &Automaton) -> Vec<bool> {
    let mut seen = vec![false; a.state_count()];
    let mut stack: Vec<StateId> = a.start_states();
    for s in &stack {
        seen[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for e in a.successors(s) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// Number of states on the longest simple activation path from any start
/// state, or `None` when a cycle is reachable from a start state (path
/// length unbounded).
///
/// This bounds how many input symbols a single match can span: each STE on
/// a path consumes one symbol, so a match ending at offset `p` began no
/// earlier than `p - (len - 1)`. Counter elements on a path consume no
/// symbol, so for automata with counters the bound is conservative (an
/// over-estimate), never an under-estimate. Engines use this as the
/// overlap window when splitting an input across chunk workers.
///
/// Both activation and reset edges are followed; states unreachable from
/// any start state are ignored (they can never become active).
pub fn longest_path_from_starts(a: &Automaton) -> Option<usize> {
    const WHITE: u8 = 0; // unvisited
    const GRAY: u8 = 1; // on the DFS stack
    const BLACK: u8 = 2; // finished, `depth` valid
    let mut color = vec![WHITE; a.state_count()];
    // Longest path (in states) starting at each finished node.
    let mut depth = vec![0usize; a.state_count()];
    let mut best = 0usize;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in a.start_states() {
        let s = start.index();
        if color[s] == BLACK {
            best = best.max(depth[s]);
            continue;
        }
        color[s] = GRAY;
        stack.push((s, 0));
        while let Some(frame) = stack.last_mut() {
            let (v, ei) = *frame;
            let succs = a.successors(StateId::new(v));
            if ei < succs.len() {
                frame.1 += 1;
                let t = succs[ei].to.index();
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    GRAY => return None, // back edge: reachable cycle
                    _ => {}
                }
            } else {
                // All successors finished (a gray successor would have
                // returned above), so their depths are final.
                depth[v] = 1 + succs.iter().map(|e| depth[e.to.index()]).max().unwrap_or(0);
                color[v] = BLACK;
                stack.pop();
            }
        }
        best = best.max(depth[s]);
    }
    Some(best)
}

/// Shortest required literal worth prefiltering on. One-byte literals hit
/// on random input every ~256 symbols, which costs more in window
/// re-simulation than full scanning saves.
pub const MIN_PREFILTER_LITERAL: usize = 2;

/// Longest literal suffix extracted per report state. Selectivity gains
/// flatten out quickly with length, while the literal matcher's memory is
/// proportional to total literal bytes.
pub const MAX_PREFILTER_LITERAL: usize = 8;

/// Why a component is excluded from literal prefiltering and must be
/// scanned by full simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterBlock {
    /// Contains a counter element, whose state depends on the entire
    /// input prefix — no bounded window reproduces it.
    Counter,
    /// Contains a `StartOfData` anchor; a cold-started window would
    /// wrongly re-arm the anchor mid-stream.
    StartOfData,
    /// A cycle is reachable from a start state, so matches have no
    /// finite span and no window bound exists.
    Cycle,
    /// Some reachable report state has no required factor of at least
    /// [`MIN_PREFILTER_LITERAL`] bytes on its accepting paths.
    WeakLiteral,
}

impl std::fmt::Display for PrefilterBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PrefilterBlock::Counter => "counter element",
            PrefilterBlock::StartOfData => "start-of-data anchor",
            PrefilterBlock::Cycle => "cycle reachable from start",
            PrefilterBlock::WeakLiteral => "no required literal",
        };
        f.write_str(s)
    }
}

/// A required factor of every match of a component: a byte string each
/// accepting path must consume consecutively, plus the span geometry
/// locating the match relative to an occurrence.
///
/// If the factor occurs ending at offset `e`, the path that consumed it
/// armed no earlier than `e + 1 - bytes.len() - before`, and the report
/// it culminates in fires no later than `e + after`. A factor ending at
/// the match offset has `after == 0` (the classic suffix literal); one
/// at the start of an otherwise unconstrained pattern has `before == 0`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequiredLiteral {
    /// The forced bytes, in path order.
    pub bytes: Vec<u8>,
    /// Most states any accepting path consumes strictly before the
    /// factor's first byte.
    pub before: usize,
    /// Most states any accepting path consumes strictly after the
    /// factor's last byte, up to and including the report state.
    pub after: usize,
}

impl RequiredLiteral {
    /// A factor ending exactly at the match offset, armed at most
    /// `before` states earlier.
    pub fn suffix(bytes: Vec<u8>, before: usize) -> RequiredLiteral {
        RequiredLiteral {
            bytes,
            before,
            after: 0,
        }
    }
}

/// Per-component result of [`prefilter_analysis`].
#[derive(Debug, Clone)]
pub struct ComponentPrefilter {
    /// Dense component label, as assigned by [`component_labels`].
    pub component: usize,
    /// Smallest state id in the component (diagnostic anchor).
    pub first_state: StateId,
    /// States in the component.
    pub states: usize,
    /// Longest start-rooted path in states — the match-span bound — when
    /// the component is acyclic from its starts.
    pub window: Option<usize>,
    /// Whether any reachable element reports. A component that never
    /// reports needs no scanning at all.
    pub reporting: bool,
    /// One required factor per reachable report state (deduplicated by
    /// bytes, geometry merged conservatively); `None` when the component
    /// is not prefilterable. Empty for non-reporting components (nothing
    /// to find).
    pub literals: Option<Vec<RequiredLiteral>>,
    /// Why `literals` is `None`.
    pub block: Option<PrefilterBlock>,
    /// For [`PrefilterBlock::WeakLiteral`]: the first report state whose
    /// required factor fell short, and that factor's length.
    pub weak: Option<(StateId, usize)>,
}

impl ComponentPrefilter {
    /// Whether a literal prefilter can stand in for full simulation of
    /// this component.
    pub fn is_prefilterable(&self) -> bool {
        self.literals.is_some()
    }
}

/// Required-literal prefilter analysis, per weakly connected component.
///
/// For every reachable report state `r` of a counter-free, unanchored,
/// acyclic-from-starts component, finds a **required factor**: a run of
/// consecutive singleton-class states every accepting path for `r` must
/// traverse. Candidates are the *dominators* of `r` (states on every
/// start-rooted path to `r`); a dominator whose only report-co-reachable
/// successor is the next dominator forces every path to consume the two
/// bytes back to back, so maximal such runs are factors every match
/// contains. The factor need not end at the match offset: each
/// [`RequiredLiteral`] carries `before`/`after` bounds locating the
/// match span around an occurrence, so trailing wildcards or bounded
/// jumps after the forced bytes no longer disqualify a component (the
/// dominant pattern shape in malware-signature suites).
///
/// A component qualifies only when *all* of its reachable report states
/// yield a factor of at least [`MIN_PREFILTER_LITERAL`] bytes
/// (truncated to the last [`MAX_PREFILTER_LITERAL`]); otherwise some
/// matches would escape the filter and it falls back to full simulation.
pub fn prefilter_analysis(a: &Automaton) -> Vec<ComponentPrefilter> {
    let labels = component_labels(a);
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    let reachable = reachable_from_starts(a);
    let windows = component_windows(a, &labels, ncomp);
    let preds = a.predecessors();

    let mut first_state = vec![usize::MAX; ncomp];
    let mut states = vec![0usize; ncomp];
    let mut has_counter = vec![false; ncomp];
    let mut has_sod = vec![false; ncomp];
    let mut reporting = vec![false; ncomp];
    for (id, e) in a.iter() {
        let c = labels[id.index()];
        first_state[c] = first_state[c].min(id.index());
        states[c] += 1;
        if e.is_counter() {
            has_counter[c] = true;
        }
        if e.start_kind() == crate::element::StartKind::StartOfData {
            has_sod[c] = true;
        }
        if e.report.is_some() && reachable[id.index()] {
            reporting[c] = true;
        }
    }

    let mut out = Vec::with_capacity(ncomp);
    for c in 0..ncomp {
        let block = if !reporting[c] {
            // Nothing observable can ever happen: prefilterable with an
            // empty literal set (the component is simply dropped).
            None
        } else if has_counter[c] {
            Some(PrefilterBlock::Counter)
        } else if has_sod[c] {
            Some(PrefilterBlock::StartOfData)
        } else if windows[c].is_none() {
            Some(PrefilterBlock::Cycle)
        } else {
            None
        };
        out.push(ComponentPrefilter {
            component: c,
            first_state: StateId::new(first_state[c]),
            states: states[c],
            window: windows[c],
            reporting: reporting[c],
            literals: if block.is_none() {
                Some(Vec::new())
            } else {
                None
            },
            block,
            weak: None,
        });
    }

    // Literal extraction for the surviving reporting components.
    let co = coreachable_to_report(a);
    let mut comp_states: Vec<Vec<StateId>> = vec![Vec::new(); ncomp];
    for (id, _) in a.iter() {
        let c = labels[id.index()];
        if reachable[id.index()] && reporting[c] && out[c].literals.is_some() {
            comp_states[c].push(id);
        }
    }
    let mut topo_pos = vec![u32::MAX; a.state_count()];
    for cp in &mut out {
        let members = &comp_states[cp.component];
        if members.is_empty() {
            continue;
        }
        let window = cp.window.unwrap_or(0);
        match component_literals(a, &preds, &reachable, &co, members, window, &mut topo_pos) {
            Ok(lits) => {
                cp.literals = Some(lits);
            }
            Err((state, len)) => {
                cp.literals = None;
                cp.block = Some(PrefilterBlock::WeakLiteral);
                cp.weak = Some((state, len));
            }
        }
    }
    out
}

/// States from which a reporting state is reachable (backward closure
/// over activation and reset edges).
fn coreachable_to_report(a: &Automaton) -> Vec<bool> {
    let preds = a.predecessors();
    let mut co = vec![false; a.state_count()];
    let mut stack = Vec::new();
    for (id, e) in a.iter() {
        if e.report.is_some() {
            co[id.index()] = true;
            stack.push(id);
        }
    }
    while let Some(v) = stack.pop() {
        for &(p, _) in &preds[v.index()] {
            if !co[p.index()] {
                co[p.index()] = true;
                stack.push(p);
            }
        }
    }
    co
}

/// Components larger than this skip the dominator computation (quadratic
/// in bits) and fall back to the cheaper suffix-spine walk with a
/// conservative window-wide `before`.
const DOMINATOR_STATE_CAP: usize = 4096;

/// Extracts one [`RequiredLiteral`] per reachable report state of a
/// qualifying component (`members` = its reachable states, in id order),
/// deduplicated by bytes with geometry merged conservatively. Errors
/// with the first report state whose best factor is shorter than
/// [`MIN_PREFILTER_LITERAL`] (and that factor's length).
fn component_literals(
    a: &Automaton,
    preds: &[Vec<(StateId, crate::element::Port)>],
    reachable: &[bool],
    co: &[bool],
    members: &[StateId],
    window: usize,
    topo_pos: &mut [u32],
) -> Result<Vec<RequiredLiteral>, (StateId, usize)> {
    let mut lits: Vec<RequiredLiteral> = Vec::new();
    let m = members.len();
    if m > DOMINATOR_STATE_CAP {
        for &r in members {
            if a.element(r).report.is_none() {
                continue;
            }
            let bytes = required_suffix_literal(a, preds, reachable, r);
            if bytes.len() < MIN_PREFILTER_LITERAL {
                return Err((r, bytes.len()));
            }
            let before = window.saturating_sub(bytes.len());
            lits.push(RequiredLiteral::suffix(bytes, before));
        }
        dedup_literals(&mut lits);
        return Ok(lits);
    }

    // Topological order of the component's reachable subgraph (a DAG:
    // the component is acyclic from its starts and every member is
    // start-reachable). DFS post-order, reversed.
    let mut order: Vec<StateId> = Vec::with_capacity(m);
    {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        let mut color = vec![WHITE; m];
        // Temporarily index members for the DFS colors.
        for (i, &s) in members.iter().enumerate() {
            topo_pos[s.index()] = i as u32;
        }
        let mut stack: Vec<(StateId, usize)> = Vec::new();
        for &s in members {
            if a.element(s).start_kind() == crate::element::StartKind::None
                || color[topo_pos[s.index()] as usize] != WHITE
            {
                continue;
            }
            color[topo_pos[s.index()] as usize] = GRAY;
            stack.push((s, 0));
            while let Some(frame) = stack.last_mut() {
                let (v, ei) = *frame;
                let succs = a.successors(v);
                if ei < succs.len() {
                    frame.1 += 1;
                    let t = succs[ei].to;
                    let ti = topo_pos[t.index()] as usize;
                    if color[ti] == WHITE {
                        color[ti] = GRAY;
                        stack.push((t, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        order.reverse();
    }
    debug_assert_eq!(order.len(), m);
    for (i, &s) in order.iter().enumerate() {
        topo_pos[s.index()] = i as u32;
    }

    // Dominators of every state, as bitsets over topo positions:
    // dom(v) = {v} ∪ ⋂ dom(pred). A start state begins paths itself, so
    // nothing before it is required and its set is just {v}.
    let words = m.div_ceil(64);
    let mut doms = vec![0u64; m * words];
    let mut scratch = vec![0u64; words];
    for (i, &v) in order.iter().enumerate() {
        let is_start = a.element(v).start_kind() != crate::element::StartKind::None;
        if is_start {
            scratch.fill(0);
        } else {
            scratch.fill(!0);
            for &(p, _) in &preds[v.index()] {
                if !reachable[p.index()] {
                    continue;
                }
                let pi = topo_pos[p.index()] as usize;
                let pd = &doms[pi * words..(pi + 1) * words];
                for (s, d) in scratch.iter_mut().zip(pd) {
                    *s &= d;
                }
            }
        }
        scratch[i / 64] |= 1u64 << (i % 64);
        doms[i * words..(i + 1) * words].copy_from_slice(&scratch);
    }

    // Longest start-rooted path to each state (states, inclusive), and
    // longest path from each state to a report it co-reaches (states
    // strictly after it, report inclusive; MAX = reaches none).
    let mut lp_to = vec![0usize; m];
    for (i, &v) in order.iter().enumerate() {
        let mut best = 0usize;
        for &(p, _) in &preds[v.index()] {
            if reachable[p.index()] {
                best = best.max(lp_to[topo_pos[p.index()] as usize]);
            }
        }
        lp_to[i] = best + 1;
    }
    let mut rep_dist = vec![usize::MAX; m];
    for (i, &v) in order.iter().enumerate().rev() {
        let mut best = if a.element(v).report.is_some() {
            Some(0usize)
        } else {
            None
        };
        for e in a.successors(v) {
            let si = topo_pos[e.to.index()] as usize;
            if rep_dist[si] != usize::MAX {
                best = Some(best.unwrap_or(0).max(1 + rep_dist[si]));
            }
        }
        if let Some(b) = best {
            rep_dist[i] = b;
        }
    }

    // The byte of each singleton-class state, and its unique
    // report-co-reachable successor (the forced-adjacency link).
    let byte_of: Vec<Option<u8>> = order
        .iter()
        .map(|&v| {
            let class = a.element(v).class()?;
            if class.len() == 1 {
                class.iter().next()
            } else {
                None
            }
        })
        .collect();
    let forced_next: Vec<Option<StateId>> = order
        .iter()
        .map(|&v| {
            let mut unique = None;
            for e in a.successors(v) {
                if !co[e.to.index()] || !reachable[e.to.index()] {
                    continue;
                }
                if unique.is_some() && unique != Some(e.to) {
                    return None;
                }
                unique = Some(e.to);
            }
            unique
        })
        .collect();

    // Per report state: walk its dominators in topo order (they form a
    // chain) and keep the best run of forced-adjacent singleton states.
    let mut run: Vec<usize> = Vec::new();
    for &r in members {
        if a.element(r).report.is_none() {
            continue;
        }
        let ri = topo_pos[r.index()] as usize;
        let dom = &doms[ri * words..(ri + 1) * words];
        let mut best: Option<Vec<usize>> = None;
        run.clear();
        for i in 0..m {
            if dom[i / 64] & (1u64 << (i % 64)) == 0 {
                continue;
            }
            if byte_of[i].is_none() {
                run.clear();
                continue;
            }
            let extends = run
                .last()
                .is_some_and(|&p| forced_next[p] == Some(order[i]));
            if !extends {
                run.clear();
            }
            run.push(i);
            let capped = run.len().min(MAX_PREFILTER_LITERAL);
            // `>=` keeps the latest equally-long run: a later factor has
            // a smaller `after`, so fewer spans extend past a feed.
            if best.as_ref().is_none_or(|b| capped >= b.len()) {
                best = Some(run[run.len() - capped..].to_vec());
            }
        }
        let best_len = best.as_ref().map_or(0, |b| b.len());
        let Some(chain) = best.filter(|b| b.len() >= MIN_PREFILTER_LITERAL) else {
            return Err((r, best_len));
        };
        let first = chain[0];
        let last = chain[chain.len() - 1];
        let bytes: Vec<u8> = chain.iter().map(|&i| byte_of[i].unwrap_or(0)).collect();
        let before = lp_to[first] - 1;
        let after = rep_dist[last];
        debug_assert_ne!(after, usize::MAX);
        debug_assert!(before + bytes.len() + after <= window);
        lits.push(RequiredLiteral {
            bytes,
            before,
            after,
        });
    }
    dedup_literals(&mut lits);
    Ok(lits)
}

/// Sorts, merges same-byte literals (geometry maxed), and dedups.
fn dedup_literals(lits: &mut Vec<RequiredLiteral>) {
    lits.sort_unstable();
    lits.dedup_by(|b, a| {
        if a.bytes == b.bytes {
            a.before = a.before.max(b.before);
            a.after = a.after.max(b.after);
            true
        } else {
            false
        }
    });
}

/// The bytes every accepting path must consume immediately before
/// reporting at `r` (last byte = the match offset), capped at
/// [`MAX_PREFILTER_LITERAL`]. Empty when `r`'s own class is not a
/// single byte.
fn required_suffix_literal(
    a: &Automaton,
    preds: &[Vec<(StateId, crate::element::Port)>],
    reachable: &[bool],
    r: StateId,
) -> Vec<u8> {
    let mut lit = Vec::new();
    let mut cur = r;
    loop {
        let e = a.element(cur);
        let Some(class) = e.class() else { break };
        if class.len() != 1 {
            break;
        }
        let Some(b) = class.iter().next() else { break };
        lit.push(b);
        // A start state begins paths itself: bytes before it are not
        // required. (The walk stays inside the reachable subgraph, which
        // is acyclic for the components this is called on, so it
        // terminates.)
        if lit.len() == MAX_PREFILTER_LITERAL || e.start_kind() != crate::element::StartKind::None {
            break;
        }
        let mut unique = None;
        for &(p, _) in &preds[cur.index()] {
            if !reachable[p.index()] {
                continue;
            }
            if unique.is_some() {
                unique = None;
                break;
            }
            unique = Some(p);
        }
        match unique {
            Some(p) if p != cur => cur = p,
            _ => break,
        }
    }
    lit.reverse();
    lit
}

/// Per-component variant of [`longest_path_from_starts`]: a cycle in one
/// component yields `None` for that component only.
fn component_windows(a: &Automaton, labels: &[usize], ncomp: usize) -> Vec<Option<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = a.state_count();
    let mut color = vec![WHITE; n];
    let mut depth = vec![0usize; n];
    let mut cyclic = vec![false; ncomp];
    let mut best = vec![0usize; ncomp];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in a.start_states() {
        let s = start.index();
        if color[s] == BLACK {
            best[labels[s]] = best[labels[s]].max(depth[s]);
            continue;
        }
        color[s] = GRAY;
        stack.push((s, 0));
        while let Some(frame) = stack.last_mut() {
            let (v, ei) = *frame;
            let succs = a.successors(StateId::new(v));
            if ei < succs.len() {
                frame.1 += 1;
                let t = succs[ei].to.index();
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    // Back edge: mark the component cyclic and keep
                    // going — other components still need their bound.
                    GRAY => cyclic[labels[t]] = true,
                    _ => {}
                }
            } else {
                depth[v] = 1 + succs.iter().map(|e| depth[e.to.index()]).max().unwrap_or(0);
                color[v] = BLACK;
                stack.pop();
            }
        }
        best[labels[s]] = best[labels[s]].max(depth[s]);
    }
    (0..ncomp)
        .map(|c| if cyclic[c] { None } else { Some(best[c]) })
        .collect()
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra as u32;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::element::StartKind;
    use crate::symbol::SymbolClass;

    fn chain(len: usize) -> Automaton {
        let mut a = Automaton::new();
        a.add_chain(
            &vec![SymbolClass::from_byte(b'a'); len],
            StartKind::AllInput,
        );
        a
    }

    #[test]
    fn stats_of_empty_automaton() {
        let s = AutomatonStats::compute(&Automaton::new());
        assert_eq!(s.states, 0);
        assert_eq!(s.subgraphs, 0);
        assert_eq!(s.avg_subgraph_size, 0.0);
    }

    #[test]
    fn stats_of_uniform_components() {
        let mut a = chain(5);
        for _ in 0..3 {
            a.append(&chain(5));
        }
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.states, 20);
        assert_eq!(s.edges, 16);
        assert_eq!(s.subgraphs, 4);
        assert_eq!(s.avg_subgraph_size, 5.0);
        assert_eq!(s.stddev_subgraph_size, 0.0);
        assert!((s.edges_per_node - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_of_mixed_components() {
        let mut a = chain(2);
        a.append(&chain(6));
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.subgraphs, 2);
        assert_eq!(s.avg_subgraph_size, 4.0);
        assert_eq!(s.stddev_subgraph_size, 2.0);
    }

    #[test]
    fn component_labels_are_dense() {
        let mut a = chain(2);
        a.append(&chain(3));
        let labels = component_labels(&a);
        assert_eq!(labels, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn longest_path_of_chains_is_longest_chain() {
        let mut a = chain(3);
        a.append(&chain(7));
        a.append(&chain(2));
        assert_eq!(longest_path_from_starts(&a), Some(7));
    }

    #[test]
    fn longest_path_sees_through_diamonds() {
        // start -> {b, c}; b -> d; c -> e -> d: longest path is 4 states.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let b = a.add_ste(SymbolClass::FULL, StartKind::None);
        let c = a.add_ste(SymbolClass::FULL, StartKind::None);
        let d = a.add_ste(SymbolClass::FULL, StartKind::None);
        let e = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(s, b);
        a.add_edge(s, c);
        a.add_edge(b, d);
        a.add_edge(c, e);
        a.add_edge(e, d);
        assert_eq!(longest_path_from_starts(&a), Some(4));
    }

    #[test]
    fn reachable_cycle_is_unbounded() {
        let mut a = chain(2);
        a.add_edge(StateId::new(1), StateId::new(0));
        assert_eq!(longest_path_from_starts(&a), None);
    }

    #[test]
    fn self_loop_is_unbounded() {
        let mut a = chain(1);
        a.add_edge(StateId::new(0), StateId::new(0));
        assert_eq!(longest_path_from_starts(&a), None);
    }

    #[test]
    fn unreachable_cycle_is_ignored() {
        let mut a = chain(4);
        // An orphan two-cycle no start state reaches.
        let x = a.add_ste(SymbolClass::FULL, StartKind::None);
        let y = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(x, y);
        a.add_edge(y, x);
        assert_eq!(longest_path_from_starts(&a), Some(4));
    }

    #[test]
    fn empty_automaton_has_zero_path() {
        assert_eq!(longest_path_from_starts(&Automaton::new()), Some(0));
    }

    fn word(a: &mut Automaton, w: &[u8], code: u32) {
        let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code);
    }

    #[test]
    fn literal_chain_is_fully_extracted() {
        let mut a = Automaton::new();
        word(&mut a, b"admin", 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf.len(), 1);
        assert!(pf[0].is_prefilterable());
        assert_eq!(pf[0].window, Some(5));
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral::suffix(b"admin".to_vec(), 0)])
        );
    }

    #[test]
    fn long_literals_keep_their_suffix() {
        let mut a = Automaton::new();
        word(&mut a, b"0123456789abcdef", 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral::suffix(b"89abcdef".to_vec(), 8)])
        );
        assert_eq!(pf[0].window, Some(16));
    }

    #[test]
    fn fanout_stops_the_walk_at_the_join() {
        // Two prefixes share a reporting suffix "xy": every path still
        // ends in "xy", but nothing longer is required.
        let mut a = Automaton::new();
        let p1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let p2 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::AllInput);
        let x = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(p1, x);
        a.add_edge(p2, x);
        a.add_edge(x, y);
        a.set_report(y, 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral::suffix(b"xy".to_vec(), 1)])
        );
    }

    #[test]
    fn wide_class_at_report_blocks_prefilter() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_range(b'0', b'9'), StartKind::None);
        a.add_edge(s, t);
        a.set_report(t, 0);
        let pf = prefilter_analysis(&a);
        assert!(!pf[0].is_prefilterable());
        assert_eq!(pf[0].block, Some(PrefilterBlock::WeakLiteral));
    }

    #[test]
    fn trailing_wildcards_no_longer_block() {
        // "ab" followed by two wide states, report at the end: the
        // suffix at the report is weak, but "ab" is a required factor
        // with `after = 2`.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let b = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let w1 = a.add_ste(SymbolClass::FULL, StartKind::None);
        let w2 = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(s, b);
        a.add_edge(b, w1);
        a.add_edge(w1, w2);
        a.set_report(w2, 0);
        let pf = prefilter_analysis(&a);
        assert!(pf[0].is_prefilterable());
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral {
                bytes: b"ab".to_vec(),
                before: 0,
                after: 2,
            }])
        );
    }

    #[test]
    fn interior_factor_found_behind_a_fanout() {
        // a → {x|y} → b → c → wide(report): neither the prefix walk from
        // the start (breaks at the fanout) nor the suffix walk from the
        // report (breaks at the wide class) sees "bc"; the dominator
        // chain does.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let x = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        let b = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
        let c = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
        let w = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(s, x);
        a.add_edge(s, y);
        a.add_edge(x, b);
        a.add_edge(y, b);
        a.add_edge(b, c);
        a.add_edge(c, w);
        a.set_report(w, 0);
        let pf = prefilter_analysis(&a);
        assert!(pf[0].is_prefilterable());
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral {
                bytes: b"bc".to_vec(),
                before: 2,
                after: 1,
            }])
        );
    }

    #[test]
    fn later_factor_wins_ties() {
        // Two 2-byte runs separated by a wide state; the later one (at
        // the report) is kept, minimizing the forward span.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'p'), StartKind::AllInput);
        let q = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::None);
        let w = a.add_ste(SymbolClass::FULL, StartKind::None);
        let u = a.add_ste(SymbolClass::from_byte(b'u'), StartKind::None);
        let v = a.add_ste(SymbolClass::from_byte(b'v'), StartKind::None);
        a.add_edge(s, q);
        a.add_edge(q, w);
        a.add_edge(w, u);
        a.add_edge(u, v);
        a.set_report(v, 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral {
                bytes: b"uv".to_vec(),
                before: 3,
                after: 0,
            }])
        );
    }

    #[test]
    fn counters_anchors_and_cycles_block() {
        use crate::element::CounterMode;
        let mut a = Automaton::new();
        // Component 0: counter.
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 0);
        // Component 1: start-of-data anchor.
        let mut b = Automaton::new();
        let (_, last) = b.add_chain(
            &[SymbolClass::from_byte(b'q'), SymbolClass::from_byte(b'r')],
            StartKind::StartOfData,
        );
        b.set_report(last, 1);
        a.append(&b);
        // Component 2: cycle.
        let mut d = Automaton::new();
        let (first, last) = d.add_chain(
            &[SymbolClass::from_byte(b'm'), SymbolClass::from_byte(b'n')],
            StartKind::AllInput,
        );
        d.add_edge(last, first);
        d.set_report(last, 2);
        a.append(&d);
        // Component 3: still fine.
        word(&mut a, b"ok_literal", 3);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf.len(), 4);
        assert_eq!(pf[0].block, Some(PrefilterBlock::Counter));
        assert_eq!(pf[1].block, Some(PrefilterBlock::StartOfData));
        assert_eq!(pf[2].block, Some(PrefilterBlock::Cycle));
        assert_eq!(pf[2].window, None);
        assert!(pf[3].is_prefilterable());
        assert_eq!(pf[3].window, Some(10));
    }

    #[test]
    fn cycle_in_one_component_spares_the_others() {
        let mut a = chain(3);
        a.add_edge(StateId::new(2), StateId::new(0));
        let mut b = Automaton::new();
        word(&mut b, b"hello", 9);
        a.append(&b);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf[0].window, None);
        assert_eq!(pf[1].window, Some(5));
    }

    #[test]
    fn reportless_components_are_droppable() {
        let a = chain(4); // no report state at all
        let pf = prefilter_analysis(&a);
        assert!(!pf[0].reporting);
        assert!(pf[0].is_prefilterable());
        assert_eq!(pf[0].literals, Some(vec![]));
    }

    #[test]
    fn duplicate_literals_are_deduped() {
        let mut a = Automaton::new();
        word(&mut a, b"same", 0);
        let mut b = Automaton::new();
        word(&mut b, b"same", 1);
        // Join them into one component via a shared tail state.
        a.append(&b);
        let bridge = a.add_ste(SymbolClass::from_byte(b'!'), StartKind::None);
        a.add_edge(StateId::new(3), bridge);
        a.add_edge(StateId::new(7), bridge);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf.len(), 1);
        assert_eq!(
            pf[0].literals,
            Some(vec![RequiredLiteral::suffix(b"same".to_vec(), 0)])
        );
    }

    #[test]
    fn report_state_that_is_also_start_yields_single_byte() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf[0].block, Some(PrefilterBlock::WeakLiteral));
    }

    #[test]
    fn component_profiles_flag_counters_and_anchors() {
        use crate::element::CounterMode;
        let mut a = chain(2);
        let mut b = Automaton::new();
        let s = b.add_ste(SymbolClass::from_byte(b'k'), StartKind::StartOfData);
        let c = b.add_counter(3, CounterMode::Latch);
        b.add_edge(s, c);
        a.append(&b);
        let profiles = component_profiles(&a);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].states, 2);
        assert!(!profiles[0].has_counter && !profiles[0].has_start_of_data);
        assert_eq!(profiles[1].first_state, StateId::new(2));
        assert!(profiles[1].has_counter && profiles[1].has_start_of_data);
    }

    #[test]
    fn reachability_ignores_orphans() {
        let mut a = chain(3);
        a.add_ste(SymbolClass::FULL, StartKind::None); // orphan
        let r = reachable_from_starts(&a);
        assert_eq!(r, vec![true, true, true, false]);
    }
}

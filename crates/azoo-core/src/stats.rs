//! Static statistics over automata, matching the columns of AutomataZoo's
//! Table I (states, edges, edges/node, subgraph count, average subgraph
//! size, standard deviation).

use crate::automaton::{Automaton, StateId};

/// Static graph statistics for an automaton.
///
/// Produced by [`AutomatonStats::compute`]. "Subgraphs" are weakly connected
/// components — one per appended pattern/filter in a well-formed benchmark.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, AutomatonStats, StartKind, SymbolClass};
///
/// let mut a = Automaton::new();
/// a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
/// a.add_chain(&[SymbolClass::from_byte(b'y'); 2], StartKind::AllInput);
/// let stats = AutomatonStats::compute(&a);
/// assert_eq!(stats.states, 6);
/// assert_eq!(stats.subgraphs, 2);
/// assert_eq!(stats.avg_subgraph_size, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonStats {
    /// Total element count.
    pub states: usize,
    /// Total edge count.
    pub edges: usize,
    /// Edges per node.
    pub edges_per_node: f64,
    /// Number of weakly connected components.
    pub subgraphs: usize,
    /// Mean component size in states.
    pub avg_subgraph_size: f64,
    /// Population standard deviation of component sizes.
    pub stddev_subgraph_size: f64,
}

impl AutomatonStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &Automaton) -> AutomatonStats {
        let states = a.state_count();
        let edges = a.edge_count();
        let sizes = component_sizes(a);
        let subgraphs = sizes.len();
        let avg = if subgraphs == 0 {
            0.0
        } else {
            states as f64 / subgraphs as f64
        };
        let var = if subgraphs == 0 {
            0.0
        } else {
            sizes
                .iter()
                .map(|&s| {
                    let d = s as f64 - avg;
                    d * d
                })
                .sum::<f64>()
                / subgraphs as f64
        };
        AutomatonStats {
            states,
            edges,
            edges_per_node: if states == 0 {
                0.0
            } else {
                edges as f64 / states as f64
            },
            subgraphs,
            avg_subgraph_size: avg,
            stddev_subgraph_size: var.sqrt(),
        }
    }
}

/// Sizes of the weakly connected components of `a`, via union-find.
pub fn component_sizes(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        *counts.entry(uf.find(i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Assigns each state its weakly-connected-component index (dense, ordered
/// by smallest member id).
pub fn component_labels(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut label_of_root = std::collections::HashMap::new();
    let mut labels = vec![0usize; n];
    let mut next = 0usize;
    for (i, label) in labels.iter_mut().enumerate() {
        let root = uf.find(i);
        *label = *label_of_root.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    labels
}

/// Ids of states reachable from any start state (forward closure over
/// activation and reset edges).
pub fn reachable_from_starts(a: &Automaton) -> Vec<bool> {
    let mut seen = vec![false; a.state_count()];
    let mut stack: Vec<StateId> = a.start_states();
    for s in &stack {
        seen[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for e in a.successors(s) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::StartKind;
    use crate::symbol::SymbolClass;

    fn chain(len: usize) -> Automaton {
        let mut a = Automaton::new();
        a.add_chain(
            &vec![SymbolClass::from_byte(b'a'); len],
            StartKind::AllInput,
        );
        a
    }

    #[test]
    fn stats_of_empty_automaton() {
        let s = AutomatonStats::compute(&Automaton::new());
        assert_eq!(s.states, 0);
        assert_eq!(s.subgraphs, 0);
        assert_eq!(s.avg_subgraph_size, 0.0);
    }

    #[test]
    fn stats_of_uniform_components() {
        let mut a = chain(5);
        for _ in 0..3 {
            a.append(&chain(5));
        }
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.states, 20);
        assert_eq!(s.edges, 16);
        assert_eq!(s.subgraphs, 4);
        assert_eq!(s.avg_subgraph_size, 5.0);
        assert_eq!(s.stddev_subgraph_size, 0.0);
        assert!((s.edges_per_node - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_of_mixed_components() {
        let mut a = chain(2);
        a.append(&chain(6));
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.subgraphs, 2);
        assert_eq!(s.avg_subgraph_size, 4.0);
        assert_eq!(s.stddev_subgraph_size, 2.0);
    }

    #[test]
    fn component_labels_are_dense() {
        let mut a = chain(2);
        a.append(&chain(3));
        let labels = component_labels(&a);
        assert_eq!(labels, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn reachability_ignores_orphans() {
        let mut a = chain(3);
        a.add_ste(SymbolClass::FULL, StartKind::None); // orphan
        let r = reachable_from_starts(&a);
        assert_eq!(r, vec![true, true, true, false]);
    }
}

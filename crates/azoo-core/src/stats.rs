//! Static statistics over automata, matching the columns of AutomataZoo's
//! Table I (states, edges, edges/node, subgraph count, average subgraph
//! size, standard deviation).

use crate::automaton::{Automaton, StateId};

/// Static graph statistics for an automaton.
///
/// Produced by [`AutomatonStats::compute`]. "Subgraphs" are weakly connected
/// components — one per appended pattern/filter in a well-formed benchmark.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, AutomatonStats, StartKind, SymbolClass};
///
/// let mut a = Automaton::new();
/// a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
/// a.add_chain(&[SymbolClass::from_byte(b'y'); 2], StartKind::AllInput);
/// let stats = AutomatonStats::compute(&a);
/// assert_eq!(stats.states, 6);
/// assert_eq!(stats.subgraphs, 2);
/// assert_eq!(stats.avg_subgraph_size, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonStats {
    /// Total element count.
    pub states: usize,
    /// Total edge count.
    pub edges: usize,
    /// Edges per node.
    pub edges_per_node: f64,
    /// Number of weakly connected components.
    pub subgraphs: usize,
    /// Mean component size in states.
    pub avg_subgraph_size: f64,
    /// Population standard deviation of component sizes.
    pub stddev_subgraph_size: f64,
}

impl AutomatonStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &Automaton) -> AutomatonStats {
        let states = a.state_count();
        let edges = a.edge_count();
        let sizes = component_sizes(a);
        let subgraphs = sizes.len();
        let avg = if subgraphs == 0 {
            0.0
        } else {
            states as f64 / subgraphs as f64
        };
        let var = if subgraphs == 0 {
            0.0
        } else {
            sizes
                .iter()
                .map(|&s| {
                    let d = s as f64 - avg;
                    d * d
                })
                .sum::<f64>()
                / subgraphs as f64
        };
        AutomatonStats {
            states,
            edges,
            edges_per_node: if states == 0 {
                0.0
            } else {
                edges as f64 / states as f64
            },
            subgraphs,
            avg_subgraph_size: avg,
            stddev_subgraph_size: var.sqrt(),
        }
    }
}

/// Sizes of the weakly connected components of `a`, via union-find.
pub fn component_sizes(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        *counts.entry(uf.find(i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Assigns each state its weakly-connected-component index (dense, ordered
/// by smallest member id).
pub fn component_labels(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut label_of_root = std::collections::HashMap::new();
    let mut labels = vec![0usize; n];
    let mut next = 0usize;
    for (i, label) in labels.iter_mut().enumerate() {
        let root = uf.find(i);
        *label = *label_of_root.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    labels
}

/// Ids of states reachable from any start state (forward closure over
/// activation and reset edges).
pub fn reachable_from_starts(a: &Automaton) -> Vec<bool> {
    let mut seen = vec![false; a.state_count()];
    let mut stack: Vec<StateId> = a.start_states();
    for s in &stack {
        seen[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for e in a.successors(s) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// Number of states on the longest simple activation path from any start
/// state, or `None` when a cycle is reachable from a start state (path
/// length unbounded).
///
/// This bounds how many input symbols a single match can span: each STE on
/// a path consumes one symbol, so a match ending at offset `p` began no
/// earlier than `p - (len - 1)`. Counter elements on a path consume no
/// symbol, so for automata with counters the bound is conservative (an
/// over-estimate), never an under-estimate. Engines use this as the
/// overlap window when splitting an input across chunk workers.
///
/// Both activation and reset edges are followed; states unreachable from
/// any start state are ignored (they can never become active).
pub fn longest_path_from_starts(a: &Automaton) -> Option<usize> {
    const WHITE: u8 = 0; // unvisited
    const GRAY: u8 = 1; // on the DFS stack
    const BLACK: u8 = 2; // finished, `depth` valid
    let mut color = vec![WHITE; a.state_count()];
    // Longest path (in states) starting at each finished node.
    let mut depth = vec![0usize; a.state_count()];
    let mut best = 0usize;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in a.start_states() {
        let s = start.index();
        if color[s] == BLACK {
            best = best.max(depth[s]);
            continue;
        }
        color[s] = GRAY;
        stack.push((s, 0));
        while let Some(frame) = stack.last_mut() {
            let (v, ei) = *frame;
            let succs = a.successors(StateId::new(v));
            if ei < succs.len() {
                frame.1 += 1;
                let t = succs[ei].to.index();
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    GRAY => return None, // back edge: reachable cycle
                    _ => {}
                }
            } else {
                // All successors finished (a gray successor would have
                // returned above), so their depths are final.
                depth[v] = 1 + succs.iter().map(|e| depth[e.to.index()]).max().unwrap_or(0);
                color[v] = BLACK;
                stack.pop();
            }
        }
        best = best.max(depth[s]);
    }
    Some(best)
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra as u32;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::element::StartKind;
    use crate::symbol::SymbolClass;

    fn chain(len: usize) -> Automaton {
        let mut a = Automaton::new();
        a.add_chain(
            &vec![SymbolClass::from_byte(b'a'); len],
            StartKind::AllInput,
        );
        a
    }

    #[test]
    fn stats_of_empty_automaton() {
        let s = AutomatonStats::compute(&Automaton::new());
        assert_eq!(s.states, 0);
        assert_eq!(s.subgraphs, 0);
        assert_eq!(s.avg_subgraph_size, 0.0);
    }

    #[test]
    fn stats_of_uniform_components() {
        let mut a = chain(5);
        for _ in 0..3 {
            a.append(&chain(5));
        }
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.states, 20);
        assert_eq!(s.edges, 16);
        assert_eq!(s.subgraphs, 4);
        assert_eq!(s.avg_subgraph_size, 5.0);
        assert_eq!(s.stddev_subgraph_size, 0.0);
        assert!((s.edges_per_node - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_of_mixed_components() {
        let mut a = chain(2);
        a.append(&chain(6));
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.subgraphs, 2);
        assert_eq!(s.avg_subgraph_size, 4.0);
        assert_eq!(s.stddev_subgraph_size, 2.0);
    }

    #[test]
    fn component_labels_are_dense() {
        let mut a = chain(2);
        a.append(&chain(3));
        let labels = component_labels(&a);
        assert_eq!(labels, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn longest_path_of_chains_is_longest_chain() {
        let mut a = chain(3);
        a.append(&chain(7));
        a.append(&chain(2));
        assert_eq!(longest_path_from_starts(&a), Some(7));
    }

    #[test]
    fn longest_path_sees_through_diamonds() {
        // start -> {b, c}; b -> d; c -> e -> d: longest path is 4 states.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let b = a.add_ste(SymbolClass::FULL, StartKind::None);
        let c = a.add_ste(SymbolClass::FULL, StartKind::None);
        let d = a.add_ste(SymbolClass::FULL, StartKind::None);
        let e = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(s, b);
        a.add_edge(s, c);
        a.add_edge(b, d);
        a.add_edge(c, e);
        a.add_edge(e, d);
        assert_eq!(longest_path_from_starts(&a), Some(4));
    }

    #[test]
    fn reachable_cycle_is_unbounded() {
        let mut a = chain(2);
        a.add_edge(StateId::new(1), StateId::new(0));
        assert_eq!(longest_path_from_starts(&a), None);
    }

    #[test]
    fn self_loop_is_unbounded() {
        let mut a = chain(1);
        a.add_edge(StateId::new(0), StateId::new(0));
        assert_eq!(longest_path_from_starts(&a), None);
    }

    #[test]
    fn unreachable_cycle_is_ignored() {
        let mut a = chain(4);
        // An orphan two-cycle no start state reaches.
        let x = a.add_ste(SymbolClass::FULL, StartKind::None);
        let y = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(x, y);
        a.add_edge(y, x);
        assert_eq!(longest_path_from_starts(&a), Some(4));
    }

    #[test]
    fn empty_automaton_has_zero_path() {
        assert_eq!(longest_path_from_starts(&Automaton::new()), Some(0));
    }

    #[test]
    fn reachability_ignores_orphans() {
        let mut a = chain(3);
        a.add_ste(SymbolClass::FULL, StartKind::None); // orphan
        let r = reachable_from_starts(&a);
        assert_eq!(r, vec![true, true, true, false]);
    }
}

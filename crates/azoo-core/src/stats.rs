//! Static statistics over automata, matching the columns of AutomataZoo's
//! Table I (states, edges, edges/node, subgraph count, average subgraph
//! size, standard deviation).

use crate::automaton::{Automaton, StateId};

/// Static graph statistics for an automaton.
///
/// Produced by [`AutomatonStats::compute`]. "Subgraphs" are weakly connected
/// components — one per appended pattern/filter in a well-formed benchmark.
///
/// # Example
///
/// ```
/// use azoo_core::{Automaton, AutomatonStats, StartKind, SymbolClass};
///
/// let mut a = Automaton::new();
/// a.add_chain(&[SymbolClass::from_byte(b'x'); 4], StartKind::AllInput);
/// a.add_chain(&[SymbolClass::from_byte(b'y'); 2], StartKind::AllInput);
/// let stats = AutomatonStats::compute(&a);
/// assert_eq!(stats.states, 6);
/// assert_eq!(stats.subgraphs, 2);
/// assert_eq!(stats.avg_subgraph_size, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonStats {
    /// Total element count.
    pub states: usize,
    /// Total edge count.
    pub edges: usize,
    /// Edges per node.
    pub edges_per_node: f64,
    /// Number of weakly connected components.
    pub subgraphs: usize,
    /// Mean component size in states.
    pub avg_subgraph_size: f64,
    /// Population standard deviation of component sizes.
    pub stddev_subgraph_size: f64,
}

impl AutomatonStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &Automaton) -> AutomatonStats {
        let states = a.state_count();
        let edges = a.edge_count();
        let sizes = component_sizes(a);
        let subgraphs = sizes.len();
        let avg = if subgraphs == 0 {
            0.0
        } else {
            states as f64 / subgraphs as f64
        };
        let var = if subgraphs == 0 {
            0.0
        } else {
            sizes
                .iter()
                .map(|&s| {
                    let d = s as f64 - avg;
                    d * d
                })
                .sum::<f64>()
                / subgraphs as f64
        };
        AutomatonStats {
            states,
            edges,
            edges_per_node: if states == 0 {
                0.0
            } else {
                edges as f64 / states as f64
            },
            subgraphs,
            avg_subgraph_size: avg,
            stddev_subgraph_size: var.sqrt(),
        }
    }
}

/// Sizes of the weakly connected components of `a`, via union-find.
pub fn component_sizes(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        *counts.entry(uf.find(i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Assigns each state its weakly-connected-component index (dense, ordered
/// by smallest member id).
pub fn component_labels(a: &Automaton) -> Vec<usize> {
    let n = a.state_count();
    let mut uf = UnionFind::new(n);
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            uf.union(id.index(), e.to.index());
        }
    }
    let mut label_of_root = std::collections::HashMap::new();
    let mut labels = vec![0usize; n];
    let mut next = 0usize;
    for (i, label) in labels.iter_mut().enumerate() {
        let root = uf.find(i);
        *label = *label_of_root.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    labels
}

/// Per-component structural profile: the facts reduction and lint
/// policies gate on (see `azoo-passes`' reduction refusal matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentProfile {
    /// Dense component label, as assigned by [`component_labels`].
    pub component: usize,
    /// Smallest state id in the component (diagnostic anchor).
    pub first_state: StateId,
    /// States in the component.
    pub states: usize,
    /// Whether the component contains a counter element.
    pub has_counter: bool,
    /// Whether the component contains a `StartOfData`-anchored STE.
    pub has_start_of_data: bool,
}

/// Profiles every weakly connected component of `a`, in label order.
pub fn component_profiles(a: &Automaton) -> Vec<ComponentProfile> {
    let labels = component_labels(a);
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut out: Vec<ComponentProfile> = (0..ncomp)
        .map(|c| ComponentProfile {
            component: c,
            first_state: StateId::new(0), // overwritten by the first member
            states: 0,
            has_counter: false,
            has_start_of_data: false,
        })
        .collect();
    for (id, e) in a.iter() {
        let p = &mut out[labels[id.index()]];
        if p.states == 0 {
            p.first_state = id;
        }
        p.states += 1;
        p.has_counter |= e.is_counter();
        p.has_start_of_data |= e.start_kind() == crate::element::StartKind::StartOfData;
    }
    out
}

/// Ids of states reachable from any start state (forward closure over
/// activation and reset edges).
pub fn reachable_from_starts(a: &Automaton) -> Vec<bool> {
    let mut seen = vec![false; a.state_count()];
    let mut stack: Vec<StateId> = a.start_states();
    for s in &stack {
        seen[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for e in a.successors(s) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
    }
    seen
}

/// Number of states on the longest simple activation path from any start
/// state, or `None` when a cycle is reachable from a start state (path
/// length unbounded).
///
/// This bounds how many input symbols a single match can span: each STE on
/// a path consumes one symbol, so a match ending at offset `p` began no
/// earlier than `p - (len - 1)`. Counter elements on a path consume no
/// symbol, so for automata with counters the bound is conservative (an
/// over-estimate), never an under-estimate. Engines use this as the
/// overlap window when splitting an input across chunk workers.
///
/// Both activation and reset edges are followed; states unreachable from
/// any start state are ignored (they can never become active).
pub fn longest_path_from_starts(a: &Automaton) -> Option<usize> {
    const WHITE: u8 = 0; // unvisited
    const GRAY: u8 = 1; // on the DFS stack
    const BLACK: u8 = 2; // finished, `depth` valid
    let mut color = vec![WHITE; a.state_count()];
    // Longest path (in states) starting at each finished node.
    let mut depth = vec![0usize; a.state_count()];
    let mut best = 0usize;
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in a.start_states() {
        let s = start.index();
        if color[s] == BLACK {
            best = best.max(depth[s]);
            continue;
        }
        color[s] = GRAY;
        stack.push((s, 0));
        while let Some(frame) = stack.last_mut() {
            let (v, ei) = *frame;
            let succs = a.successors(StateId::new(v));
            if ei < succs.len() {
                frame.1 += 1;
                let t = succs[ei].to.index();
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    GRAY => return None, // back edge: reachable cycle
                    _ => {}
                }
            } else {
                // All successors finished (a gray successor would have
                // returned above), so their depths are final.
                depth[v] = 1 + succs.iter().map(|e| depth[e.to.index()]).max().unwrap_or(0);
                color[v] = BLACK;
                stack.pop();
            }
        }
        best = best.max(depth[s]);
    }
    Some(best)
}

/// Shortest required literal worth prefiltering on. One-byte literals hit
/// on random input every ~256 symbols, which costs more in window
/// re-simulation than full scanning saves.
pub const MIN_PREFILTER_LITERAL: usize = 2;

/// Longest literal suffix extracted per report state. Selectivity gains
/// flatten out quickly with length, while the literal matcher's memory is
/// proportional to total literal bytes.
pub const MAX_PREFILTER_LITERAL: usize = 8;

/// Why a component is excluded from literal prefiltering and must be
/// scanned by full simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterBlock {
    /// Contains a counter element, whose state depends on the entire
    /// input prefix — no bounded window reproduces it.
    Counter,
    /// Contains a `StartOfData` anchor; a cold-started window would
    /// wrongly re-arm the anchor mid-stream.
    StartOfData,
    /// A cycle is reachable from a start state, so matches have no
    /// finite span and no window bound exists.
    Cycle,
    /// Some reachable report state has no required literal of at least
    /// [`MIN_PREFILTER_LITERAL`] bytes ending at it.
    WeakLiteral,
}

impl std::fmt::Display for PrefilterBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PrefilterBlock::Counter => "counter element",
            PrefilterBlock::StartOfData => "start-of-data anchor",
            PrefilterBlock::Cycle => "cycle reachable from start",
            PrefilterBlock::WeakLiteral => "no required literal",
        };
        f.write_str(s)
    }
}

/// Per-component result of [`prefilter_analysis`].
#[derive(Debug, Clone)]
pub struct ComponentPrefilter {
    /// Dense component label, as assigned by [`component_labels`].
    pub component: usize,
    /// Smallest state id in the component (diagnostic anchor).
    pub first_state: StateId,
    /// States in the component.
    pub states: usize,
    /// Longest start-rooted path in states — the match-span bound — when
    /// the component is acyclic from its starts.
    pub window: Option<usize>,
    /// Whether any reachable element reports. A component that never
    /// reports needs no scanning at all.
    pub reporting: bool,
    /// One required literal per reachable report state (deduplicated),
    /// each ending exactly at the match offset; `None` when the
    /// component is not prefilterable. Empty for non-reporting
    /// components (nothing to find).
    pub literals: Option<Vec<Vec<u8>>>,
    /// Why `literals` is `None`.
    pub block: Option<PrefilterBlock>,
    /// For [`PrefilterBlock::WeakLiteral`]: the first report state whose
    /// required factor fell short, and that factor's length.
    pub weak: Option<(StateId, usize)>,
}

impl ComponentPrefilter {
    /// Whether a literal prefilter can stand in for full simulation of
    /// this component.
    pub fn is_prefilterable(&self) -> bool {
        self.literals.is_some()
    }
}

/// Required-literal prefilter analysis, per weakly connected component.
///
/// For every reachable report state `r` of a counter-free, unanchored,
/// acyclic-from-starts component, walks backwards from `r` through
/// singleton-class states with a unique reachable predecessor. Every
/// accepting path for `r` must traverse that chain immediately before
/// reaching `r` (each step's state either begins paths itself — a start
/// state — or forces all paths through its sole predecessor), so the
/// collected bytes form a **required factor** of every match, ending at
/// the match offset. A match reported at offset `p` therefore implies a
/// literal occurrence ending at `p`, and the component only needs to be
/// simulated inside a `window`-bounded region before each occurrence.
///
/// A component qualifies only when *all* of its reachable report states
/// yield a literal of at least [`MIN_PREFILTER_LITERAL`] bytes
/// (truncated to the last [`MAX_PREFILTER_LITERAL`]); otherwise some
/// matches would escape the filter and it falls back to full simulation.
pub fn prefilter_analysis(a: &Automaton) -> Vec<ComponentPrefilter> {
    let labels = component_labels(a);
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    let reachable = reachable_from_starts(a);
    let windows = component_windows(a, &labels, ncomp);
    let preds = a.predecessors();

    let mut first_state = vec![usize::MAX; ncomp];
    let mut states = vec![0usize; ncomp];
    let mut has_counter = vec![false; ncomp];
    let mut has_sod = vec![false; ncomp];
    let mut reporting = vec![false; ncomp];
    for (id, e) in a.iter() {
        let c = labels[id.index()];
        first_state[c] = first_state[c].min(id.index());
        states[c] += 1;
        if e.is_counter() {
            has_counter[c] = true;
        }
        if e.start_kind() == crate::element::StartKind::StartOfData {
            has_sod[c] = true;
        }
        if e.report.is_some() && reachable[id.index()] {
            reporting[c] = true;
        }
    }

    let mut out = Vec::with_capacity(ncomp);
    for c in 0..ncomp {
        let block = if !reporting[c] {
            // Nothing observable can ever happen: prefilterable with an
            // empty literal set (the component is simply dropped).
            None
        } else if has_counter[c] {
            Some(PrefilterBlock::Counter)
        } else if has_sod[c] {
            Some(PrefilterBlock::StartOfData)
        } else if windows[c].is_none() {
            Some(PrefilterBlock::Cycle)
        } else {
            None
        };
        out.push(ComponentPrefilter {
            component: c,
            first_state: StateId::new(first_state[c]),
            states: states[c],
            window: windows[c],
            reporting: reporting[c],
            literals: if block.is_none() {
                Some(Vec::new())
            } else {
                None
            },
            block,
            weak: None,
        });
    }

    // Literal extraction for the surviving reporting components.
    for (id, e) in a.iter() {
        let c = labels[id.index()];
        if e.report.is_none() || !reachable[id.index()] || !reporting[c] {
            continue;
        }
        let Some(lits) = out[c].literals.as_mut() else {
            continue;
        };
        let lit = required_suffix_literal(a, &preds, &reachable, id);
        if lit.len() < MIN_PREFILTER_LITERAL {
            out[c].literals = None;
            out[c].block = Some(PrefilterBlock::WeakLiteral);
            out[c].weak = Some((id, lit.len()));
        } else {
            lits.push(lit);
        }
    }
    for cp in &mut out {
        if let Some(lits) = cp.literals.as_mut() {
            lits.sort_unstable();
            lits.dedup();
        }
    }
    out
}

/// The bytes every accepting path must consume immediately before
/// reporting at `r` (last byte = the match offset), capped at
/// [`MAX_PREFILTER_LITERAL`]. Empty when `r`'s own class is not a
/// single byte.
fn required_suffix_literal(
    a: &Automaton,
    preds: &[Vec<(StateId, crate::element::Port)>],
    reachable: &[bool],
    r: StateId,
) -> Vec<u8> {
    let mut lit = Vec::new();
    let mut cur = r;
    loop {
        let e = a.element(cur);
        let Some(class) = e.class() else { break };
        if class.len() != 1 {
            break;
        }
        let Some(b) = class.iter().next() else { break };
        lit.push(b);
        // A start state begins paths itself: bytes before it are not
        // required. (The walk stays inside the reachable subgraph, which
        // is acyclic for the components this is called on, so it
        // terminates.)
        if lit.len() == MAX_PREFILTER_LITERAL || e.start_kind() != crate::element::StartKind::None {
            break;
        }
        let mut unique = None;
        for &(p, _) in &preds[cur.index()] {
            if !reachable[p.index()] {
                continue;
            }
            if unique.is_some() {
                unique = None;
                break;
            }
            unique = Some(p);
        }
        match unique {
            Some(p) if p != cur => cur = p,
            _ => break,
        }
    }
    lit.reverse();
    lit
}

/// Per-component variant of [`longest_path_from_starts`]: a cycle in one
/// component yields `None` for that component only.
fn component_windows(a: &Automaton, labels: &[usize], ncomp: usize) -> Vec<Option<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = a.state_count();
    let mut color = vec![WHITE; n];
    let mut depth = vec![0usize; n];
    let mut cyclic = vec![false; ncomp];
    let mut best = vec![0usize; ncomp];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in a.start_states() {
        let s = start.index();
        if color[s] == BLACK {
            best[labels[s]] = best[labels[s]].max(depth[s]);
            continue;
        }
        color[s] = GRAY;
        stack.push((s, 0));
        while let Some(frame) = stack.last_mut() {
            let (v, ei) = *frame;
            let succs = a.successors(StateId::new(v));
            if ei < succs.len() {
                frame.1 += 1;
                let t = succs[ei].to.index();
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    // Back edge: mark the component cyclic and keep
                    // going — other components still need their bound.
                    GRAY => cyclic[labels[t]] = true,
                    _ => {}
                }
            } else {
                depth[v] = 1 + succs.iter().map(|e| depth[e.to.index()]).max().unwrap_or(0);
                color[v] = BLACK;
                stack.pop();
            }
        }
        best[labels[s]] = best[labels[s]].max(depth[s]);
    }
    (0..ncomp)
        .map(|c| if cyclic[c] { None } else { Some(best[c]) })
        .collect()
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra as u32;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::element::StartKind;
    use crate::symbol::SymbolClass;

    fn chain(len: usize) -> Automaton {
        let mut a = Automaton::new();
        a.add_chain(
            &vec![SymbolClass::from_byte(b'a'); len],
            StartKind::AllInput,
        );
        a
    }

    #[test]
    fn stats_of_empty_automaton() {
        let s = AutomatonStats::compute(&Automaton::new());
        assert_eq!(s.states, 0);
        assert_eq!(s.subgraphs, 0);
        assert_eq!(s.avg_subgraph_size, 0.0);
    }

    #[test]
    fn stats_of_uniform_components() {
        let mut a = chain(5);
        for _ in 0..3 {
            a.append(&chain(5));
        }
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.states, 20);
        assert_eq!(s.edges, 16);
        assert_eq!(s.subgraphs, 4);
        assert_eq!(s.avg_subgraph_size, 5.0);
        assert_eq!(s.stddev_subgraph_size, 0.0);
        assert!((s.edges_per_node - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stats_of_mixed_components() {
        let mut a = chain(2);
        a.append(&chain(6));
        let s = AutomatonStats::compute(&a);
        assert_eq!(s.subgraphs, 2);
        assert_eq!(s.avg_subgraph_size, 4.0);
        assert_eq!(s.stddev_subgraph_size, 2.0);
    }

    #[test]
    fn component_labels_are_dense() {
        let mut a = chain(2);
        a.append(&chain(3));
        let labels = component_labels(&a);
        assert_eq!(labels, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn longest_path_of_chains_is_longest_chain() {
        let mut a = chain(3);
        a.append(&chain(7));
        a.append(&chain(2));
        assert_eq!(longest_path_from_starts(&a), Some(7));
    }

    #[test]
    fn longest_path_sees_through_diamonds() {
        // start -> {b, c}; b -> d; c -> e -> d: longest path is 4 states.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let b = a.add_ste(SymbolClass::FULL, StartKind::None);
        let c = a.add_ste(SymbolClass::FULL, StartKind::None);
        let d = a.add_ste(SymbolClass::FULL, StartKind::None);
        let e = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(s, b);
        a.add_edge(s, c);
        a.add_edge(b, d);
        a.add_edge(c, e);
        a.add_edge(e, d);
        assert_eq!(longest_path_from_starts(&a), Some(4));
    }

    #[test]
    fn reachable_cycle_is_unbounded() {
        let mut a = chain(2);
        a.add_edge(StateId::new(1), StateId::new(0));
        assert_eq!(longest_path_from_starts(&a), None);
    }

    #[test]
    fn self_loop_is_unbounded() {
        let mut a = chain(1);
        a.add_edge(StateId::new(0), StateId::new(0));
        assert_eq!(longest_path_from_starts(&a), None);
    }

    #[test]
    fn unreachable_cycle_is_ignored() {
        let mut a = chain(4);
        // An orphan two-cycle no start state reaches.
        let x = a.add_ste(SymbolClass::FULL, StartKind::None);
        let y = a.add_ste(SymbolClass::FULL, StartKind::None);
        a.add_edge(x, y);
        a.add_edge(y, x);
        assert_eq!(longest_path_from_starts(&a), Some(4));
    }

    #[test]
    fn empty_automaton_has_zero_path() {
        assert_eq!(longest_path_from_starts(&Automaton::new()), Some(0));
    }

    fn word(a: &mut Automaton, w: &[u8], code: u32) {
        let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code);
    }

    #[test]
    fn literal_chain_is_fully_extracted() {
        let mut a = Automaton::new();
        word(&mut a, b"admin", 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf.len(), 1);
        assert!(pf[0].is_prefilterable());
        assert_eq!(pf[0].window, Some(5));
        assert_eq!(pf[0].literals, Some(vec![b"admin".to_vec()]));
    }

    #[test]
    fn long_literals_keep_their_suffix() {
        let mut a = Automaton::new();
        word(&mut a, b"0123456789abcdef", 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf[0].literals, Some(vec![b"89abcdef".to_vec()]));
        assert_eq!(pf[0].window, Some(16));
    }

    #[test]
    fn fanout_stops_the_walk_at_the_join() {
        // Two prefixes share a reporting suffix "xy": every path still
        // ends in "xy", but nothing longer is required.
        let mut a = Automaton::new();
        let p1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let p2 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::AllInput);
        let x = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
        let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
        a.add_edge(p1, x);
        a.add_edge(p2, x);
        a.add_edge(x, y);
        a.set_report(y, 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf[0].literals, Some(vec![b"xy".to_vec()]));
    }

    #[test]
    fn wide_class_at_report_blocks_prefilter() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_range(b'0', b'9'), StartKind::None);
        a.add_edge(s, t);
        a.set_report(t, 0);
        let pf = prefilter_analysis(&a);
        assert!(!pf[0].is_prefilterable());
        assert_eq!(pf[0].block, Some(PrefilterBlock::WeakLiteral));
    }

    #[test]
    fn counters_anchors_and_cycles_block() {
        use crate::element::CounterMode;
        let mut a = Automaton::new();
        // Component 0: counter.
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 0);
        // Component 1: start-of-data anchor.
        let mut b = Automaton::new();
        let (_, last) = b.add_chain(
            &[SymbolClass::from_byte(b'q'), SymbolClass::from_byte(b'r')],
            StartKind::StartOfData,
        );
        b.set_report(last, 1);
        a.append(&b);
        // Component 2: cycle.
        let mut d = Automaton::new();
        let (first, last) = d.add_chain(
            &[SymbolClass::from_byte(b'm'), SymbolClass::from_byte(b'n')],
            StartKind::AllInput,
        );
        d.add_edge(last, first);
        d.set_report(last, 2);
        a.append(&d);
        // Component 3: still fine.
        word(&mut a, b"ok_literal", 3);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf.len(), 4);
        assert_eq!(pf[0].block, Some(PrefilterBlock::Counter));
        assert_eq!(pf[1].block, Some(PrefilterBlock::StartOfData));
        assert_eq!(pf[2].block, Some(PrefilterBlock::Cycle));
        assert_eq!(pf[2].window, None);
        assert!(pf[3].is_prefilterable());
        assert_eq!(pf[3].window, Some(10));
    }

    #[test]
    fn cycle_in_one_component_spares_the_others() {
        let mut a = chain(3);
        a.add_edge(StateId::new(2), StateId::new(0));
        let mut b = Automaton::new();
        word(&mut b, b"hello", 9);
        a.append(&b);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf[0].window, None);
        assert_eq!(pf[1].window, Some(5));
    }

    #[test]
    fn reportless_components_are_droppable() {
        let a = chain(4); // no report state at all
        let pf = prefilter_analysis(&a);
        assert!(!pf[0].reporting);
        assert!(pf[0].is_prefilterable());
        assert_eq!(pf[0].literals, Some(vec![]));
    }

    #[test]
    fn duplicate_literals_are_deduped() {
        let mut a = Automaton::new();
        word(&mut a, b"same", 0);
        let mut b = Automaton::new();
        word(&mut b, b"same", 1);
        // Join them into one component via a shared tail state.
        a.append(&b);
        let bridge = a.add_ste(SymbolClass::from_byte(b'!'), StartKind::None);
        a.add_edge(StateId::new(3), bridge);
        a.add_edge(StateId::new(7), bridge);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf.len(), 1);
        assert_eq!(pf[0].literals, Some(vec![b"same".to_vec()]));
    }

    #[test]
    fn report_state_that_is_also_start_yields_single_byte() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(s, 0);
        let pf = prefilter_analysis(&a);
        assert_eq!(pf[0].block, Some(PrefilterBlock::WeakLiteral));
    }

    #[test]
    fn component_profiles_flag_counters_and_anchors() {
        use crate::element::CounterMode;
        let mut a = chain(2);
        let mut b = Automaton::new();
        let s = b.add_ste(SymbolClass::from_byte(b'k'), StartKind::StartOfData);
        let c = b.add_counter(3, CounterMode::Latch);
        b.add_edge(s, c);
        a.append(&b);
        let profiles = component_profiles(&a);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].states, 2);
        assert!(!profiles[0].has_counter && !profiles[0].has_start_of_data);
        assert_eq!(profiles[1].first_state, StateId::new(2));
        assert!(profiles[1].has_counter && profiles[1].has_start_of_data);
    }

    #[test]
    fn reachability_ignores_orphans() {
        let mut a = chain(3);
        a.add_ste(SymbolClass::FULL, StartKind::None); // orphan
        let r = reachable_from_starts(&a);
        assert_eq!(r, vec![true, true, true, false]);
    }
}

//! Graphviz DOT export for automata visualization.

use std::fmt::Write as _;

use crate::automaton::Automaton;
use crate::element::{ElementKind, Port, StartKind};

/// Renders the automaton as a Graphviz `digraph`.
///
/// Start states are drawn as double circles (bold for `AllInput`),
/// reporting elements are filled, counters are boxes labelled with their
/// target and mode, and reset edges are dashed.
///
/// # Example
///
/// ```
/// use azoo_core::{dot, Automaton, StartKind, SymbolClass};
///
/// let mut a = Automaton::new();
/// let s = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
/// a.set_report(s, 1);
/// let rendered = dot::to_dot(&a, "demo");
/// assert!(rendered.starts_with("digraph demo"));
/// assert!(rendered.contains("doublecircle"));
/// ```
pub fn to_dot(a: &Automaton, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontsize=10];");
    for (id, e) in a.iter() {
        let i = id.index();
        match &e.kind {
            ElementKind::Ste { class, start } => {
                let shape = match start {
                    StartKind::None => "circle",
                    StartKind::StartOfData | StartKind::AllInput => "doublecircle",
                };
                let style = match (e.report.is_some(), start) {
                    (true, _) => "filled",
                    (false, StartKind::AllInput) => "bold",
                    _ => "solid",
                };
                let mut label = format!("{i}\\n{class:?}");
                if let Some(code) = e.report {
                    let _ = write!(label, "\\nR{}", code.0);
                }
                let _ = writeln!(
                    out,
                    "  n{i} [shape={shape} style={style} label=\"{}\"];",
                    label.replace("SymbolClass", "")
                );
            }
            ElementKind::Counter { target, mode } => {
                let mut label = format!("{i}\\ncount {target} {mode:?}");
                if let Some(code) = e.report {
                    let _ = write!(label, "\\nR{}", code.0);
                }
                let _ = writeln!(out, "  n{i} [shape=box label=\"{label}\"];");
            }
        }
    }
    for (id, _) in a.iter() {
        for edge in a.successors(id) {
            let style = match edge.port {
                Port::Activate => "",
                Port::Reset => " [style=dashed label=\"reset\"]",
            };
            let _ = writeln!(out, "  n{} -> n{}{};", id.index(), edge.to.index(), style);
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) || cleaned.is_empty() {
        format!("g{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::element::CounterMode;
    use crate::symbol::SymbolClass;

    #[test]
    fn renders_states_edges_and_counters() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_range(b'0', b'9'), StartKind::None);
        let c = a.add_counter(3, CounterMode::Pulse);
        a.add_edge(s, t);
        a.add_edge(t, c);
        a.add_reset_edge(s, c);
        a.set_report(c, 5);
        let d = to_dot(&a, "test graph");
        assert!(d.starts_with("digraph test_graph {"));
        assert!(d.contains("n0 -> n1;"));
        assert!(d.contains("n1 -> n2;"));
        assert!(d.contains("style=dashed"));
        assert!(d.contains("count 3 Pulse"));
        assert!(d.contains("R5"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("ok_name1"), "ok_name1");
        assert_eq!(sanitize("9bad"), "g9bad");
        assert_eq!(sanitize("with space"), "with_space");
        assert_eq!(sanitize(""), "g");
    }

    #[test]
    fn empty_automaton_renders() {
        let d = to_dot(&Automaton::new(), "empty");
        assert!(d.contains("digraph empty"));
    }
}

//! Stable, order-independent content hash for [`Automaton`].
//!
//! Serving layers cache compiled automata by content (see `azoo-serve`):
//! two clients submitting the *same machine* must land on the same cache
//! entry even when their builders inserted states in different orders.
//! [`content_hash`] therefore hashes the automaton as a labelled graph,
//! not as a state-numbered list:
//!
//! 1. each state starts from a hash of its local payload only (STE class
//!    bits and start kind, or counter target and mode, plus report code
//!    and the end-of-data-only flag);
//! 2. three Weisfeiler–Leman-style refinement rounds mix in the
//!    *multiset* of neighbour hashes, tagged by edge direction and port,
//!    via a commutative (wrapping-add) accumulator — so successor order
//!    and state numbering cannot leak in;
//! 3. the final digest is a commutative sum over the refined state
//!    hashes, mixed with the state and edge counts.
//!
//! The hash uses only fixed-width integer arithmetic (a splitmix64-style
//! mixer), so it is identical across platforms and releases with the
//! same [`HASH_VERSION`]. Like any WL scheme it can in principle collide
//! on payload-identical regular graphs; cache consumers that need
//! certainty (e.g. `Db::deserialize`) re-verify by recomputing the hash
//! over the decoded payload, which makes a collision a stale-cache risk,
//! never a correctness one.

use crate::automaton::{Automaton, StateId};
use crate::element::{CounterMode, Element, ElementKind, Port, StartKind};

/// Bump when the hash construction changes: persisted artifacts keyed by
/// an older version must be treated as misses, not mismatches.
pub const HASH_VERSION: u32 = 1;

/// Refinement rounds. Three rounds distinguish neighbourhoods up to
/// radius 3, ample for the payload-rich graphs this crate builds (states
/// carry 256-bit classes and report codes, so ties are already rare
/// after round one).
const ROUNDS: usize = 3;

// Direction/port tags, arbitrary odd constants.
const TAG_OUT: u64 = 0x9ae1_6a3b_2f90_404f;
const TAG_IN: u64 = 0xd6e8_feb8_6659_fd93;
const TAG_RESET: u64 = 0xaf25_1af3_b0f0_25b5;

#[inline]
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: bijective, strong diffusion, no tables.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash of one state's local payload, independent of its [`StateId`].
fn local_signature(e: &Element) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ u64::from(HASH_VERSION);
    match &e.kind {
        ElementKind::Ste { class, start } => {
            h = mix(h ^ 0x5354_4501); // "STE" tag
            for (i, &w) in class.as_words().iter().enumerate() {
                h = mix(h.wrapping_add(w).wrapping_add(i as u64));
            }
            let s = match start {
                StartKind::None => 1u64,
                StartKind::StartOfData => 2,
                StartKind::AllInput => 3,
            };
            h = mix(h ^ (s << 8));
        }
        ElementKind::Counter { target, mode } => {
            h = mix(h ^ 0x434e_5402); // "CNT" tag
            h = mix(h ^ u64::from(*target));
            let m = match mode {
                CounterMode::Latch => 1u64,
                CounterMode::Pulse => 2,
                CounterMode::Roll => 3,
            };
            h = mix(h ^ (m << 8));
        }
    }
    if let Some(code) = e.report {
        h = mix(h ^ 0x5250_5403 ^ (u64::from(code.0) << 16));
        if e.report_eod_only {
            h = mix(h ^ 0x454f_4404);
        }
    }
    h
}

/// Computes the stable content hash of `a`. See the module docs.
pub fn content_hash(a: &Automaton) -> u64 {
    let n = a.state_count();
    let mut h: Vec<u64> = (0..n)
        .map(|i| local_signature(a.element(StateId::new(i))))
        .collect();
    let mut edges = 0u64;
    for _ in 0..ROUNDS {
        // Commutative accumulators: the order states and edges are
        // visited in cannot affect the sums.
        let mut out_acc = vec![0u64; n];
        let mut in_acc = vec![0u64; n];
        edges = 0;
        for i in 0..n {
            for e in a.successors(StateId::new(i)) {
                edges += 1;
                let port = match e.port {
                    Port::Activate => 0,
                    Port::Reset => TAG_RESET,
                };
                let j = e.to.index();
                out_acc[i] = out_acc[i].wrapping_add(mix(h[j] ^ port ^ TAG_OUT));
                in_acc[j] = in_acc[j].wrapping_add(mix(h[i] ^ port ^ TAG_IN));
            }
        }
        for i in 0..n {
            h[i] = mix(h[i] ^ mix(out_acc[i] ^ TAG_OUT) ^ mix(in_acc[i] ^ TAG_IN).rotate_left(17));
        }
    }
    let sum = h.iter().fold(0u64, |acc, &x| acc.wrapping_add(mix(x)));
    mix(sum ^ mix(n as u64 ^ edges.rotate_left(32)))
}

impl Automaton {
    /// Stable, order-independent content hash of this machine; the Db
    /// cache key used by the serving layer. See [`content_hash`].
    pub fn content_hash(&self) -> u64 {
        content_hash(self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::element::ReportCode;
    use crate::mnrl;
    use crate::symbol::SymbolClass;

    /// `cat` anywhere, plus a `$`-anchored `z` and a latch counter.
    fn sample() -> Automaton {
        let mut a = Automaton::new();
        let c = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        let s1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
        let s2 = a.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
        a.add_edge(c, s1);
        a.add_edge(s1, s2);
        a.set_report(s2, 7);
        let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(z, 8);
        a.set_report_eod_only(z, true);
        let cnt = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s2, cnt);
        a.add_reset_edge(z, cnt);
        a.set_report(cnt, 9);
        a
    }

    /// The same machine as [`sample`], states inserted in reverse order.
    fn sample_permuted() -> Automaton {
        let mut a = Automaton::new();
        let cnt = a.add_counter(3, CounterMode::Latch);
        a.set_report(cnt, 9);
        let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        a.set_report(z, 8);
        a.set_report_eod_only(z, true);
        let s2 = a.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
        a.set_report(s2, 7);
        let s1 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
        let c = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        a.add_edge(c, s1);
        a.add_edge(s1, s2);
        a.add_edge(s2, cnt);
        a.add_reset_edge(z, cnt);
        a
    }

    #[test]
    fn deterministic() {
        assert_eq!(content_hash(&sample()), content_hash(&sample()));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        assert_eq!(content_hash(&sample()), content_hash(&sample_permuted()));
    }

    #[test]
    fn mnrl_round_trip_preserves_hash() {
        let a = sample();
        let back = mnrl::from_json(&mnrl::to_json(&a, "hash-test")).unwrap();
        assert_eq!(content_hash(&a), content_hash(&back));
    }

    #[test]
    fn every_payload_field_is_hashed() {
        let base = content_hash(&sample());
        // Symbol class.
        let mut m = sample();
        let s = StateId::new(1);
        if let ElementKind::Ste { class, .. } = &mut m.element_mut(s).kind {
            class.insert(b'!');
        }
        assert_ne!(content_hash(&m), base, "class change must rehash");
        // Start kind.
        let mut m = sample();
        if let ElementKind::Ste { start, .. } = &mut m.element_mut(StateId::new(0)).kind {
            *start = StartKind::StartOfData;
        }
        assert_ne!(content_hash(&m), base, "start change must rehash");
        // Report code.
        let mut m = sample();
        m.element_mut(StateId::new(2)).report = Some(ReportCode(1000));
        assert_ne!(content_hash(&m), base, "report code change must rehash");
        // End-of-data-only flag.
        let mut m = sample();
        m.element_mut(StateId::new(3)).report_eod_only = false;
        assert_ne!(content_hash(&m), base, "eod flag change must rehash");
        // Counter target.
        let mut m = sample();
        if let ElementKind::Counter { target, .. } = &mut m.element_mut(StateId::new(4)).kind {
            *target += 1;
        }
        assert_ne!(content_hash(&m), base, "counter target change must rehash");
        // Counter mode.
        let mut m = sample();
        if let ElementKind::Counter { mode, .. } = &mut m.element_mut(StateId::new(4)).kind {
            *mode = CounterMode::Roll;
        }
        assert_ne!(content_hash(&m), base, "counter mode change must rehash");
    }

    #[test]
    fn edges_and_ports_are_hashed() {
        let base = content_hash(&sample());
        // Extra edge.
        let mut m = sample();
        m.add_edge(StateId::new(3), StateId::new(1));
        assert_ne!(content_hash(&m), base, "extra edge must rehash");
        // Same endpoints, different port: rebuild with the reset edge as
        // a plain activation.
        let mut plain = Automaton::new();
        let c = plain.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
        let s1 = plain.add_ste(SymbolClass::from_byte(b'a'), StartKind::None);
        let s2 = plain.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
        plain.add_edge(c, s1);
        plain.add_edge(s1, s2);
        plain.set_report(s2, 7);
        let z = plain.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        plain.set_report(z, 8);
        plain.set_report_eod_only(z, true);
        let cnt = plain.add_counter(3, CounterMode::Latch);
        plain.add_edge(s2, cnt);
        plain.add_edge(z, cnt); // activate, not reset
        plain.set_report(cnt, 9);
        assert_ne!(content_hash(&plain), base, "port change must rehash");
    }

    #[test]
    fn empty_automaton_hashes() {
        let a = Automaton::new();
        assert_eq!(content_hash(&a), content_hash(&Automaton::new()));
        assert_ne!(content_hash(&a), content_hash(&sample()));
    }
}

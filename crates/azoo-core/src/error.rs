//! Error types for the core automata model.

use std::fmt;

use crate::automaton::StateId;

/// Errors raised by automaton construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An edge references a state id outside the automaton.
    InvalidStateId(StateId),
    /// An STE has an empty symbol class; it could never match.
    EmptySymbolClass(StateId),
    /// A counter element was given a start kind or a symbol class.
    MalformedCounter(StateId),
    /// A counter target of zero would fire before any count.
    ZeroCounterTarget(StateId),
    /// A reset edge targets an STE, which has no reset port.
    ResetIntoSte {
        /// Source of the offending edge.
        from: StateId,
        /// STE target that has no reset port.
        to: StateId,
    },
    /// The automaton has no start element, so it can never match.
    NoStartStates,
    /// The same `(target, port)` edge appears twice on one source state.
    ///
    /// Duplicate edges are always a construction bug: activation is
    /// level-triggered (an enable signal is boolean, not counted), so the
    /// second edge can never change behaviour — but it doubles engine
    /// fan-out work and, on counter targets, *looks* like it should count
    /// twice when it never will.
    DuplicateEdge {
        /// Source of the duplicated edge.
        from: StateId,
        /// Target of the duplicated edge.
        to: StateId,
    },
    /// Deserialization of an automaton interchange document failed.
    Format(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidStateId(id) => write!(f, "edge references unknown state {id:?}"),
            CoreError::EmptySymbolClass(id) => {
                write!(f, "state {id:?} has an empty symbol class")
            }
            CoreError::MalformedCounter(id) => write!(f, "counter {id:?} is malformed"),
            CoreError::ZeroCounterTarget(id) => {
                write!(f, "counter {id:?} has a zero target")
            }
            CoreError::ResetIntoSte { from, to } => {
                write!(f, "reset edge {from:?} -> {to:?} targets an STE")
            }
            CoreError::NoStartStates => write!(f, "automaton has no start states"),
            CoreError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from:?} -> {to:?}")
            }
            CoreError::Format(msg) => write!(f, "invalid automaton document: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        let e = CoreError::NoStartStates;
        assert_eq!(e.to_string(), "automaton has no start states");
        let e = CoreError::Format("bad json".into());
        assert!(e.to_string().contains("bad json"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}

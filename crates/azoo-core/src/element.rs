//! Automaton elements: STEs and counter elements.

use crate::symbol::SymbolClass;

/// When a state becomes enabled independently of incoming activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StartKind {
    /// Never self-enabled; only enabled by an incoming activation.
    #[default]
    None,
    /// Enabled only for the first input symbol (`start-of-data` in ANML).
    StartOfData,
    /// Re-enabled on every input symbol (`all-input`), giving
    /// match-anywhere search semantics.
    AllInput,
}

/// An identifier carried by reports emitted from a reporting element.
///
/// Benchmarks use report codes to identify which rule/pattern/filter fired
/// (e.g. the rule index in Snort, or the predicted class in Random Forest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReportCode(pub u32);

impl From<u32> for ReportCode {
    fn from(v: u32) -> Self {
        ReportCode(v)
    }
}

impl std::fmt::Display for ReportCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Behaviour of a counter element once its target is reached.
///
/// These mirror the Micron AP counter modes as modelled by VASim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// Fire once and keep the output asserted every subsequent cycle until
    /// reset.
    Latch,
    /// Assert the output for a single cycle each time the count reaches the
    /// target; the count holds at the target until reset.
    Pulse,
    /// Assert the output for one cycle and roll the count back to zero.
    Roll,
}

/// The input port an edge drives on a counter element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Port {
    /// Ordinary activation input. For STEs this enables the state; for
    /// counters this is the count-enable input.
    #[default]
    Activate,
    /// Counter reset input. Meaningless for STE targets.
    Reset,
}

/// The functional payload of an element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// A State Transition Element: matches a symbol class when enabled.
    Ste {
        /// Symbols this state matches.
        class: SymbolClass,
        /// Self-enabling behaviour.
        start: StartKind,
    },
    /// A counter element: counts activation signals; fires at `target`.
    Counter {
        /// Count at which the counter fires.
        target: u32,
        /// Behaviour at/after the target.
        mode: CounterMode,
    },
}

/// A single automaton element plus its (optional) report code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Element {
    /// STE or counter payload.
    pub kind: ElementKind,
    /// If set, the element reports with this code when it matches/fires.
    pub report: Option<ReportCode>,
    /// If true, a report from this element is only valid when it coincides
    /// with the final input symbol (used to implement the `$` anchor).
    pub report_eod_only: bool,
}

impl Element {
    /// Creates an STE element.
    pub fn ste(class: SymbolClass, start: StartKind) -> Self {
        Element {
            kind: ElementKind::Ste { class, start },
            report: None,
            report_eod_only: false,
        }
    }

    /// Creates a counter element.
    pub fn counter(target: u32, mode: CounterMode) -> Self {
        Element {
            kind: ElementKind::Counter { target, mode },
            report: None,
            report_eod_only: false,
        }
    }

    /// Whether this element is an STE.
    pub fn is_ste(&self) -> bool {
        matches!(self.kind, ElementKind::Ste { .. })
    }

    /// Whether this element is a counter.
    pub fn is_counter(&self) -> bool {
        matches!(self.kind, ElementKind::Counter { .. })
    }

    /// The symbol class, if this element is an STE.
    pub fn class(&self) -> Option<&SymbolClass> {
        match &self.kind {
            ElementKind::Ste { class, .. } => Some(class),
            ElementKind::Counter { .. } => None,
        }
    }

    /// The start kind for STEs; counters are never start elements.
    pub fn start_kind(&self) -> StartKind {
        match self.kind {
            ElementKind::Ste { start, .. } => start,
            ElementKind::Counter { .. } => StartKind::None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ste_accessors() {
        let e = Element::ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
        assert!(e.is_ste());
        assert!(!e.is_counter());
        assert_eq!(e.start_kind(), StartKind::AllInput);
        assert!(e.class().unwrap().contains(b'x'));
        assert!(e.report.is_none());
    }

    #[test]
    fn counter_accessors() {
        let e = Element::counter(5, CounterMode::Latch);
        assert!(e.is_counter());
        assert!(e.class().is_none());
        assert_eq!(e.start_kind(), StartKind::None);
    }

    #[test]
    fn report_code_display_and_from() {
        let r: ReportCode = 42u32.into();
        assert_eq!(r.to_string(), "42");
        assert_eq!(r, ReportCode(42));
    }
}

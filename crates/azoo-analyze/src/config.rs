//! Per-rule severity overrides and heuristic thresholds.

use crate::diag::Severity;

/// Effective reporting level for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Suppress the rule entirely.
    Allow,
    /// Report at `Warn`.
    Warn,
    /// Report at `Error` (non-zero `azoo-lint` exit).
    Error,
}

/// Analysis configuration: rule overrides plus the tunable thresholds of
/// the heuristic rules.
///
/// The defaults reproduce the registry's per-rule severities. Overrides
/// apply to any rule id, including the structural (`Error`-default)
/// rules — demoting those silences real breakage, so the `azoo-lint`
/// harness surfaces overrides on the command line (`--allow`/`--deny`)
/// rather than hiding them in a file.
#[derive(Debug, Clone)]
pub struct LintConfig {
    overrides: Vec<(String, Level)>,
    /// `nfa-hotspot`: minimum number of successors of one state
    /// simultaneously enabled by a single byte before warning.
    pub hotspot_fanout: usize,
    /// `all-input-explosion`: warn when the expected number of states
    /// matching per input symbol (summed over `AllInput` states, class
    /// width / 256, plus their immediate fan-out) exceeds this budget.
    pub active_set_budget: f64,
    /// `fuzzy-blowup`: warn when one acyclic component carries more
    /// wide-class states (128+ symbols — the signature of Levenshtein
    /// error tracks) than this budget. Wide states grow as roughly
    /// `k × pattern length`; a `k = 3` mesh over a ~22-byte pattern
    /// clears the default.
    pub fuzzy_active_budget: usize,
    /// Cap on diagnostics emitted per rule; the rest fold into one
    /// summary diagnostic so a degenerate machine cannot flood output.
    pub max_per_rule: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            overrides: Vec::new(),
            hotspot_fanout: 8,
            active_set_budget: 64.0,
            fuzzy_active_budget: 64,
            max_per_rule: 16,
        }
    }
}

impl LintConfig {
    /// A default configuration.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Overrides one rule's level (later calls win).
    pub fn set_level(&mut self, rule: &str, level: Level) -> &mut Self {
        self.overrides.push((rule.to_owned(), level));
        self
    }

    /// The effective severity for `rule`, or `None` when suppressed.
    pub fn effective(&self, rule: &str, default: Severity) -> Option<Severity> {
        match self.overrides.iter().rev().find(|(r, _)| r == rule) {
            Some((_, Level::Allow)) => None,
            Some((_, Level::Warn)) => Some(Severity::Warn),
            Some((_, Level::Error)) => Some(Severity::Error),
            None => Some(default),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_pass_through() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.effective("x", Severity::Warn), Some(Severity::Warn));
        assert_eq!(cfg.effective("x", Severity::Error), Some(Severity::Error));
    }

    #[test]
    fn overrides_apply_and_last_wins() {
        let mut cfg = LintConfig::new();
        cfg.set_level("x", Level::Error);
        assert_eq!(cfg.effective("x", Severity::Warn), Some(Severity::Error));
        cfg.set_level("x", Level::Allow);
        assert_eq!(cfg.effective("x", Severity::Warn), None);
        cfg.set_level("x", Level::Warn);
        assert_eq!(cfg.effective("x", Severity::Error), Some(Severity::Warn));
    }
}

//! Differential verification of `azoo-passes` transformations.
//!
//! [`verify_pass`] snapshots structural invariants and a *language
//! sample* of an automaton before and after a transformation and reports
//! every violation as a [`Diagnostic`] under the `pass-invariant` rule.
//! The language sample runs [`NfaEngine`] over deterministic
//! pseudo-random inputs drawn from the automaton's own alphabet, so a
//! pass that silently changes matching behaviour is caught without any
//! hand-written oracle.
//!
//! Offset conventions for rescaling passes are shared with the
//! differential oracle via [`azoo_passes::InputMap`] (re-exported here):
//! `Stride8` expands samples 8:1 bit-level for the pre-pass machine and
//! keeps byte-aligned reports (`(o + 1) % 8 == 0` → `o / 8`); `Widen`
//! zero-interleaves the post-pass input and maps a report at `o` to
//! `2 * o + 1`, with NUL-free samples so pad positions can never alias
//! alphabet bytes.

use azoo_core::Automaton;
use azoo_engines::{CollectSink, Engine, NfaEngine};

use crate::diag::{Diagnostic, Severity};

pub use azoo_passes::InputMap;

/// What to verify about one transformation.
#[derive(Debug, Clone)]
pub struct VerifySpec {
    /// Pass name, used in diagnostic messages and as the sample seed.
    pub pass: &'static str,
    /// Number of pseudo-random sample inputs.
    pub samples: usize,
    /// Maximum sample length in (pre-pass) symbols of the *post* side's
    /// natural unit: bytes for `Stride8`, pre-pass bytes otherwise.
    pub sample_len: usize,
    /// Input/offset relation across the pass.
    pub map: InputMap,
    /// Whether the pass must not increase state or edge counts
    /// (merging and dead-state removal shrink; striding may not).
    pub expect_no_growth: bool,
}

impl VerifySpec {
    /// A spec with the defaults: 8 identity-mapped samples of up to 64
    /// symbols, growth allowed.
    pub fn new(pass: &'static str) -> Self {
        VerifySpec {
            pass,
            samples: 8,
            sample_len: 64,
            map: InputMap::Identity,
            expect_no_growth: false,
        }
    }

    /// Sets the input map.
    #[must_use]
    pub fn map(mut self, map: InputMap) -> Self {
        self.map = map;
        self
    }

    /// Requires the pass not to grow the automaton.
    #[must_use]
    pub fn no_growth(mut self) -> Self {
        self.expect_no_growth = true;
        self
    }

    /// Sets the sample count.
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    /// Sets the maximum sample length.
    #[must_use]
    pub fn sample_len(mut self, n: usize) -> Self {
        self.sample_len = n;
        self
    }
}

/// Deterministic xorshift64 generator (the build is offline and
/// `azoo-analyze` keeps its dependency set minimal, so no `rand` here;
/// statistical quality is irrelevant for sample inputs).
struct XorShift64(u64);

impl XorShift64 {
    fn seeded(name: &str) -> Self {
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            s = (s ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        XorShift64(s | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Verifies that `after` is a faithful transformation of `before`.
///
/// Checks, in order:
///
/// 1. `before` passes validation (precondition — if it does not, that
///    single finding is returned and the comparison is skipped);
/// 2. `after` passes [`Automaton::validate_all`] (every violation is a
///    finding);
/// 3. if [`VerifySpec::expect_no_growth`], state and edge counts do not
///    increase;
/// 4. the set of report codes `after` can emit is a subset of
///    `before`'s;
/// 5. on every sampled input, `after`'s report stream equals `before`'s
///    mapped through [`VerifySpec::map`].
///
/// Returns one `pass-invariant` Error diagnostic per violation; an
/// empty vector means the pass held its invariants on this automaton.
pub fn verify_pass(before: &Automaton, after: &Automaton, spec: &VerifySpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let pass = spec.pass;
    if let Err(e) = before.validate() {
        return vec![Diagnostic::global(
            "pass-invariant",
            Severity::Error,
            format!("{pass}: input automaton fails validation: {e}"),
        )];
    }
    for e in after.validate_all() {
        diags.push(Diagnostic::global(
            "pass-invariant",
            Severity::Error,
            format!("{pass}: output automaton fails validation: {e}"),
        ));
    }
    if spec.expect_no_growth {
        if after.state_count() > before.state_count() {
            diags.push(Diagnostic::global(
                "pass-invariant",
                Severity::Error,
                format!(
                    "{pass}: state count grew {} -> {}",
                    before.state_count(),
                    after.state_count()
                ),
            ));
        }
        if after.edge_count() > before.edge_count() {
            diags.push(Diagnostic::global(
                "pass-invariant",
                Severity::Error,
                format!(
                    "{pass}: edge count grew {} -> {}",
                    before.edge_count(),
                    after.edge_count()
                ),
            ));
        }
    }
    let codes_before = report_codes(before);
    for code in report_codes(after) {
        if !codes_before.contains(&code) {
            diags.push(Diagnostic::global(
                "pass-invariant",
                Severity::Error,
                format!("{pass}: output reports code {code} the input never reports"),
            ));
        }
    }
    // Language sampling needs both machines to compile.
    if !diags.is_empty() {
        return diags;
    }
    let (Ok(mut eng_before), Ok(mut eng_after)) = (NfaEngine::new(before), NfaEngine::new(after))
    else {
        diags.push(Diagnostic::global(
            "pass-invariant",
            Severity::Error,
            format!("{pass}: an automaton failed to compile for sampling"),
        ));
        return diags;
    };
    let alphabet = sample_alphabet(before, spec.map);
    let mut rng = XorShift64::seeded(pass);
    for i in 0..spec.samples {
        let len = (rng.next() as usize) % (spec.sample_len + 1);
        let input: Vec<u8> = (0..len)
            .map(|_| alphabet[(rng.next() as usize) % alphabet.len()])
            .collect();
        let (input_before, input_after) = (spec.map.pre_input(&input), spec.map.post_input(&input));
        let expected: Vec<(u64, u32)> = scan(&mut eng_before, &input_before)
            .into_iter()
            .filter_map(|(o, c)| spec.map.map_offset(o).map(|o| (o, c)))
            .collect();
        let got = scan(&mut eng_after, &input_after);
        if got != expected {
            diags.push(Diagnostic::global(
                "pass-invariant",
                Severity::Error,
                format!(
                    "{pass}: language mismatch on sample {i} (len {len}): \
                     expected {} report(s), got {} — first divergence {:?} vs {:?}",
                    expected.len(),
                    got.len(),
                    first_divergence(&expected, &got).0,
                    first_divergence(&expected, &got).1,
                ),
            ));
        }
    }
    diags
}

type Report = (u64, u32);

fn first_divergence(expected: &[Report], got: &[Report]) -> (Option<Report>, Option<Report>) {
    let i = expected
        .iter()
        .zip(got.iter())
        .take_while(|(a, b)| a == b)
        .count();
    (expected.get(i).copied(), got.get(i).copied())
}

fn scan(engine: &mut NfaEngine, input: &[u8]) -> Vec<(u64, u32)> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
        .into_iter()
        .map(|r| (r.offset, r.code.0))
        .collect()
}

fn report_codes(a: &Automaton) -> Vec<u32> {
    let mut codes: Vec<u32> = a
        .iter()
        .filter_map(|(_, e)| e.report.map(|c| c.0))
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

/// Bytes to draw samples from: the union of the pre-pass machine's
/// symbol classes plus one out-of-alphabet byte, so both matching and
/// non-matching transitions are exercised. Bit-level machines
/// ([`InputMap::Stride8`]) sample raw bytes; [`InputMap::Widen`]
/// excludes NUL (the pad symbol).
fn sample_alphabet(before: &Automaton, map: InputMap) -> Vec<u8> {
    if map == InputMap::Stride8 {
        // The byte side sees arbitrary bytes; the bit expansion exercises
        // the bit-level machine on every path.
        return (0..=255).collect();
    }
    let mut in_class = [false; 256];
    for (_, e) in before.iter() {
        if let Some(class) = e.class() {
            for b in class.iter() {
                in_class[b as usize] = true;
            }
        }
    }
    let mut alphabet: Vec<u8> = (0u16..256)
        .map(|b| b as u8)
        .filter(|&b| in_class[b as usize] && map.allows_byte(b))
        .collect();
    // One miss byte keeps the sample from being all-matching.
    if let Some(miss) = (0u16..256)
        .map(|b| b as u8)
        .find(|&b| !in_class[b as usize] && map.allows_byte(b))
    {
        alphabet.push(miss);
    }
    if alphabet.is_empty() {
        alphabet.push(b'a');
    }
    alphabet
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use azoo_core::{StartKind, StateId, SymbolClass};
    use azoo_passes::{
        bit_pattern_chain, bits_of_bytes, merge_prefixes, remove_dead, stride8, widen,
    };

    fn two_words() -> Automaton {
        let mut a = Automaton::new();
        let w1: Vec<SymbolClass> = b"cart".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let w2: Vec<SymbolClass> = b"care".iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, l1) = a.add_chain(&w1, StartKind::AllInput);
        a.set_report(l1, 1);
        let mut b2 = Automaton::new();
        let (_, l2) = b2.add_chain(&w2, StartKind::AllInput);
        b2.set_report(l2, 2);
        a.append(&b2);
        a
    }

    #[test]
    fn honest_merge_passes_verification() {
        let a = two_words();
        let (merged, _) = merge_prefixes(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("merge_prefixes").no_growth());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn honest_dead_removal_passes_verification() {
        let mut a = two_words();
        a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None); // dead
        let pruned = remove_dead(&a);
        let diags = verify_pass(&a, &pruned, &VerifySpec::new("remove_dead").no_growth());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn honest_stride8_passes_verification() {
        let bits = bit_pattern_chain(&bits_of_bytes(b"ab"), 7, StartKind::AllInput);
        let bytes = stride8(&bits).unwrap();
        let diags = verify_pass(
            &bits,
            &bytes,
            &VerifySpec::new("stride8").map(InputMap::Stride8),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn honest_widen_passes_verification() {
        let a = two_words();
        let wide = widen(&a).unwrap();
        let diags = verify_pass(&a, &wide, &VerifySpec::new("widen").map(InputMap::Widen));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn broken_pass_report_retarget_is_caught() {
        // A "pass" that moves the report one state earlier: structure is
        // valid, but the language changes — only sampling can catch it.
        let a = two_words();
        let mut broken = a.clone();
        broken.set_report(StateId::new(2), 1);
        let diags = verify_pass(&a, &broken, &VerifySpec::new("broken"));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("language mismatch")),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn broken_pass_new_code_is_caught() {
        let a = two_words();
        let mut broken = a.clone();
        broken.set_report(StateId::new(3), 99);
        let diags = verify_pass(&a, &broken, &VerifySpec::new("newcode"));
        assert!(
            diags.iter().any(|d| d.message.contains("code 99")),
            "{diags:?}"
        );
    }

    #[test]
    fn broken_pass_growth_is_caught() {
        let a = two_words();
        let mut grown = a.clone();
        grown.add_ste(SymbolClass::from_byte(b'q'), StartKind::AllInput);
        let diags = verify_pass(&a, &grown, &VerifySpec::new("grow").no_growth());
        assert!(
            diags.iter().any(|d| d.message.contains("state count grew")),
            "{diags:?}"
        );
    }

    #[test]
    fn broken_pass_invalid_output_is_caught() {
        let a = two_words();
        let mut broken = a.clone();
        broken.element_mut(StateId::new(1)).kind = azoo_core::ElementKind::Ste {
            class: SymbolClass::EMPTY,
            start: StartKind::None,
        };
        let diags = verify_pass(&a, &broken, &VerifySpec::new("invalid"));
        assert!(
            diags.iter().any(|d| d.message.contains("fails validation")),
            "{diags:?}"
        );
    }

    #[test]
    fn invalid_input_short_circuits() {
        let mut bad = Automaton::new();
        bad.add_ste(SymbolClass::EMPTY, StartKind::AllInput);
        let diags = verify_pass(&bad, &bad, &VerifySpec::new("pre"));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("input automaton"));
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = two_words();
        let mut broken = a.clone();
        broken.set_report(StateId::new(2), 1);
        let d1 = verify_pass(&a, &broken, &VerifySpec::new("det"));
        let d2 = verify_pass(&a, &broken, &VerifySpec::new("det"));
        assert_eq!(d1, d2);
    }
}

//! The diagnostic type and its text / JSON renderings.

use std::fmt;

use azoo_core::json::Json;
use azoo_core::StateId;

/// How serious a finding is.
///
/// `Error` findings describe automata that are structurally broken — an
/// engine either rejects them or silently computes nonsense. `Warn`
/// findings describe machines that simulate correctly but are almost
/// certainly not what the author meant (dead states, unfireable
/// counters) or that predict pathological performance (active-set
/// blowup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but simulable.
    Warn,
    /// Structurally broken; engines reject these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analysis finding.
///
/// Renders like a compiler diagnostic:
///
/// ```text
/// error[duplicate-edge] state 3: duplicate edge StateId(3) -> StateId(4)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (kebab-case, see the registry in [`crate::rules`]).
    pub rule: &'static str,
    /// Effective severity after config overrides.
    pub severity: Severity,
    /// The state the finding anchors to, when it concerns one state.
    pub state: Option<StateId>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic anchored to a state.
    pub fn on_state(
        rule: &'static str,
        severity: Severity,
        state: StateId,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            state: Some(state),
            message: message.into(),
        }
    }

    /// Creates an automaton-level diagnostic.
    pub fn global(rule: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity,
            state: None,
            message: message.into(),
        }
    }

    /// JSON object form (used by `azoo-lint --json`).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("rule".into(), Json::Str(self.rule.into())),
            ("severity".into(), Json::Str(self.severity.to_string())),
        ];
        match self.state {
            Some(id) => members.push((
                "state".into(),
                Json::Int(i64::try_from(id.index()).unwrap_or(i64::MAX)),
            )),
            None => members.push(("state".into(), Json::Null)),
        }
        members.push(("message".into(), Json::Str(self.message.clone())));
        Json::Obj(members)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            Some(id) => write!(
                f,
                "{}[{}] state {}: {}",
                self.severity,
                self.rule,
                id.index(),
                self.message
            ),
            None => write!(f, "{}[{}] {}", self.severity, self.rule, self.message),
        }
    }
}

/// Renders a batch of diagnostics as a JSON document:
/// `{"diagnostics": [...], "errors": N, "warnings": N}`.
pub fn to_json_report(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    Json::Obj(vec![
        (
            "diagnostics".into(),
            Json::Arr(diags.iter().map(Diagnostic::to_json).collect()),
        ),
        (
            "errors".into(),
            Json::Int(i64::try_from(errors).unwrap_or(i64::MAX)),
        ),
        (
            "warnings".into(),
            Json::Int(i64::try_from(warnings).unwrap_or(i64::MAX)),
        ),
    ])
    .pretty()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_compiler_style() {
        let d = Diagnostic::on_state("empty-symbol-class", Severity::Error, StateId::new(7), "x");
        assert_eq!(d.to_string(), "error[empty-symbol-class] state 7: x");
        let g = Diagnostic::global("no-start-states", Severity::Warn, "y");
        assert_eq!(g.to_string(), "warning[no-start-states] y");
    }

    #[test]
    fn json_report_counts_severities() {
        let diags = vec![
            Diagnostic::global("a", Severity::Error, "m"),
            Diagnostic::global("b", Severity::Warn, "m"),
            Diagnostic::global("c", Severity::Warn, "m"),
        ];
        let text = to_json_report(&diags);
        let doc = azoo_core::json::parse(&text).unwrap();
        assert_eq!(doc.get("errors").unwrap().as_i64(), Some(1));
        assert_eq!(doc.get("warnings").unwrap().as_i64(), Some(2));
        assert_eq!(doc.get("diagnostics").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn severity_orders_warn_below_error() {
        assert!(Severity::Warn < Severity::Error);
    }
}

//! The lint rule registry and the analysis passes behind it.
//!
//! Every finding carries a **stable rule id** (kebab-case). Error-level
//! structural rules are not implemented here: they delegate to
//! [`Automaton::validate_all`], the single source of truth shared with
//! `Automaton::validate`, and are only *mapped* to rule ids. Warn-level
//! rules are heuristic analyses implemented in this module.

use std::collections::HashMap;

use azoo_core::stats::{component_labels, reachable_from_starts};
use azoo_core::{Automaton, CoreError, Port, StartKind, StateId};

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Severity};

/// A registry entry: one rule, its default severity, and what it means.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case id, usable in `--allow` / `--deny`.
    pub id: &'static str,
    /// Default severity (overridable per [`LintConfig`]).
    pub severity: Severity,
    /// One-line human description.
    pub summary: &'static str,
}

/// Every rule the analyzer can emit, in registry order.
///
/// Error-level entries mirror [`CoreError`] variants; Warn-level entries
/// are heuristic passes. `parse-error` and `pass-invariant` are emitted
/// by the frontends (`azoo-lint`, [`crate::verify::verify_pass`]) rather
/// than by [`analyze`].
pub const RULES: &[Rule] = &[
    Rule {
        id: "invalid-edge-target",
        severity: Severity::Error,
        summary: "an edge references a state id outside the automaton",
    },
    Rule {
        id: "empty-symbol-class",
        severity: Severity::Error,
        summary: "an STE has an empty symbol class and can never match",
    },
    Rule {
        id: "malformed-counter",
        severity: Severity::Error,
        summary: "a counter element carries STE-only attributes",
    },
    Rule {
        id: "zero-counter-target",
        severity: Severity::Error,
        summary: "a counter with target 0 would fire before any count",
    },
    Rule {
        id: "reset-into-ste",
        severity: Severity::Error,
        summary: "a reset edge targets an STE, which has no reset port",
    },
    Rule {
        id: "no-start-states",
        severity: Severity::Error,
        summary: "a non-empty automaton has no start states",
    },
    Rule {
        id: "duplicate-edge",
        severity: Severity::Error,
        summary: "the same (target, port) edge appears twice on one state",
    },
    Rule {
        id: "structural-error",
        severity: Severity::Error,
        summary: "other structural validation failure",
    },
    Rule {
        id: "parse-error",
        severity: Severity::Error,
        summary: "an automaton interchange document failed to parse",
    },
    Rule {
        id: "pass-invariant",
        severity: Severity::Error,
        summary: "a transformation pass violated a structural or language invariant",
    },
    Rule {
        id: "unreachable-state",
        severity: Severity::Warn,
        summary: "no start state can ever activate this state",
    },
    Rule {
        id: "cannot-report",
        severity: Severity::Warn,
        summary: "no path from this state reaches a reporting state",
    },
    Rule {
        id: "report-code-collision",
        severity: Severity::Warn,
        summary: "one report code is emitted by multiple disconnected subgraphs",
    },
    Rule {
        id: "latch-without-reset",
        severity: Severity::Warn,
        summary: "a latching counter has no reset edge and can never re-arm",
    },
    Rule {
        id: "counter-target-unreachable",
        severity: Severity::Warn,
        summary: "a counter's target exceeds the pulses its subgraph can deliver",
    },
    Rule {
        id: "shadowed-start",
        severity: Severity::Warn,
        summary: "an edge activates an all-input start state, which is a no-op",
    },
    Rule {
        id: "all-input-explosion",
        severity: Severity::Warn,
        summary: "all-input start states predict an explosive active set",
    },
    Rule {
        id: "nfa-hotspot",
        severity: Severity::Warn,
        summary: "one byte enables many successors of one state at once",
    },
    Rule {
        id: "bit-residue",
        severity: Severity::Warn,
        summary: "bit-level symbol classes are mixed into a byte-level machine",
    },
    Rule {
        id: "prefilterable",
        severity: Severity::Warn,
        summary: "a reporting component cannot be gated by the literal prefilter",
    },
    Rule {
        id: "bisimilar-states",
        severity: Severity::Warn,
        summary: "forward-bisimilar states waste capacity; the reduction tier would merge them",
    },
    Rule {
        id: "fuzzy-blowup",
        severity: Severity::Warn,
        summary: "an edit-distance mesh predicts an explosive error-layer frontier",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Maps a [`CoreError`] to its rule id and anchor state.
pub fn rule_for_core_error(e: &CoreError) -> (&'static str, Option<StateId>) {
    match e {
        CoreError::InvalidStateId(_) => ("invalid-edge-target", None),
        CoreError::EmptySymbolClass(id) => ("empty-symbol-class", Some(*id)),
        CoreError::MalformedCounter(id) => ("malformed-counter", Some(*id)),
        CoreError::ZeroCounterTarget(id) => ("zero-counter-target", Some(*id)),
        CoreError::ResetIntoSte { from, .. } => ("reset-into-ste", Some(*from)),
        CoreError::NoStartStates => ("no-start-states", None),
        CoreError::DuplicateEdge { from, .. } => ("duplicate-edge", Some(*from)),
        CoreError::Format(_) => ("parse-error", None),
        _ => ("structural-error", None),
    }
}

/// Collects diagnostics per rule, applying config severity overrides and
/// the per-rule cap (overflow folds into one summary diagnostic).
struct Emitter<'c> {
    cfg: &'c LintConfig,
    out: Vec<Diagnostic>,
    emitted: HashMap<&'static str, usize>,
    overflow: Vec<(&'static str, Severity, usize)>,
}

impl<'c> Emitter<'c> {
    fn new(cfg: &'c LintConfig) -> Self {
        Emitter {
            cfg,
            out: Vec::new(),
            emitted: HashMap::new(),
            overflow: Vec::new(),
        }
    }

    fn emit(&mut self, rule_id: &'static str, state: Option<StateId>, message: String) {
        let default = rule(rule_id).map_or(Severity::Warn, |r| r.severity);
        let Some(severity) = self.cfg.effective(rule_id, default) else {
            return;
        };
        let n = self.emitted.entry(rule_id).or_insert(0);
        if *n >= self.cfg.max_per_rule {
            match self.overflow.iter_mut().find(|(r, _, _)| *r == rule_id) {
                Some(entry) => entry.2 += 1,
                None => self.overflow.push((rule_id, severity, 1)),
            }
            return;
        }
        *n += 1;
        self.out.push(Diagnostic {
            rule: rule_id,
            severity,
            state,
            message,
        });
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        for (rule_id, severity, count) in self.overflow {
            self.out.push(Diagnostic::global(
                rule_id,
                severity,
                format!(
                    "{count} further finding(s) suppressed (cap {} per rule)",
                    self.cfg.max_per_rule
                ),
            ));
        }
        self.out
    }
}

/// Runs every analysis rule with the default configuration.
pub fn analyze(a: &Automaton) -> Vec<Diagnostic> {
    analyze_with(a, &LintConfig::default())
}

/// Runs every analysis rule under `cfg`.
///
/// Error-level findings come verbatim from
/// [`Automaton::validate_all`]; Warn-level findings from the heuristic
/// passes in this module. Diagnostics are grouped by rule in registry
/// order.
pub fn analyze_with(a: &Automaton, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut em = Emitter::new(cfg);
    for e in a.validate_all() {
        let (rule_id, state) = rule_for_core_error(&e);
        em.emit(rule_id, state, e.to_string());
    }
    let reachable = reachable_from_starts(a);
    check_unreachable(a, &reachable, &mut em);
    check_cannot_report(a, &reachable, &mut em);
    check_report_code_collisions(a, &mut em);
    check_counters(a, &mut em);
    check_shadowed_starts(a, &mut em);
    check_all_input_explosion(a, cfg, &mut em);
    check_nfa_hotspots(a, cfg, &mut em);
    check_bit_residue(a, &mut em);
    check_prefilterable(a, &mut em);
    check_bisimilar_states(a, &mut em);
    check_fuzzy_blowup(a, cfg, &mut em);
    em.finish()
}

/// `fuzzy-blowup`: a Levenshtein mesh keeps most of its error layers
/// enabled on nearly every byte — the Σ insertion tracks between layers
/// are wide classes, so the sustained active frontier scales with
/// `k × pattern length`, not with how often the pattern occurs. Flag any
/// *acyclic* component whose wide-class states (128+ symbols) exceed the
/// budget and make up a substantial share (≥ 1/4, the measured ratio of
/// insertion tracks in a deep mesh) of the component; the acyclicity
/// gate keeps Σ-self-loop machines (SeqMatch-style sliding windows) out,
/// and the share gate keeps large exact machines with a few wildcard
/// positions out.
fn check_fuzzy_blowup(a: &Automaton, cfg: &LintConfig, em: &mut Emitter<'_>) {
    let labels = component_labels(a);
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    if ncomp == 0 {
        return;
    }
    let cyclic = cyclic_components(a, &labels);
    let mut wide = vec![0usize; ncomp];
    let mut states = vec![0usize; ncomp];
    let mut anchor: Vec<Option<StateId>> = vec![None; ncomp];
    for (id, e) in a.iter() {
        let l = labels[id.index()];
        states[l] += 1;
        if anchor[l].is_none() {
            anchor[l] = Some(id);
        }
        if e.class().is_some_and(|c| c.len() >= 128) {
            wide[l] += 1;
        }
    }
    for l in 0..ncomp {
        if !cyclic[l] && wide[l] > cfg.fuzzy_active_budget && wide[l] * 4 >= states[l] {
            em.emit(
                "fuzzy-blowup",
                anchor[l],
                format!(
                    "{} of {} states in this component carry wide (128+ symbol) \
                     error-track classes (budget {}); the mesh sustains that frontier \
                     on every byte — lower the edit budget or split the pattern set",
                    wide[l], states[l], cfg.fuzzy_active_budget
                ),
            );
        }
    }
}

/// `bisimilar-states`: backed by the same preorder as the reduction
/// tier ([`azoo_passes::simulation_partition`]) — one finding per
/// non-singleton bisimulation block, anchored at the block's smallest
/// member.
fn check_bisimilar_states(a: &Automaton, em: &mut Emitter<'_>) {
    let block = azoo_passes::simulation_partition(a);
    let nblocks = block.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut leader: Vec<Option<StateId>> = vec![None; nblocks];
    let mut extra = vec![0usize; nblocks];
    for (id, _) in a.iter() {
        let b = block[id.index()] as usize;
        match leader[b] {
            None => leader[b] = Some(id),
            Some(_) => extra[b] += 1,
        }
    }
    for (b, lead) in leader.iter().enumerate() {
        let (Some(lead), n) = (lead, extra[b]) else {
            continue;
        };
        if n > 0 {
            em.emit(
                "bisimilar-states",
                Some(*lead),
                format!(
                    "{n} state(s) are forward-bisimilar to {lead:?}; \
                     quotient_simulation would merge them"
                ),
            );
        }
    }
}

fn check_unreachable(a: &Automaton, reachable: &[bool], em: &mut Emitter<'_>) {
    for (id, _) in a.iter() {
        if !reachable[id.index()] {
            em.emit(
                "unreachable-state",
                Some(id),
                "no start state can activate this state; it is dead weight".into(),
            );
        }
    }
}

fn check_cannot_report(a: &Automaton, reachable: &[bool], em: &mut Emitter<'_>) {
    if a.state_count() == 0 {
        return;
    }
    let reports = a.report_states();
    if reports.is_empty() {
        em.emit(
            "cannot-report",
            None,
            "automaton has no reporting states; no input can produce a match".into(),
        );
        return;
    }
    // Reverse closure from the reporting states.
    let pred = a.predecessors();
    let mut useful = vec![false; a.state_count()];
    let mut stack = reports;
    for s in &stack {
        useful[s.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for &(p, _) in &pred[s.index()] {
            if !useful[p.index()] {
                useful[p.index()] = true;
                stack.push(p);
            }
        }
    }
    for (id, _) in a.iter() {
        // Unreachable states are already flagged by unreachable-state.
        if reachable[id.index()] && !useful[id.index()] {
            em.emit(
                "cannot-report",
                Some(id),
                "no path from this state reaches a reporting state".into(),
            );
        }
    }
}

fn check_report_code_collisions(a: &Automaton, em: &mut Emitter<'_>) {
    let labels = component_labels(a);
    let mut comps_of_code: HashMap<u32, Vec<usize>> = HashMap::new();
    for (id, e) in a.iter() {
        if let Some(code) = e.report {
            let comps = comps_of_code.entry(code.0).or_default();
            let label = labels[id.index()];
            if !comps.contains(&label) {
                comps.push(label);
            }
        }
    }
    let mut colliding: Vec<(u32, usize)> = comps_of_code
        .into_iter()
        .filter(|(_, comps)| comps.len() > 1)
        .map(|(code, comps)| (code, comps.len()))
        .collect();
    colliding.sort_unstable();
    for (code, n) in colliding {
        em.emit(
            "report-code-collision",
            None,
            format!("report code {code} is emitted by {n} disconnected subgraphs; matches cannot be told apart"),
        );
    }
}

/// Latch-without-reset and counter-target-unreachable.
fn check_counters(a: &Automaton, em: &mut Emitter<'_>) {
    if a.counter_count() == 0 {
        return;
    }
    let pred = a.predecessors();
    let labels = component_labels(a);
    let cyclic = cyclic_components(a, &labels);
    // Per component: STE count and whether every start is StartOfData
    // (with at least one start present).
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut ste_count = vec![0usize; ncomp];
    let mut sod_only = vec![true; ncomp];
    let mut has_start = vec![false; ncomp];
    for (id, e) in a.iter() {
        let l = labels[id.index()];
        if e.is_ste() {
            ste_count[l] += 1;
        }
        match e.start_kind() {
            StartKind::None => {}
            StartKind::StartOfData => has_start[l] = true,
            StartKind::AllInput => {
                has_start[l] = true;
                sod_only[l] = false;
            }
        }
    }
    for (id, e) in a.iter() {
        let azoo_core::ElementKind::Counter { target, mode } = &e.kind else {
            continue;
        };
        let (target, mode) = (*target, *mode);
        let has_reset = pred[id.index()].iter().any(|&(_, p)| p == Port::Reset);
        if mode == azoo_core::CounterMode::Latch && !has_reset {
            em.emit(
                "latch-without-reset",
                Some(id),
                "latching counter has no reset edge; once fired it reports forever".into(),
            );
        }
        // A counter absorbs at most one enable pulse per input symbol. In
        // an acyclic subgraph whose only starts are StartOfData, activity
        // dies out after at most (STE count) symbols, so total pulses are
        // bounded by the subgraph's STE count.
        let l = labels[id.index()];
        if !cyclic[l] && sod_only[l] && has_start[l] && (target as usize) > ste_count[l] {
            em.emit(
                "counter-target-unreachable",
                Some(id),
                format!(
                    "target {target} can never be reached: the subgraph delivers at most {} enable pulses",
                    ste_count[l]
                ),
            );
        }
    }
}

/// Which weakly-connected components contain a directed cycle.
fn cyclic_components(a: &Automaton, labels: &[usize]) -> Vec<bool> {
    let n = a.state_count();
    let ncomp = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut cyclic = vec![false; ncomp];
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        color[root] = GRAY;
        stack.push((root, 0));
        while let Some(frame) = stack.last_mut() {
            let (v, ei) = *frame;
            let succs = a.successors(StateId::new(v));
            if ei < succs.len() {
                frame.1 += 1;
                let t = succs[ei].to.index();
                match color[t] {
                    WHITE => {
                        color[t] = GRAY;
                        stack.push((t, 0));
                    }
                    GRAY => cyclic[labels[t]] = true,
                    _ => {}
                }
            } else {
                color[v] = BLACK;
                stack.pop();
            }
        }
    }
    cyclic
}

fn check_shadowed_starts(a: &Automaton, em: &mut Emitter<'_>) {
    for (id, _) in a.iter() {
        for e in a.successors(id) {
            if e.port == Port::Activate
                && a.element(e.to).is_ste()
                && a.element(e.to).start_kind() == StartKind::AllInput
            {
                em.emit(
                    "shadowed-start",
                    Some(id),
                    format!(
                        "edge into all-input start state {} is a no-op (the target is always enabled)",
                        e.to.index()
                    ),
                );
            }
        }
    }
}

fn check_all_input_explosion(a: &Automaton, cfg: &LintConfig, em: &mut Emitter<'_>) {
    // Expected states matching per symbol under uniform random input:
    // each AllInput STE matches with probability |class|/256 and then
    // enables its successors.
    let mut expected = 0.0f64;
    for (id, e) in a.iter() {
        if e.start_kind() == StartKind::AllInput {
            if let Some(class) = e.class() {
                let p = f64::from(class.len()) / 256.0;
                expected += p * (1.0 + a.successors(id).len() as f64);
            }
        }
    }
    if expected > cfg.active_set_budget {
        em.emit(
            "all-input-explosion",
            None,
            format!(
                "all-input start states alone sustain ~{expected:.0} active states per symbol \
                 (budget {}); expect a large active set on any input",
                cfg.active_set_budget
            ),
        );
    }
}

fn check_nfa_hotspots(a: &Automaton, cfg: &LintConfig, em: &mut Emitter<'_>) {
    for (id, _) in a.iter() {
        let succs = a.successors(id);
        if succs.len() < cfg.hotspot_fanout {
            continue;
        }
        let mut per_byte = [0u32; 256];
        for e in succs {
            if e.port != Port::Activate {
                continue;
            }
            if let Some(class) = a.element(e.to).class() {
                for b in class.iter() {
                    per_byte[b as usize] += 1;
                }
            }
        }
        if let Some((byte, &n)) = per_byte
            .iter()
            .enumerate()
            .max_by_key(|&(_, &n)| n)
            .filter(|&(_, &n)| n as usize >= cfg.hotspot_fanout)
        {
            em.emit(
                "nfa-hotspot",
                Some(id),
                format!(
                    "byte 0x{byte:02x} enables {n} successors at once (threshold {}); \
                     this state predicts active-set blowup",
                    cfg.hotspot_fanout
                ),
            );
        }
    }
}

/// Documents literal-prefilter coverage: every *reporting* component the
/// prefilter cannot gate gets one finding naming the blocker, so
/// `azoo-lint --bench all` shows which parts of the suite fall back to
/// full simulation. Fully gated automata stay clean.
fn check_prefilterable(a: &Automaton, em: &mut Emitter<'_>) {
    use azoo_core::stats::{prefilter_analysis, PrefilterBlock, MIN_PREFILTER_LITERAL};
    for cp in prefilter_analysis(a) {
        if !cp.reporting || cp.is_prefilterable() {
            continue;
        }
        let detail = match (cp.block, cp.weak) {
            (Some(PrefilterBlock::WeakLiteral), Some((state, len))) => format!(
                "required literal at report state {} is only {len} byte(s) long (need >= {MIN_PREFILTER_LITERAL})",
                state.index()
            ),
            (Some(block), _) => block.to_string(),
            (None, _) => continue,
        };
        em.emit(
            "prefilterable",
            Some(cp.first_state),
            format!(
                "component of {} state(s) cannot be literal-prefiltered ({detail}); it falls back to full simulation",
                cp.states
            ),
        );
    }
}

fn check_bit_residue(a: &Automaton, em: &mut Emitter<'_>) {
    let mut bit_level = 0usize;
    let mut byte_level = 0usize;
    for (_, e) in a.iter() {
        if let Some(class) = e.class() {
            if class.is_empty() {
                continue;
            }
            let bitlike = class.iter().all(|b| b <= 1);
            if bitlike {
                bit_level += 1;
            } else {
                byte_level += 1;
            }
        }
    }
    if bit_level > 0 && byte_level > 0 {
        em.emit(
            "bit-residue",
            None,
            format!(
                "{bit_level} bit-level state(s) (classes over {{0,1}}) mixed with {byte_level} \
                 byte-level state(s); striding this machine was likely incomplete"
            ),
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::Level;
    use azoo_core::{CounterMode, SymbolClass};

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    fn chain(word: &[u8], start: StartKind) -> Automaton {
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> = word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, start);
        a.set_report(last, 0);
        a
    }

    #[test]
    fn registry_ids_are_unique_and_kebab() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule id");
        for id in ids {
            assert!(
                id.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
                "{id} is not kebab-case"
            );
        }
    }

    #[test]
    fn clean_automaton_has_no_findings() {
        let a = chain(b"cat", StartKind::AllInput);
        assert!(analyze(&a).is_empty(), "{:?}", analyze(&a));
    }

    #[test]
    fn structural_errors_map_to_rules() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::EMPTY, StartKind::None);
        let t = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
        a.add_edge(s, t);
        a.add_edge(s, t);
        let diags = analyze(&a);
        let rules = rules_of(&diags);
        assert!(rules.contains(&"empty-symbol-class"));
        assert!(rules.contains(&"duplicate-edge"));
        assert!(rules.contains(&"no-start-states"));
        assert!(diags.iter().all(|d| d.severity == Severity::Error
            || matches!(d.rule, "unreachable-state" | "cannot-report")));
    }

    #[test]
    fn unreachable_state_detected() {
        let mut a = chain(b"ab", StartKind::AllInput);
        let orphan = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "unreachable-state" && d.state == Some(orphan)));
    }

    #[test]
    fn cannot_report_detected() {
        let mut a = chain(b"ab", StartKind::AllInput);
        // A reachable dead-end that never leads to a report.
        let dead = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        a.add_edge(StateId::new(0), dead);
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "cannot-report" && d.state == Some(dead)));
    }

    #[test]
    fn reportless_automaton_flagged_globally() {
        let mut a = Automaton::new();
        a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "cannot-report" && d.state.is_none()));
    }

    #[test]
    fn report_code_collision_across_subgraphs() {
        let mut a = chain(b"ab", StartKind::AllInput);
        a.append(&chain(b"cd", StartKind::AllInput)); // both report code 0
        let diags = analyze(&a);
        assert!(rules_of(&diags).contains(&"report-code-collision"));
        // Same code twice inside one subgraph is fine.
        let mut b = chain(b"ab", StartKind::AllInput);
        b.set_report(StateId::new(0), 0);
        assert!(!rules_of(&analyze(&b)).contains(&"report-code-collision"));
    }

    #[test]
    fn latch_without_reset_detected() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.set_report(c, 0);
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "latch-without-reset" && d.state == Some(c)));
        // Adding a reset edge clears the finding.
        let mut b = a.clone();
        let r = b.add_ste(SymbolClass::from_byte(b'r'), StartKind::AllInput);
        b.add_reset_edge(r, c);
        assert!(!rules_of(&analyze(&b)).contains(&"latch-without-reset"));
    }

    #[test]
    fn counter_target_unreachable_detected() {
        // One StartOfData STE feeding a counter that wants 5 pulses: the
        // subgraph dies after one symbol, so 5 is unreachable.
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::StartOfData);
        let c = a.add_counter(5, CounterMode::Pulse);
        a.add_edge(s, c);
        a.set_report(c, 0);
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "counter-target-unreachable" && d.state == Some(c)));
        // With an AllInput start the pulse stream is unbounded: no finding.
        let mut b = Automaton::new();
        let s = b.add_ste(SymbolClass::FULL, StartKind::AllInput);
        let c = b.add_counter(5, CounterMode::Pulse);
        b.add_edge(s, c);
        b.set_report(c, 0);
        assert!(!rules_of(&analyze(&b)).contains(&"counter-target-unreachable"));
        // A cycle also makes the stream unbounded: no finding.
        let mut g = Automaton::new();
        let s = g.add_ste(SymbolClass::FULL, StartKind::StartOfData);
        let t = g.add_ste(SymbolClass::FULL, StartKind::None);
        g.add_edge(s, t);
        g.add_edge(t, t);
        let c = g.add_counter(5, CounterMode::Pulse);
        g.add_edge(t, c);
        g.set_report(c, 0);
        assert!(!rules_of(&analyze(&g)).contains(&"counter-target-unreachable"));
    }

    #[test]
    fn shadowed_start_detected() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::AllInput);
        a.add_edge(s, t);
        a.set_report(t, 0);
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "shadowed-start" && d.state == Some(s)));
    }

    #[test]
    fn all_input_explosion_detected() {
        let mut a = Automaton::new();
        for _ in 0..100 {
            let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
            a.set_report(s, 0);
        }
        // 100 always-matching start states: expected active set 100 > 64.
        assert!(rules_of(&analyze(&a)).contains(&"all-input-explosion"));
        let small = chain(b"abc", StartKind::AllInput);
        assert!(!rules_of(&analyze(&small)).contains(&"all-input-explosion"));
    }

    #[test]
    fn nfa_hotspot_detected() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
        for _ in 0..8 {
            let t = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None);
            a.add_edge(s, t);
            a.set_report(t, 0);
        }
        let diags = analyze(&a);
        assert!(diags
            .iter()
            .any(|d| d.rule == "nfa-hotspot" && d.state == Some(s) && d.message.contains("0x78")));
    }

    #[test]
    fn bit_residue_detected() {
        let mut a = Automaton::new();
        let s = a.add_ste(SymbolClass::from_byte(1), StartKind::AllInput); // bit-level
        let t = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::None); // byte-level
        a.add_edge(s, t);
        a.set_report(t, 0);
        assert!(rules_of(&analyze(&a)).contains(&"bit-residue"));
        // A purely bit-level machine is fine.
        let b = chain(&[0, 1, 1], StartKind::AllInput);
        assert!(!rules_of(&analyze(&b)).contains(&"bit-residue"));
    }

    #[test]
    fn prefilterable_flags_blocked_components_with_reason() {
        // Literal chain: gated, no finding.
        let clean = chain(b"cat", StartKind::AllInput);
        assert!(!rules_of(&analyze(&clean)).contains(&"prefilterable"));
        // Counter component: blocked, one finding naming the counter.
        let mut a = chain(b"cat", StartKind::AllInput);
        let s = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
        let c = a.add_counter(3, CounterMode::Latch);
        a.add_edge(s, c);
        a.add_reset_edge(s, c);
        a.set_report(c, 1);
        let diags = analyze(&a);
        let finding = diags
            .iter()
            .find(|d| d.rule == "prefilterable")
            .expect("counter component must be flagged");
        assert!(finding.message.contains("counter"), "{}", finding.message);
        // A single-byte reporter: blocked with the weak-literal length.
        let mut b = Automaton::new();
        let z = b.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
        b.set_report(z, 0);
        let diags = analyze(&b);
        let finding = diags
            .iter()
            .find(|d| d.rule == "prefilterable")
            .expect("weak literal must be flagged");
        assert!(
            finding.message.contains("only 1 byte"),
            "{}",
            finding.message
        );
        // Non-reporting components are never flagged.
        let mut n = Automaton::new();
        n.add_ste(SymbolClass::from_byte(b'q'), StartKind::AllInput);
        let diags = analyze(&n);
        assert!(!rules_of(&diags).contains(&"prefilterable"));
    }

    #[test]
    fn config_allow_suppresses_and_deny_promotes() {
        let mut a = chain(b"ab", StartKind::AllInput);
        a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        let mut cfg = LintConfig::new();
        cfg.set_level("unreachable-state", Level::Allow);
        assert!(!rules_of(&analyze_with(&a, &cfg)).contains(&"unreachable-state"));
        let mut cfg = LintConfig::new();
        cfg.set_level("unreachable-state", Level::Error);
        let diags = analyze_with(&a, &cfg);
        assert!(diags
            .iter()
            .any(|d| d.rule == "unreachable-state" && d.severity == Severity::Error));
    }

    #[test]
    fn per_rule_cap_folds_overflow() {
        let mut a = chain(b"ab", StartKind::AllInput);
        for _ in 0..40 {
            a.add_ste(SymbolClass::from_byte(b'z'), StartKind::None);
        }
        let diags = analyze(&a);
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "unreachable-state")
            .collect();
        // 16 individual findings plus one suppression summary.
        assert_eq!(unreachable.len(), 17);
        assert!(unreachable.last().unwrap().message.contains("suppressed"));
    }

    #[test]
    fn bisimilar_states_flags_mergeable_duplicates() {
        // Two identical pattern copies with the same report code: every
        // position is pairwise bisimilar.
        let mut a = chain(b"cat", StartKind::AllInput);
        let b = chain(b"cat", StartKind::AllInput);
        a.append(&b);
        let diags = analyze(&a);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "bisimilar-states")
            .collect();
        assert_eq!(hits.len(), 3, "{diags:?}");
        assert_eq!(hits[0].severity, Severity::Warn);
        // Distinct patterns stay silent.
        let mut c = chain(b"cat", StartKind::AllInput);
        c.append(&chain(b"dog", StartKind::AllInput));
        assert!(!rules_of(&analyze(&c)).contains(&"bisimilar-states"));
    }

    #[test]
    fn fuzzy_blowup_flags_deep_meshes_only() {
        use azoo_fuzzy::{fuzzy_from_bytes, EditProfile};
        // k = 3 over a 30-byte pattern: ~k × (len + 1) Σ insertion
        // tracks (93 of 213 states), well past the 64-state budget.
        let (deep, stats) = fuzzy_from_bytes(
            b"suspicious_payload_signature_x",
            3,
            EditProfile::LEVENSHTEIN,
            7,
        )
        .expect("fuzzify");
        assert_eq!(stats.layers, 4);
        let diags = analyze(&deep);
        let finding = diags
            .iter()
            .find(|d| d.rule == "fuzzy-blowup")
            .expect("deep mesh must be flagged");
        assert_eq!(finding.severity, Severity::Warn);
        assert!(finding.message.contains("budget 64"), "{}", finding.message);

        // A shallow mesh stays under budget: no finding.
        let (shallow, _) =
            fuzzy_from_bytes(b"explojt", 1, EditProfile::LEVENSHTEIN, 7).expect("fuzzify");
        assert!(!rules_of(&analyze(&shallow)).contains(&"fuzzy-blowup"));

        // Wide classes alone are not enough: a Σ sliding window with
        // self-loops is cyclic, not an error-layer mesh.
        let mut window = Automaton::new();
        let mut prev: Option<StateId> = None;
        for i in 0..200 {
            let kind = if i == 0 {
                StartKind::AllInput
            } else {
                StartKind::None
            };
            let s = window.add_ste(SymbolClass::FULL, kind);
            window.add_edge(s, s);
            if let Some(p) = prev {
                window.add_edge(p, s);
            }
            prev = Some(s);
        }
        window.set_report(prev.expect("non-empty"), 0);
        assert!(!rules_of(&analyze(&window)).contains(&"fuzzy-blowup"));

        // The budget is configurable: tightening it catches the
        // shallow mesh too.
        let mut cfg = LintConfig::new();
        cfg.fuzzy_active_budget = 4;
        assert!(rules_of(&analyze_with(&shallow, &cfg)).contains(&"fuzzy-blowup"));
    }

    #[test]
    fn core_error_mapping_is_total() {
        let (r, _) = rule_for_core_error(&CoreError::Format("x".into()));
        assert_eq!(r, "parse-error");
        let (r, s) = rule_for_core_error(&CoreError::EmptySymbolClass(StateId::new(3)));
        assert_eq!(r, "empty-symbol-class");
        assert_eq!(s, Some(StateId::new(3)));
        for e in [
            CoreError::InvalidStateId(StateId::new(1)),
            CoreError::NoStartStates,
            CoreError::ZeroCounterTarget(StateId::new(0)),
        ] {
            assert!(rule(rule_for_core_error(&e).0).is_some());
        }
    }
}

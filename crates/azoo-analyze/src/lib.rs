//! Static analysis and linting for homogeneous automata.
//!
//! This crate is the correctness-tooling layer of the workspace: it
//! finds automata that are structurally broken (Error) or almost
//! certainly wrong or pathological (Warn) *before* they reach an
//! engine, and it differentially verifies that `azoo-passes`
//! transformations preserve the language they claim to preserve.
//!
//! Three entry points:
//!
//! * [`analyze`] / [`analyze_with`] — run every lint rule over an
//!   [`Automaton`](azoo_core::Automaton), returning [`Diagnostic`]s with
//!   stable rule ids ([`RULES`] is the registry).
//! * [`verify_pass`] — compare an automaton before and after a
//!   transformation: structure, report-code set, and sampled language.
//! * [`to_json_report`] — machine-readable rendering for tooling
//!   (`azoo-lint --json`).
//!
//! Error-level structural rules share one implementation with
//! `Automaton::validate` (both delegate to `Automaton::validate_all`),
//! so the linter and the engines can never disagree about what is
//! fatally malformed.
//!
//! # Example
//!
//! ```
//! use azoo_analyze::{analyze, Severity};
//! use azoo_core::{Automaton, StartKind, SymbolClass};
//!
//! let mut a = Automaton::new();
//! let (_, last) = a.add_chain(
//!     &[SymbolClass::from_byte(b'o'), SymbolClass::from_byte(b'k')],
//!     StartKind::AllInput,
//! );
//! a.set_report(last, 0);
//! assert!(analyze(&a).is_empty());
//!
//! // An orphan state draws a Warn-level diagnostic.
//! a.add_ste(SymbolClass::from_byte(b'y'), StartKind::None);
//! let diags = analyze(&a);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "unreachable-state");
//! assert_eq!(diags[0].severity, Severity::Warn);
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

pub mod config;
pub mod diag;
pub mod rules;
pub mod verify;

pub use config::{Level, LintConfig};
pub use diag::{to_json_report, Diagnostic, Severity};
pub use rules::{analyze, analyze_with, rule, rule_for_core_error, Rule, RULES};
pub use verify::{verify_pass, InputMap, VerifySpec};

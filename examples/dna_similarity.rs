//! DNA string-similarity scenario (the Hamming / Levenshtein benchmark
//! domain): build mismatch-tolerant filters for guide sequences, scan a
//! genome stream, and run a miniature version of the paper's
//! profile-driven filter-length selection (Figure 1 / Table V).
//!
//! Run with: `cargo run --release --example dna_similarity`

use automatazoo::engines::{CollectSink, CountSink, Engine, NfaEngine};
use automatazoo::workloads::dna;
use automatazoo::zoo::{hamming, levenshtein};

fn main() {
    // A guide pattern and a genome with near-matches planted.
    let guide = dna::random_dna(42, 24);
    println!("guide: {}", String::from_utf8_lossy(&guide));

    let mut exact = guide.clone();
    let mut one_sub = guide.clone();
    one_sub[10] = flip(one_sub[10]);
    let mut one_del = guide.clone();
    one_del.remove(12);
    exact.truncate(24);
    let (genome, offsets) =
        dna::dna_with_planted(7, 200_000, &[exact, one_sub.clone(), one_del.clone()]);
    println!("genome: {} bp, planted sites at {offsets:?}", genome.len());

    // Hamming filter (substitutions only) vs Levenshtein (also indels).
    let ham = hamming::hamming_filter(&guide, 2, 0);
    let lev = levenshtein::levenshtein_filter(&guide, 2, 0);
    println!(
        "\nhamming mesh: {} states / {} edges; levenshtein mesh: {} states / {} edges",
        ham.state_count(),
        ham.edge_count(),
        lev.state_count(),
        lev.edge_count()
    );
    for (name, automaton) in [("hamming", &ham), ("levenshtein", &lev)] {
        let mut engine = NfaEngine::new(automaton).expect("valid");
        let mut sink = CollectSink::new();
        let profile = engine.scan_profiled(&genome, &mut sink);
        println!(
            "{name:>12}: {} hits, active set {:.1} states/symbol",
            sink.reports().len(),
            profile.active_set()
        );
    }
    println!("(levenshtein also catches the deletion variant)");

    // Miniature profile-driven length selection (the Figure 1 sweep):
    // find the shortest pattern length whose filters report less than
    // once per million random base-pairs.
    println!("\nprofile-driven selection for d = 2:");
    let input = dna::random_dna(1, 200_000);
    for l in [8, 10, 12, 14, 16, 18] {
        let mut total = 0u64;
        let trials = 5;
        for t in 0..trials {
            let pattern = dna::random_dna(100 + t, l);
            let f = hamming::hamming_filter(&pattern, 2, 0);
            let mut engine = NfaEngine::new(&f).expect("valid");
            let mut sink = CountSink::new();
            engine.scan(&input, &mut sink);
            total += sink.count();
        }
        let per_million = total as f64 * 1e6 / (trials as f64 * input.len() as f64);
        println!("  l = {l:>2}: {per_million:>10.2} reports / million bp");
    }
    println!("pick the first l below 1.0 — that is how Table V chose 18x3, 22x5, 31x10");
}

fn flip(base: u8) -> u8 {
    match base {
        b'A' => b'C',
        b'C' => b'G',
        b'G' => b'T',
        _ => b'A',
    }
}

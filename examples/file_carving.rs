//! File-carving scenario (Section IX-B): author sub-byte patterns as
//! bit-level automata, validate cross-byte bit-fields (the MS-DOS
//! timestamp), 8-stride them into byte automata, and carve a corrupted
//! filesystem image — then export the strided automaton to Graphviz.
//!
//! Run with: `cargo run --release --example file_carving`

use automatazoo::core::dot;
use automatazoo::engines::{CollectSink, Engine, NfaEngine};
use automatazoo::passes::{stride8, stride_bits};
use automatazoo::regex::{compile_pattern, Flags, Pattern};
use automatazoo::workloads::media::{carving_stimulus, CarvingConfig};
use automatazoo::zoo::file_carving::{self, Carved};

fn main() {
    // 1. The zip local-file-header bit pattern with full DOS-timestamp
    //    validation (seconds <= 29, minutes <= 59, hours <= 23, month
    //    1..=12 — fields that cross byte boundaries).
    let bit_ast = file_carving::zip_local_header_bits();
    let pattern = Pattern {
        ast: bit_ast,
        anchored_start: false,
        anchored_end: false,
        flags: Flags::default(),
    };
    let bit_nfa = compile_pattern(&pattern, 0).expect("well-formed");
    println!(
        "bit-level zip-header automaton: {} states over the {{0,1}} alphabet",
        bit_nfa.state_count()
    );

    // 2. Stride it at increasing widths.
    for k in [2, 4, 8] {
        let strided = stride_bits(&bit_nfa, k).expect("bit-level");
        println!(
            "  {k}-bit stride: {} states, {} edges (alphabet {})",
            strided.state_count(),
            strided.edge_count(),
            1 << k
        );
    }
    let byte_nfa = stride8(&bit_nfa).expect("bit-level");

    // 3. Carve a 512 KiB corrupted filesystem image with the full
    //    nine-pattern benchmark automaton.
    let automaton = file_carving::build_automaton();
    let image = carving_stimulus(
        7,
        &CarvingConfig {
            len: 512 * 1024,
            ..CarvingConfig::default()
        },
    );
    let mut engine = NfaEngine::new(&automaton).expect("valid");
    let mut sink = CollectSink::new();
    engine.scan(&image, &mut sink);
    println!(
        "\ncarved {} artifacts from {} bytes:",
        sink.reports().len(),
        image.len()
    );
    let mut counts = std::collections::BTreeMap::new();
    for report in sink.reports() {
        *counts.entry(report.code.0).or_insert(0usize) += 1;
    }
    let label = |code: u32| match code {
        c if c == Carved::ZipLocalHeader as u32 => "zip local header (validated timestamp)",
        c if c == Carved::ZipEndOfDirectory as u32 => "zip end-of-central-directory",
        c if c == Carved::Mpeg2Pack as u32 => "MPEG-2 pack header (marker bits)",
        c if c == Carved::Mpeg2VideoPes as u32 => "MPEG-2 video PES",
        c if c == Carved::Mpeg2System as u32 => "MPEG-2 system header",
        c if c == Carved::MpegProgramEnd as u32 => "MPEG program end",
        c if c == Carved::Mp4Ftyp as u32 => "MP4 ftyp box",
        c if c == Carved::Email as u32 => "e-mail address",
        _ => "SSN",
    };
    for (code, n) in counts {
        println!("  {:>4} x {}", n, label(code));
    }

    // 4. Export a small automaton to Graphviz for inspection.
    let pes = {
        let p = Pattern {
            ast: file_carving::mpeg2_pes_bits(),
            anchored_start: false,
            anchored_end: false,
            flags: Flags::default(),
        };
        stride8(&compile_pattern(&p, 3).expect("well-formed")).expect("bit-level")
    };
    let rendered = dot::to_dot(&pes, "mpeg2_pes");
    let path = std::env::temp_dir().join("mpeg2_pes.dot");
    std::fs::write(&path, &rendered).expect("temp dir writable");
    println!(
        "\nwrote {} ({} bytes) — render with: dot -Tsvg {}",
        path.display(),
        rendered.len(),
        path.display()
    );
    let _ = byte_nfa;
}

//! Virus scanning scenario (the ClamAV benchmark domain): build a
//! signature database, convert it to automata, assemble a disk image
//! with two planted infections, and scan it — comparing the
//! VASim-equivalent NFA engine against the Hyperscan-style lazy DFA.
//!
//! Run with: `cargo run --release --example virus_scan`

use std::time::Instant;

use automatazoo::engines::{CollectSink, Engine, LazyDfaEngine, NfaEngine};
use automatazoo::workloads::disk::{disk_image, DiskConfig};
use automatazoo::zoo::clamav;

fn main() {
    // Build a 500-signature database (scaled down from the 33k of the
    // full benchmark so the example runs in moments).
    let (sigs, ruleset) = clamav::compile_database(0xC1A3, 500);
    println!(
        "signature database: {} signatures -> {} automaton states",
        ruleset.compiled,
        ruleset.automaton.state_count()
    );

    // Assemble a 2 MB disk image with two planted virus bodies.
    let mut rng = automatazoo::workloads::rng(7);
    let planted: Vec<Vec<u8>> = sigs
        .iter()
        .take(2)
        .map(|s| clamav::instantiate(s, &mut rng))
        .collect();
    let (image, offsets) = disk_image(
        99,
        &DiskConfig {
            len: 2 << 20,
            planted,
        },
    );
    println!(
        "disk image: {} bytes, infections at {:?}",
        image.len(),
        offsets
    );

    // Scan with both engines and time them.
    let mut nfa = NfaEngine::new(&ruleset.automaton).expect("valid");
    let mut sink = CollectSink::new();
    let t = Instant::now();
    let profile = nfa.scan_profiled(&image, &mut sink);
    let nfa_time = t.elapsed();
    println!(
        "\nNFA engine: {:?} ({:.1} MB/s), active set {:.1}",
        nfa_time,
        image.len() as f64 / nfa_time.as_secs_f64() / 1e6,
        profile.active_set()
    );
    report_detections(&sink, &image);

    let mut dfa = LazyDfaEngine::new(&ruleset.automaton).expect("no counters");
    let mut sink2 = CollectSink::new();
    let t = Instant::now();
    dfa.scan(&image, &mut sink2);
    let dfa_time = t.elapsed();
    println!(
        "lazy-DFA engine: {:?} ({:.1} MB/s), {} DFA states cached, {} flushes",
        dfa_time,
        image.len() as f64 / dfa_time.as_secs_f64() / 1e6,
        dfa.cached_states(),
        dfa.flush_count()
    );
    assert_eq!(sink.sorted_reports(), sink2.sorted_reports());
    println!("engines agree on all {} detections", sink.reports().len());
}

fn report_detections(sink: &CollectSink, _image: &[u8]) {
    let mut seen = std::collections::BTreeSet::new();
    for report in sink.reports() {
        if seen.insert(report.code) {
            println!(
                "  infection: signature #{} at byte offset {}",
                report.code, report.offset
            );
        }
    }
    if seen.is_empty() {
        println!("  clean (no detections)");
    }
}

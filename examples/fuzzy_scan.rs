//! Approximate-matching scenario: compile a signature at edit distance
//! `k` with `azoo-fuzzy`, scan a stream carrying a misspelled
//! occurrence, and show how the edit budget trades states for recall
//! (the README "Approximate matching" walkthrough).
//!
//! Run with: `cargo run --release --example fuzzy_scan`

use automatazoo::engines::{CollectSink, Engine, NfaEngine};
use automatazoo::fuzzy::{fuzzy_from_bytes, EditProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let haystack = b"an explojt, slightly misspelled";

    for k in 0..=2usize {
        let (mesh, stats) = fuzzy_from_bytes(b"exploit", k, EditProfile::LEVENSHTEIN, 42)?;
        let mut engine = NfaEngine::new(&mesh)?;
        let mut sink = CollectSink::new();
        engine.scan(haystack, &mut sink);
        println!(
            "k = {k}: {} states, {} error layers, {} report(s)",
            stats.states,
            stats.layers,
            sink.reports().len()
        );
        if k == 0 {
            assert!(sink.reports().is_empty(), "explojt is not exploit");
        } else {
            assert!(!sink.reports().is_empty(), "one substitution, k >= 1");
        }
    }

    // Hamming (substitution-only) budgets reject insertions/deletions:
    // the same k = 1 budget no longer absorbs a dropped byte.
    let (ham, _) = fuzzy_from_bytes(b"exploit", 1, EditProfile::HAMMING, 7)?;
    let mut engine = NfaEngine::new(&ham)?;
    let mut sink = CollectSink::new();
    engine.scan(b"an explot (one byte deleted)", &mut sink);
    assert!(sink.reports().is_empty(), "deletion needs the full profile");
    println!("hamming k = 1: deletion correctly missed");
    Ok(())
}

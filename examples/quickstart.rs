//! Quickstart: compile patterns to automata, scan input with every
//! engine, and inspect automata statistics and transformations.
//!
//! Run with: `cargo run --release --example quickstart`

use automatazoo::core::AutomatonStats;
use automatazoo::engines::{BitParallelEngine, CollectSink, Engine, LazyDfaEngine, NfaEngine};
use automatazoo::passes::{merge_prefixes, remove_dead};
use automatazoo::regex::compile_ruleset;

fn main() {
    // 1. Compile a small ruleset. Each rule reports with its index.
    let rules = [
        r"/virus_[0-9]{4}/i",
        r"/GET \/admin[a-z_\/]*\.php/",
        r"/\x90{8,16}/s", // NOP sled
        r"/suspicious|malicious/i",
    ];
    let ruleset = compile_ruleset(rules);
    println!(
        "compiled {} rules into {} states / {} edges",
        ruleset.compiled,
        ruleset.automaton.state_count(),
        ruleset.automaton.edge_count()
    );

    // 2. Static statistics (the AutomataZoo Table I columns).
    let stats = AutomatonStats::compute(&ruleset.automaton);
    println!(
        "subgraphs: {}, avg size {:.1} ± {:.1}, edges/node {:.2}",
        stats.subgraphs, stats.avg_subgraph_size, stats.stddev_subgraph_size, stats.edges_per_node
    );

    // 3. Optimize: prefix merging (the "compressed states" metric).
    let (merged, mstats) = merge_prefixes(&ruleset.automaton);
    let pruned = remove_dead(&merged);
    println!(
        "prefix merge: {} -> {} states ({:.0}% compression)",
        mstats.states_before,
        pruned.state_count(),
        100.0 * mstats.compression_factor()
    );

    // 4. Scan with the engine portfolio.
    let input: &[u8] = b"GET /admin/panel.php HTTP/1.1\r\n\
        payload=VIRUS_2024 this is SUSPICIOUS content \
        \x90\x90\x90\x90\x90\x90\x90\x90\x90\x90 shellcode";
    let mut nfa = NfaEngine::new(&ruleset.automaton).expect("valid automaton");
    let mut dfa = LazyDfaEngine::new(&ruleset.automaton).expect("no counters");
    let mut sink = CollectSink::new();
    let profile = nfa.scan_profiled(input, &mut sink);
    println!(
        "\nNFA engine: {} reports, active set {:.2} states/symbol",
        sink.reports().len(),
        profile.active_set()
    );
    for report in sink.reports() {
        println!(
            "  offset {:>3}  rule {}  ({})",
            report.offset, report.code, rules[report.code.0 as usize]
        );
    }
    let mut sink2 = CollectSink::new();
    dfa.scan(input, &mut sink2);
    assert_eq!(sink.sorted_reports(), sink2.sorted_reports());
    println!(
        "lazy-DFA engine agrees ({} cached DFA states, {} alphabet classes)",
        dfa.cached_states(),
        dfa.alphabet_classes()
    );

    // 5. Chain-shaped automata can also use the bit-parallel engine.
    let mut literal = automatazoo::core::Automaton::new();
    let (_, last) = literal.add_chain(
        &b"virus_"
            .iter()
            .map(|&b| automatazoo::core::SymbolClass::from_byte(b).ascii_case_fold())
            .collect::<Vec<_>>(),
        automatazoo::core::StartKind::AllInput,
    );
    literal.set_report(last, 0);
    let mut bp = BitParallelEngine::new(&literal).expect("chain-shaped");
    let mut sink3 = CollectSink::new();
    bp.scan(input, &mut sink3);
    println!(
        "bit-parallel engine found the literal {} time(s) in {} words/symbol",
        sink3.reports().len(),
        bp.word_count()
    );
}

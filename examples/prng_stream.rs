//! Pseudo-random number generation scenario (the AP PRNG benchmark
//! domain): run a field of Markov-chain automata on uniform random
//! bytes, extract a bit stream from their face-0 reports, and check its
//! statistical quality.
//!
//! Run with: `cargo run --release --example prng_stream`

use automatazoo::engines::{CollectSink, Engine, NfaEngine};
use automatazoo::zoo::ap_prng::{bit_quality, build, extract_bits, ApPrngParams};

fn main() {
    for sides in [4, 8] {
        let (automaton, input) = build(&ApPrngParams {
            sides,
            chains: 256,
            input_len: 1 << 18,
            seed: 0xD1CE,
        });
        println!(
            "{sides}-sided: {} chains, {} automaton states, {} input bytes",
            256,
            automaton.state_count(),
            input.len()
        );
        let mut engine = NfaEngine::new(&automaton).expect("valid");
        let mut sink = CollectSink::new();
        let t = std::time::Instant::now();
        engine.scan(&input, &mut sink);
        let dt = t.elapsed();
        let pairs: Vec<(u64, u32)> = sink
            .reports()
            .iter()
            .map(|r| (r.offset, r.code.0))
            .collect();
        let bits = extract_bits(&pairs, input.len());
        println!(
            "  generated {} bits in {dt:?} ({:.1} kbit/s)",
            bits.len(),
            bits.len() as f64 / dt.as_secs_f64() / 1e3
        );

        // Quality checks (the library's BitQuality metrics).
        let q = bit_quality(&bits);
        println!(
            "  monobit balance: {:.4} (ideal 0.5), serial agreement: {:.4}, \
             longest run: {}",
            q.ones_fraction, q.serial_agreement, q.longest_run
        );
        println!(
            "  byte chi-square: {:.1} (255 dof; < ~310 passes at alpha 0.01)\n",
            q.byte_chi_square
        );
    }
}

//! # automatazoo
//!
//! A from-scratch Rust reproduction of **AutomataZoo: A Modern Automata
//! Processing Benchmark Suite** (Wadden et al., IISWC 2018), including
//! every substrate the paper depends on: the homogeneous automata model,
//! a VASim-equivalent simulation/optimization environment, a
//! Hyperscan-style regex front end and CPU engine portfolio, automata
//! transformations (prefix merging, 8-striding, widening), the Random
//! Forest ML substrate, synthetic workload generators, and all 24
//! benchmark generators.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`core`] — automata data model ([`azoo_core`])
//! * [`analyze`] — lint rules & pass-invariant verification ([`azoo_analyze`])
//! * [`passes`] — optimization & transformation passes ([`azoo_passes`])
//! * [`regex`] — PCRE-subset → Glushkov NFA compiler ([`azoo_regex`])
//! * [`engines`] — NFA / lazy-DFA / bit-parallel engines ([`azoo_engines`])
//! * [`fuzzy`] — bounded edit-distance automaton construction ([`azoo_fuzzy`])
//! * [`oracle`] — cross-engine differential testing oracle ([`azoo_oracle`])
//! * [`serve`] — multi-tenant streaming scan service ([`azoo_serve`])
//! * [`simd`] — vectorized scanning kernels with runtime CPU dispatch ([`azoo_simd`])
//! * [`workloads`] — seeded input generators ([`azoo_workloads`])
//! * [`ml`] — decision trees & random forests ([`azoo_ml`])
//! * [`zoo`] — the 24 benchmarks ([`azoo_zoo`])
//!
//! # Quickstart
//!
//! ```
//! use automatazoo::engines::{CollectSink, Engine, NfaEngine};
//! use automatazoo::regex::compile;
//!
//! let automaton = compile(r"/virus_[0-9]{4}/i", 0)?;
//! let mut engine = NfaEngine::new(&automaton).unwrap();
//! let mut sink = CollectSink::new();
//! engine.scan(b"...VIRUS_1337 detected...", &mut sink);
//! assert_eq!(sink.reports().len(), 1);
//! # Ok::<(), automatazoo::regex::RegexError>(())
//! ```
//!
//! # Building a published benchmark
//!
//! ```
//! use automatazoo::zoo::{BenchmarkId, Scale};
//!
//! let bench = BenchmarkId::ApPrng4.build(Scale::Tiny);
//! assert!(bench.automaton.state_count() >= 10 * 17); // ten ~20-state chains
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

pub use azoo_analyze as analyze;
pub use azoo_core as core;
pub use azoo_engines as engines;
pub use azoo_fuzzy as fuzzy;
pub use azoo_ml as ml;
pub use azoo_oracle as oracle;
pub use azoo_passes as passes;
pub use azoo_regex as regex;
pub use azoo_serve as serve;
pub use azoo_simd as simd;
pub use azoo_workloads as workloads;
pub use azoo_zoo as zoo;

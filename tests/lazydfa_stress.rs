//! Lazy-DFA cache-flush stress test.
//!
//! The lazy DFA interns determinized states on demand and, when the
//! cache bound is hit, flushes the whole table and re-interns from the
//! current state. Tiny bounds (`max_states` of 2 or 3) force a flush
//! every few symbols on any non-trivial pattern, so these runs hammer
//! the flush/re-intern path; 17 exercises the mixed regime where some
//! states survive. Every run must stay byte-identical to the NFA
//! reference, in block mode and across chunked feeds.

use automatazoo::core::Automaton;
use automatazoo::engines::{
    CollectSink, Engine, LazyDfaEngine, NfaEngine, Report, StreamingEngine,
};
use automatazoo::regex::compile;

/// The ten golden patterns (same set the lint suite compiles), with an
/// input that mixes full matches, near-misses, and noise for each.
const GOLDENS: &[(&str, &[u8])] = &[
    (r"cat", b"the cat sat on the catalog, concatenated"),
    (r"/virus_[0-9]{4}/i", b"VIRUS_1337 virus_007 Virus_2026!"),
    (r"a|b|cd", b"xaxbxcxdxcdxx"),
    (r"x[^\n]*y", b"x123y\nxy\nx no end\nxxyy"),
    (r"(ab)+c?", b"ababc ab abab ababababc"),
    (r"\x00\xff", b"\x00\xff\x00\x00\xff\xff\x00\xff"),
    (r"[a-fA-F0-9]{2,8}", b"deadbeef 0F zz 123456789abcdef g00d"),
    (r"^anchored$", b"anchored"),
    (r".\w\s\d", b"aa 1 b_\t9 x. 4!"),
    (
        r"(foo|bar)(baz)*qux",
        b"fooqux barbazqux foobazbazqux bazqux",
    ),
];

fn block(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

fn chunked(engine: &mut dyn StreamingEngine, input: &[u8], chunk: usize) -> Vec<Report> {
    let mut sink = CollectSink::new();
    let mut fed = 0;
    for piece in input.chunks(chunk) {
        fed += piece.len();
        engine.feed(piece, fed == input.len(), &mut sink);
    }
    if input.is_empty() {
        engine.feed(b"", true, &mut sink);
    }
    sink.sorted_reports()
}

fn golden_automata() -> Vec<(String, Automaton)> {
    GOLDENS
        .iter()
        .enumerate()
        .map(|(code, &(pat, _))| {
            (
                pat.to_string(),
                compile(pat, code as u32).expect("golden pattern compiles"),
            )
        })
        .collect()
}

#[test]
fn tiny_cache_bounds_match_the_nfa_in_block_mode() {
    for (code, &(pat, input)) in GOLDENS.iter().enumerate() {
        let a = compile(pat, code as u32).expect("golden pattern compiles");
        let reference = block(&mut NfaEngine::new(&a).expect("nfa builds"), input);
        for max_states in [2, 3, 17] {
            let mut dfa = LazyDfaEngine::with_max_states(&a, max_states).expect("dfa builds");
            assert_eq!(
                block(&mut dfa, input),
                reference,
                "{pat:?} @ max_states {max_states}"
            );
        }
    }
}

#[test]
fn tiny_cache_bounds_match_the_nfa_across_chunked_feeds() {
    // Chunk sizes chosen to land flushes both inside and between feeds.
    for (code, &(pat, input)) in GOLDENS.iter().enumerate() {
        let a = compile(pat, code as u32).expect("golden pattern compiles");
        let reference = block(&mut NfaEngine::new(&a).expect("nfa builds"), input);
        for max_states in [2, 3, 17] {
            for chunk in [1, 3, 7] {
                let mut dfa = LazyDfaEngine::with_max_states(&a, max_states).expect("dfa builds");
                assert_eq!(
                    chunked(&mut dfa, input, chunk),
                    reference,
                    "{pat:?} @ max_states {max_states}, chunk {chunk}"
                );
            }
        }
    }
}

#[test]
fn repeated_scans_after_flushes_stay_deterministic() {
    // A flushed-and-rebuilt cache must not depend on scan history: the
    // same engine instance rescanning the concatenated golden corpus
    // must produce the same stream every time.
    let corpus: Vec<u8> = GOLDENS
        .iter()
        .flat_map(|&(_, input)| input.iter().copied().chain(*b" "))
        .collect();
    for (pat, a) in golden_automata() {
        let reference = block(&mut NfaEngine::new(&a).expect("nfa builds"), &corpus);
        let mut dfa = LazyDfaEngine::with_max_states(&a, 3).expect("dfa builds");
        for round in 0..3 {
            assert_eq!(block(&mut dfa, &corpus), reference, "{pat:?} round {round}");
        }
    }
}

//! Differential testing of the Glushkov compiler against a naive
//! backtracking reference matcher over the same syntax tree.
//!
//! The reference derives match end-positions directly from the AST by
//! recursion; the compiled automaton must report exactly those positions
//! under match-anywhere search semantics.

use std::collections::BTreeSet;

use automatazoo::core::SymbolClass;
use automatazoo::engines::{CollectSink, Engine, NfaEngine};
use automatazoo::regex::{compile_pattern, Ast, Flags, Pattern};
use proptest::prelude::*;

/// All positions `end` such that `ast` matches `input[start..end]`.
fn ends_from(ast: &Ast, input: &[u8], start: usize) -> BTreeSet<usize> {
    match ast {
        Ast::Empty => [start].into(),
        Ast::Class(c) => {
            if input.get(start).is_some_and(|&b| c.contains(b)) {
                [start + 1].into()
            } else {
                BTreeSet::new()
            }
        }
        Ast::Concat(parts) => {
            let mut fronts: BTreeSet<usize> = [start].into();
            for part in parts {
                let mut next = BTreeSet::new();
                for f in fronts {
                    next.extend(ends_from(part, input, f));
                }
                fronts = next;
                if fronts.is_empty() {
                    break;
                }
            }
            fronts
        }
        Ast::Alt(branches) => branches
            .iter()
            .flat_map(|b| ends_from(b, input, start))
            .collect(),
        Ast::Star(inner) => {
            // Fixed point of repeated application.
            let mut all: BTreeSet<usize> = [start].into();
            let mut frontier: BTreeSet<usize> = [start].into();
            while !frontier.is_empty() {
                let mut fresh = BTreeSet::new();
                for f in &frontier {
                    for e in ends_from(inner, input, *f) {
                        if e > *f && all.insert(e) {
                            fresh.insert(e);
                        }
                    }
                }
                frontier = fresh;
            }
            all
        }
    }
}

/// Reference search: offsets (of the final consumed symbol) where some
/// non-empty match of `ast` ends, starting anywhere.
fn reference_offsets(ast: &Ast, input: &[u8]) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    for start in 0..=input.len() {
        for end in ends_from(ast, input, start) {
            if end > start {
                out.insert((end - 1) as u64);
            }
        }
    }
    out
}

/// Strategy: random ASTs over the alphabet {a, b, c}.
fn arb_ast() -> impl Strategy<Value = Ast> {
    let class = proptest::collection::vec(prop::bool::ANY, 3).prop_map(|bits| {
        let mut c = SymbolClass::new();
        for (i, &on) in bits.iter().enumerate() {
            if on {
                c.insert(b'a' + i as u8);
            }
        }
        if c.is_empty() {
            c.insert(b'a');
        }
        Ast::Class(c)
    });
    class.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Ast::Concat),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Ast::Alt),
            inner.prop_map(|a| Ast::Star(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn glushkov_matches_reference(
        ast in arb_ast(),
        input in proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'b', b'c']), 0..40),
    ) {
        let pattern = Pattern {
            ast: ast.clone(),
            anchored_start: false,
            anchored_end: false,
            flags: Flags::default(),
        };
        match compile_pattern(&pattern, 0) {
            Err(_) => {
                // Only nullable patterns are rejected.
                prop_assert!(ast.nullable());
            }
            Ok(automaton) => {
                let mut engine = NfaEngine::new(&automaton).expect("valid");
                let mut sink = CollectSink::new();
                engine.scan(&input, &mut sink);
                let got: BTreeSet<u64> =
                    sink.reports().iter().map(|r| r.offset).collect();
                prop_assert_eq!(got, reference_offsets(&ast, &input));
            }
        }
    }

    #[test]
    fn anchored_glushkov_matches_reference(
        ast in arb_ast(),
        input in proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'b', b'c']), 0..25),
    ) {
        let pattern = Pattern {
            ast: ast.clone(),
            anchored_start: true,
            anchored_end: false,
            flags: Flags::default(),
        };
        if let Ok(automaton) = compile_pattern(&pattern, 0) {
            let mut engine = NfaEngine::new(&automaton).expect("valid");
            let mut sink = CollectSink::new();
            engine.scan(&input, &mut sink);
            let got: BTreeSet<u64> = sink.reports().iter().map(|r| r.offset).collect();
            // Anchored: only matches starting at 0.
            let expected: BTreeSet<u64> = ends_from(&ast, &input, 0)
                .into_iter()
                .filter(|&e| e > 0)
                .map(|e| (e - 1) as u64)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}

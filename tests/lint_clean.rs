//! The lint-clean suite: every shipped automaton — all 27 generated zoo
//! benchmarks and a spread of `azoo-regex`-compiled patterns — must
//! produce **zero Error-level** diagnostics from `azoo-analyze`.
//!
//! Warnings are allowed (Snort's fan-out hotspots and the Random Forest
//! report-code reuse are real properties of the paper's benchmarks, and
//! flagging them is the point), but an Error here means a generator
//! builds a structurally broken machine.

use automatazoo::analyze::{analyze, Severity};
use automatazoo::core::Automaton;
use automatazoo::zoo::{BenchmarkId, Scale};

fn errors_of(a: &Automaton) -> Vec<String> {
    analyze(a)
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(ToString::to_string)
        .collect()
}

#[test]
fn every_zoo_benchmark_is_error_clean() {
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let errors = errors_of(&bench.automaton);
        assert!(
            errors.is_empty(),
            "{} has Error-level findings: {errors:?}",
            id.name()
        );
    }
}

#[test]
fn compiled_regex_examples_are_error_clean() {
    // One pattern per syntax feature the compiler supports.
    let patterns = [
        r"cat",
        r"/virus_[0-9]{4}/i",
        r"a|b|cd",
        r"x[^\n]*y",
        r"(ab)+c?",
        r"\x00\xff",
        r"[a-fA-F0-9]{2,8}",
        r"^anchored$",
        r".\w\s\d",
        r"(foo|bar)(baz)*qux",
    ];
    for (i, pat) in patterns.iter().enumerate() {
        let a = automatazoo::regex::compile(pat, u32::try_from(i).expect("small"))
            .unwrap_or_else(|e| panic!("{pat} failed to compile: {e}"));
        let errors = errors_of(&a);
        assert!(errors.is_empty(), "{pat} lints dirty: {errors:?}");
    }
}

#[test]
fn benchmarks_stay_error_clean_after_standard_passes() {
    // The optimization pipeline must not introduce structural breakage
    // either; spot-check a representative subset (regex-heavy, counter,
    // and table-driven machines).
    use automatazoo::passes::{merge_prefixes, reduce, remove_dead};
    for id in [
        BenchmarkId::Snort,
        BenchmarkId::Hamming18x3,
        BenchmarkId::ApPrng4,
        BenchmarkId::RandomForestA,
    ] {
        let bench = id.build(Scale::Tiny);
        let (merged, _) = merge_prefixes(&bench.automaton);
        let pruned = remove_dead(&merged);
        let errors = errors_of(&pruned);
        assert!(
            errors.is_empty(),
            "{} lints dirty after passes: {errors:?}",
            id.name()
        );
        let (reduced, _) = reduce(&pruned);
        let errors = errors_of(&reduced);
        assert!(
            errors.is_empty(),
            "{} lints dirty after reduction: {errors:?}",
            id.name()
        );
    }
}

//! Database artifact acceptance: every one of the 27 benchmarks must
//! survive `compile → serialize → deserialize` with a report-identical
//! machine on the other side, and corrupted artifacts must fail with
//! the documented typed errors.

use automatazoo::engines::CollectSink;
use automatazoo::serve::{Db, DbConfig, DbError};
use automatazoo::zoo::{BenchmarkId, Scale};

fn session_reports(db: &Db, input: &[u8]) -> Vec<(u64, u32)> {
    let mut engine = db.checkout();
    let mut sink = CollectSink::new();
    engine.feed(input, true, &mut sink);
    db.checkin(engine);
    let mut reps: Vec<(u64, u32)> = sink
        .reports()
        .iter()
        .map(|r| (r.offset, r.code.0))
        .collect();
    reps.sort_unstable();
    reps
}

/// All 27 benchmarks round-trip report-identically at tiny scale.
#[test]
fn all_benchmarks_round_trip_report_identical() {
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let input = bench.input;
        let db = Db::compile(bench.automaton, DbConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", id.name()));
        let artifact = db.serialize();
        let back = Db::deserialize(&artifact)
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", id.name()));

        assert_eq!(back.content_hash(), db.content_hash(), "{}", id.name());
        assert_eq!(back.cache_key(), db.cache_key(), "{}", id.name());
        assert_eq!(back.engine_choice(), db.engine_choice(), "{}", id.name());
        assert_eq!(
            session_reports(&back, &input),
            session_reports(&db, &input),
            "{}: reloaded database diverged",
            id.name()
        );
    }
}

/// Version and hash tampering on a real benchmark artifact produce the
/// typed errors the serving layer routes to clients.
#[test]
fn tampered_benchmark_artifacts_fail_typed() {
    let bench = BenchmarkId::Snort.build(Scale::Tiny);
    let db = Db::compile(bench.automaton, DbConfig::default()).expect("compile");
    let good = db.serialize();

    let mut newer = good.clone();
    newer[4..8].copy_from_slice(&4u32.to_le_bytes()); // format version
    match Db::deserialize(&newer) {
        Err(DbError::VersionMismatch {
            found: 4,
            expected: 3,
        }) => {}
        other => panic!("expected format VersionMismatch, got {other:?}"),
    }

    let mut newer_hash = good.clone();
    newer_hash[8..12].copy_from_slice(&99u32.to_le_bytes()); // hash scheme
    match Db::deserialize(&newer_hash) {
        Err(DbError::VersionMismatch { found: 99, .. }) => {}
        other => panic!("expected hash-scheme VersionMismatch, got {other:?}"),
    }

    let mut corrupt = good.clone();
    // Flip a payload byte inside a symbol class, leaving the stored
    // hash alone: the recomputed content hash must catch it.
    let target = good.len() - 100;
    corrupt[target] ^= 0x01;
    match Db::deserialize(&corrupt) {
        Err(DbError::HashMismatch { .. }) | Err(DbError::Core(_)) => {}
        other => panic!("expected HashMismatch or a parse error, got {other:?}"),
    }
}

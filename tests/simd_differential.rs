//! Differential testing for the SIMD tier: every vector kernel has a
//! scalar twin, and every twin pair must compute the same function
//! byte-identically. The kernels are compared in-process through the
//! `*_with` entry points (pinning both sides of each comparison — the
//! ambient [`level`](automatazoo::simd::level) is cached per process, so
//! the `AZOO_FORCE_SCALAR=1` path is exercised by a dedicated CI job
//! running this whole suite forced scalar); the engines built on them
//! (Sheng shuffle DFA, Teddy-triggered prefilter) are compared against
//! the baseline NFA on random automata and on every benchmark in the
//! suite, in block mode and across streaming chunk boundaries.

use automatazoo::core::{Automaton, StartKind, StateId, SymbolClass};
use automatazoo::engines::{
    CollectSink, Engine, NfaEngine, PrefilterEngine, Report, ShengEngine, StreamingEngine,
};
use automatazoo::simd::{supported, ByteFinder, ShengKernel, SimdLevel, Teddy, TeddyMatch};
use automatazoo::zoo::{BenchmarkId, Scale};
use proptest::prelude::*;

/// Every distinct dispatch tier the host can execute. The scalar twin is
/// always present; duplicates collapse on hosts without AVX2/SSSE3.
fn host_levels() -> Vec<SimdLevel> {
    let mut levels = vec![
        SimdLevel::Scalar,
        supported(SimdLevel::Ssse3),
        supported(SimdLevel::Avx2),
    ];
    levels.sort();
    levels.dedup();
    levels
}

fn baseline_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    engine.set_quiescent_skip(false);
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

/// Reference multi-literal search: naive position-by-position
/// `starts_with`, reported in the same `(start, pattern)` order Teddy
/// uses.
fn naive_multifind(patterns: &[Vec<u8>], hay: &[u8]) -> Vec<TeddyMatch> {
    let mut out = Vec::new();
    for start in 0..hay.len() {
        for (pi, p) in patterns.iter().enumerate() {
            if hay[start..].starts_with(p) {
                out.push(TeddyMatch {
                    start,
                    pattern: pi as u32,
                });
            }
        }
    }
    out.sort();
    out
}

fn arb_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'b', b'c', b'q', 0u8, 0xff]),
            2..7,
        ),
        1..12,
    )
}

fn arb_hay() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'a', b'b', b'c', b'q', 0u8, 0xff, b' ']),
        0..220,
    )
}

/// Random ≤16-state DFA over a tiny byte alphabet mapped to ≤4 classes.
fn arb_kernel() -> impl Strategy<Value = (ShengKernel, u8)> {
    (
        2..=16u8,
        1..=4usize,
        proptest::collection::vec(0..=255u8, 16 * 4),
        proptest::collection::vec(0..4u8, 256),
    )
        .prop_map(|(n, classes, flat, class_raw)| {
            let mut class_of = [0u8; 256];
            for (b, &c) in class_raw.iter().enumerate() {
                class_of[b] = c % classes as u8;
            }
            let tables: Vec<[u8; 16]> = (0..classes)
                .map(|c| {
                    let mut t = [0u8; 16];
                    for (s, slot) in t.iter_mut().enumerate() {
                        *slot = flat[c * 16 + s] % n;
                    }
                    t
                })
                .collect();
            let kernel = ShengKernel::new(class_of, tables, n).expect("valid kernel");
            (kernel, n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Teddy at every dispatch tier vs the naive reference.
    #[test]
    fn teddy_levels_match_naive(patterns in arb_patterns(), hay in arb_hay()) {
        let Some(mut teddy) = Teddy::new(&patterns) else {
            // Pattern set outside Teddy's envelope (dedup of the masks
            // rejected it); nothing to compare.
            return Ok(());
        };
        let expected = naive_multifind(&patterns, &hay);
        for level in host_levels() {
            let mut got = Vec::new();
            teddy.find_with(level, &hay, &mut got);
            got.sort();
            prop_assert_eq!(&got, &expected, "teddy diverged at {:?}", level);
        }
    }

    /// The Sheng kernel at every dispatch tier: identical hit streams and
    /// final states, whole-buffer and chunked (state carried across).
    #[test]
    fn sheng_kernel_levels_agree(
        (kernel, n) in arb_kernel(),
        hay in arb_hay(),
        threshold in 1..=16u8,
        cut_frac in 0..=100usize,
    ) {
        let threshold = threshold.min(n);
        let mut whole_scalar = Vec::new();
        let end_scalar =
            kernel.scan_with(SimdLevel::Scalar, 0, &hay, threshold, &mut whole_scalar);
        for level in host_levels() {
            let mut hits = Vec::new();
            let end = kernel.scan_with(level, 0, &hay, threshold, &mut hits);
            prop_assert_eq!(end, end_scalar, "final state diverged at {:?}", level);
            prop_assert_eq!(&hits, &whole_scalar, "hits diverged at {:?}", level);

            // Chunked: feed the same bytes in two pieces, carrying state.
            let cut = hay.len() * cut_frac / 100;
            let mut chunked = Vec::new();
            let mid = kernel.scan_with(level, 0, &hay[..cut], threshold, &mut chunked);
            let mut tail = Vec::new();
            let end2 = kernel.scan_with(level, mid, &hay[cut..], threshold, &mut tail);
            chunked.extend(tail.into_iter().map(|(i, s)| (i + cut, s)));
            prop_assert_eq!(end2, end_scalar, "chunked final state at {:?}", level);
            prop_assert_eq!(&chunked, &whole_scalar, "chunked hits at {:?}", level);
        }
    }

    /// The wake-byte finder at every dispatch tier vs `Iterator::position`.
    #[test]
    fn byte_finder_levels_match_position(
        members in proptest::collection::vec(0..=255u8, 0..9),
        hay in arb_hay(),
    ) {
        let finder = ByteFinder::from_bytes(&members);
        let expected = hay.iter().position(|b| members.contains(b));
        for level in host_levels() {
            prop_assert_eq!(
                finder.find_with(level, &hay),
                expected,
                "byte finder diverged at {:?}",
                level
            );
        }
    }

    /// ShengEngine vs the baseline NFA on random literal machines, block
    /// and split at a random cut.
    #[test]
    fn sheng_engine_matches_baseline(
        words in proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(vec![b'a', b'b']), 1..5),
            1..4,
        ),
        input in arb_hay(),
        cut_frac in 0..=100usize,
    ) {
        let mut a = Automaton::new();
        for (code, w) in words.iter().enumerate() {
            let classes: Vec<SymbolClass> =
                w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, code as u32);
        }
        let Ok(mut sheng) = ShengEngine::new(&a) else {
            // Word set determinizes past 16 states; out of scope.
            return Ok(());
        };
        let reference = baseline_reports(&a, &input);
        let mut sink = CollectSink::new();
        sheng.scan(&input, &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports(), "sheng block diverged");

        let cut = input.len() * cut_frac / 100;
        let mut sink = CollectSink::new();
        sheng.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports(), "sheng chunked diverged");
    }

    /// The scalar-trigger prefilter (forced Aho–Corasick) and the ambient
    /// one (Teddy where it applies) must both match the baseline — any
    /// divergence between the two configurations is a Teddy trigger bug.
    #[test]
    fn prefilter_trigger_configs_agree(
        a in arb_random_automaton(),
        input in arb_hay(),
    ) {
        let reference = baseline_reports(&a, &input);
        let mut ambient = PrefilterEngine::new(&a).expect("valid");
        let mut sink = CollectSink::new();
        ambient.scan(&input, &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports(), "ambient prefilter diverged");
        let mut scalar = PrefilterEngine::with_scalar_trigger(&a).expect("valid");
        let mut sink = CollectSink::new();
        scalar.scan(&input, &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports(), "scalar-trigger prefilter diverged");
    }
}

/// Random counter-free automaton over `{a..d}`: cycles, fan-out, anchors
/// — the same family as `tests/differential.rs`.
fn arb_random_automaton() -> impl Strategy<Value = Automaton> {
    let state = (
        proptest::collection::vec(prop::bool::ANY, 4),
        0..3u8,
        proptest::option::of(0..8u32),
    );
    (
        proptest::collection::vec(state, 1..12),
        proptest::collection::vec((0..12usize, 0..12usize), 0..24),
    )
        .prop_map(|(states, edges)| {
            let n = states.len();
            let mut a = Automaton::new();
            for (class_bits, start, report) in &states {
                let mut class = SymbolClass::new();
                for (i, &set) in class_bits.iter().enumerate() {
                    if set {
                        class.insert(b'a' + i as u8);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = match start {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let id = a.add_ste(class, start);
                if let Some(code) = report {
                    a.set_report(id, *code);
                }
            }
            for &(from, to) in &edges {
                a.add_edge(StateId::new(from % n), StateId::new(to % n));
            }
            a
        })
        .prop_filter("needs a start state", |a| a.validate().is_ok())
}

/// The whole suite at tiny scale: on every benchmark, the SIMD-backed
/// tiers (ambient prefilter, scalar-trigger prefilter, Sheng where it
/// fits) match the baseline NFA in block mode and across uneven
/// streaming chunks (1-byte and prime-sized cuts drift through every
/// literal and seam carry).
#[test]
fn all_benchmarks_match_baseline_on_simd_tiers() {
    let mut sheng_applied = 0usize;
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let window = bench.input.len().min(4_000);
        let input = &bench.input[..window];
        let reference = baseline_reports(&bench.automaton, input);

        let mut engines: Vec<(&str, Box<dyn automatazoo::engines::SessionEngine>)> = vec![
            (
                "prefilter",
                Box::new(PrefilterEngine::new(&bench.automaton).expect("valid")),
            ),
            (
                "prefilter-scalar",
                Box::new(PrefilterEngine::with_scalar_trigger(&bench.automaton).expect("valid")),
            ),
        ];
        if let Ok(sheng) = ShengEngine::new(&bench.automaton) {
            sheng_applied += 1;
            engines.push(("sheng", Box::new(sheng)));
        }

        // 1-byte feeds cost a full feed cycle per input symbol, so they
        // run over a shorter prefix; prime-sized chunks cover the whole
        // window.
        let tiny_window = &input[..input.len().min(600)];
        let tiny_reference = baseline_reports(&bench.automaton, tiny_window);

        for (name, engine) in &mut engines {
            let mut sink = CollectSink::new();
            engine.scan(input, &mut sink);
            assert_eq!(
                reference,
                sink.sorted_reports(),
                "{name} diverged on {} (block)",
                id.name()
            );
            for (chunk_len, window, expected) in [
                (997usize, input, &reference),
                (1, tiny_window, &tiny_reference),
            ] {
                let chunks: Vec<&[u8]> = if window.is_empty() {
                    vec![window]
                } else {
                    window.chunks(chunk_len).collect()
                };
                let mut sink = CollectSink::new();
                engine.reset_stream();
                let last = chunks.len() - 1;
                for (i, chunk) in chunks.iter().enumerate() {
                    engine.feed(chunk, i == last, &mut sink);
                }
                assert_eq!(
                    expected,
                    &sink.sorted_reports(),
                    "{name} diverged on {} (chunks of {chunk_len})",
                    id.name()
                );
            }
        }
    }
    // The suite's machines are mostly far larger than 16 DFA states;
    // make the Sheng leg visible if that ever stops being exercised at
    // all, rather than silently testing nothing.
    println!(
        "sheng applied to {sheng_applied} of {} benchmarks",
        BenchmarkId::ALL.len()
    );
}

//! A 1000-seed differential-oracle campaign over the semantics-
//! preserving passes — now including the reduction tier's
//! `quotient_simulation` and `residual_merge` — with zero tolerated
//! divergences.
//!
//! Engines are left out of the matrix (`engines: vec![]`): the engine
//! cross-checks have their own campaigns, and a pass-only run keeps a
//! thousand seeds inside a debug-profile test budget. Each seed still
//! compares every pass against the reference baseline on a generated
//! automaton (counters, `$`-anchors, reset edges, cycles) and input.
//!
//! If a seed ever diverges, the shrunk witness is banked under
//! `tests/bugbank/` before the test fails, so the regression corpus
//! grows by exactly the machinery this suite uses everywhere else.

use std::path::Path;

use automatazoo::oracle::{run_seed, shrink, BugbankEntry, OracleConfig, Subject};

const SEEDS: u64 = 1000;

#[test]
fn thousand_seed_pass_campaign_is_divergence_free() {
    let cfg = OracleConfig {
        engines: vec![],
        ..OracleConfig::default()
    };
    let mut divergences = Vec::new();
    for seed in 0..SEEDS {
        if let Some(d) = run_seed(seed, &cfg) {
            let d = shrink(&d);
            let name = format!("reduce-oracle-seed-{seed}");
            if let Some(entry) =
                BugbankEntry::from_divergence(&name, "found by tests/reduce_oracle.rs", &d)
            {
                // Bank the witness before failing: the repro outlives
                // this test run.
                let _ = entry.save(Path::new("tests/bugbank"));
            }
            divergences.push(format!(
                "seed {seed} diverged on {}: expected {:?}, got {:?} (banked as {name})",
                d.subject.label(),
                d.expected,
                d.got
            ));
        }
    }
    assert!(
        divergences.is_empty(),
        "pass campaign found divergences:\n{}",
        divergences.join("\n")
    );
}

/// The campaign above only proves something about the reduction passes
/// if they are actually in the oracle's matrix — pin that.
#[test]
fn oracle_matrix_includes_the_reduction_passes() {
    use automatazoo::oracle::oracle::ORACLE_PASSES;
    for pass in ["quotient_simulation", "residual_merge"] {
        assert!(
            ORACLE_PASSES.iter().any(|(name, _)| *name == pass),
            "{pass} missing from ORACLE_PASSES"
        );
        // And the Subject label round-trips for bank entries.
        let subject = Subject::Pass {
            name: pass,
            map: automatazoo::passes::InputMap::Identity,
        };
        assert_eq!(subject.label(), format!("pass:{pass}"));
    }
}

//! Reduction-tier acceptance over the whole zoo: every benchmark,
//! reduced by the full `reduce` pipeline (simulation quotient +
//! residual coverage fold), must validate cleanly, never grow, and
//! produce byte-identical report streams in block mode *and* across
//! streaming chunk boundaries, under both the reference NFA and the
//! literal-prefilter engine.
//!
//! (The release-mode `bench-reduce` binary re-runs the same equivalence
//! assertions over the full corpora; this test keeps them in the
//! default `cargo test` loop on a debug-budget window.)

use automatazoo::core::Automaton;
use automatazoo::engines::{
    CollectSink, Engine, NfaEngine, PrefilterEngine, Report, StreamingEngine,
};
use automatazoo::passes::reduce;
use automatazoo::zoo::{BenchmarkId, Scale};

fn block_reports(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

fn chunked_reports<E: StreamingEngine>(engine: &mut E, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    // Prime chunk size so boundaries drift through pattern positions.
    engine.scan_chunks(input.chunks(997), &mut sink);
    sink.sorted_reports()
}

fn assert_equivalent(id: BenchmarkId, original: &Automaton, reduced: &Automaton, input: &[u8]) {
    let mut nfa_before = NfaEngine::new(original).expect("valid");
    let mut nfa_after = NfaEngine::new(reduced).expect("valid reduced");
    let reference = block_reports(&mut nfa_before, input);
    assert_eq!(
        reference,
        block_reports(&mut nfa_after, input),
        "{}: NFA block reports diverged after reduction",
        id.name()
    );
    assert_eq!(
        reference,
        chunked_reports(&mut nfa_after, input),
        "{}: NFA streaming reports diverged after reduction",
        id.name()
    );

    let mut pf_after = PrefilterEngine::new(reduced).expect("valid reduced");
    assert_eq!(
        reference,
        block_reports(&mut pf_after, input),
        "{}: prefilter block reports diverged after reduction",
        id.name()
    );
    assert_eq!(
        reference,
        chunked_reports(&mut pf_after, input),
        "{}: prefilter streaming reports diverged after reduction",
        id.name()
    );
}

#[test]
fn all_benchmarks_reduce_clean_and_report_identical() {
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let (reduced, stats) = reduce(&bench.automaton);

        let violations = reduced.validate_all();
        assert!(
            violations.is_empty(),
            "{}: reduced automaton fails validation: {violations:?}",
            id.name()
        );
        assert!(
            stats.states_after <= stats.states_before,
            "{}: reduction grew the machine ({} -> {} states)",
            id.name(),
            stats.states_before,
            stats.states_after
        );
        assert_eq!(
            stats.states_after,
            reduced.state_count(),
            "{}: stats disagree with the machine",
            id.name()
        );

        let window = bench.input.len().min(8_000);
        assert_equivalent(id, &bench.automaton, &reduced, &bench.input[..window]);
    }
}

/// Reduction is a fixpoint: feeding its own output back in changes
/// nothing, so serving stacks may re-reduce defensively at no cost.
#[test]
fn reduction_is_idempotent_on_benchmarks() {
    for id in [
        BenchmarkId::Snort,
        BenchmarkId::Brill,
        BenchmarkId::Hamming18x3,
        BenchmarkId::EntityResolution,
        BenchmarkId::ApPrng4,
    ] {
        let bench = id.build(Scale::Tiny);
        let (once, _) = reduce(&bench.automaton);
        let (twice, stats) = reduce(&once);
        assert_eq!(
            once.state_count(),
            twice.state_count(),
            "{}: second reduction changed the machine",
            id.name()
        );
        assert_eq!(
            stats.quotient_removed + stats.residual_removed,
            0,
            "{}: second reduction still found merges",
            id.name()
        );
    }
}

//! Content-hash acceptance over the oracle's generator and mutation
//! bank: the hash must be invariant under re-serialization (the Db
//! artifact round trip depends on it) and must *change* under every
//! automaton-family mutation the oracle can plant — the same mutants
//! the differential oracle kills behaviourally must also be caught
//! structurally.

use automatazoo::core::{content_hash, mnrl};
use automatazoo::oracle::{gen_automaton, mutate_automaton, GenConfig, Mutation, OracleRng};

const AUTOMATON_MUTATIONS: [Mutation; 4] = [
    Mutation::LatchBecomesPulse,
    Mutation::CounterTargetOffByOne,
    Mutation::StartDowngrade,
    Mutation::DropEodOnlyFlag,
];

/// MNRL round trips rebuild a semantically-identical machine; its hash
/// must not move. 100 random machines, counters included.
#[test]
fn hash_is_stable_across_serialization_round_trips() {
    let cfg = GenConfig::default();
    for seed in 0..100u64 {
        let mut rng = OracleRng::new(0x4A5_4000 ^ seed);
        let a = gen_automaton(&mut rng, &cfg);
        let h = content_hash(&a);
        let back = mnrl::from_json(&mnrl::to_json(&a, "hash-test")).expect("round trip");
        assert_eq!(
            content_hash(&back),
            h,
            "seed {seed}: round trip moved the hash"
        );
        // And it is pure: hashing twice agrees.
        assert_eq!(content_hash(&a), h);
    }
}

/// Every automaton-family mutation that actually bites a machine must
/// change its content hash — otherwise a corrupted artifact carrying
/// that mutation would slip past the Db hash check.
#[test]
fn every_oracle_mutation_changes_the_hash() {
    let cfg = GenConfig {
        max_states: 10,
        counters: true,
        max_input_len: 16,
        chunk_plans: 0,
        fuzzy: false,
    };
    let mut bites = [0usize; AUTOMATON_MUTATIONS.len()];
    for seed in 0..200u64 {
        let mut rng = OracleRng::new(0x4A5_5000 ^ seed);
        let a = gen_automaton(&mut rng, &cfg);
        let h = content_hash(&a);
        for (i, &m) in AUTOMATON_MUTATIONS.iter().enumerate() {
            if let Some(mutant) = mutate_automaton(m, &a) {
                bites[i] += 1;
                assert_ne!(
                    content_hash(&mutant),
                    h,
                    "seed {seed}: mutation {} left the hash unchanged",
                    m.name()
                );
            }
        }
    }
    // The generator must actually exercise every mutation for the
    // assertion above to mean anything.
    for (i, &m) in AUTOMATON_MUTATIONS.iter().enumerate() {
        assert!(
            bites[i] >= 10,
            "mutation {} bit only {} of 200 machines — generator drift?",
            m.name(),
            bites[i]
        );
    }
}

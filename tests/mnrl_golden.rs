//! Golden-file round trip for MNRL JSON serialization.
//!
//! A fixed automaton exercising every serialized feature (all-input and
//! start-of-data STEs, multi-byte symbol classes, an up-counter with
//! activate and reset inputs, report codes, end-of-data-only reports) is
//! serialized and compared byte-for-byte against a checked-in golden
//! file; the golden file is then parsed back and compared structurally
//! *and* by report-stream equality. Any format drift — field renames,
//! ordering changes, default-handling changes — fails one of the three
//! comparisons.
//!
//! To regenerate the golden file after an intentional format change:
//! `BLESS=1 cargo test --test mnrl_golden`.

use automatazoo::core::{mnrl, Automaton, CounterMode, StartKind, SymbolClass};
use automatazoo::engines::{CollectSink, Engine, NfaEngine, Report};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("feature_zoo.mnrl.json")
}

/// The fixture: one of everything the format can express.
fn feature_zoo() -> Automaton {
    let mut a = Automaton::new();
    // A literal chain with a multi-byte class in the middle.
    let h = a.add_ste(SymbolClass::from_byte(b'h'), StartKind::AllInput);
    let vowel = a.add_ste(SymbolClass::from_bytes(b"aeiou"), StartKind::None);
    let t = a.add_ste(SymbolClass::from_byte(b't'), StartKind::None);
    a.add_edge(h, vowel);
    a.add_edge(vowel, t);
    a.set_report(t, 0);
    // A start-of-data anchored reporter.
    let q = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::StartOfData);
    a.set_report(q, 1);
    // An end-of-data-only reporter.
    let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
    a.set_report(z, 2);
    a.set_report_eod_only(z, true);
    // A latched counter with both an activate and a reset driver.
    let k = a.add_ste(SymbolClass::from_byte(b'k'), StartKind::AllInput);
    let r = a.add_ste(SymbolClass::from_byte(b'r'), StartKind::AllInput);
    let c = a.add_counter(3, CounterMode::Latch);
    a.add_edge(k, c);
    a.add_reset_edge(r, c);
    a.set_report(c, 3);
    // A rolling counter driven by the chain tail.
    let roll = a.add_counter(2, CounterMode::Roll);
    a.add_edge(t, roll);
    a.set_report(roll, 4);
    a
}

fn report_stream(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    NfaEngine::new(a).expect("valid").scan(input, &mut sink);
    sink.sorted_reports()
}

#[test]
fn golden_file_round_trips() {
    let a = feature_zoo();
    let json = mnrl::to_json(&a, "feature_zoo");
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &json).expect("write golden");
    }
    let golden =
        std::fs::read_to_string(&path).expect("golden file present (regenerate with BLESS=1)");
    // 1. Serialization is byte-stable against the checked-in golden.
    assert_eq!(
        json, golden,
        "MNRL serialization drifted from the golden file"
    );
    // 2. The golden file parses back to a structurally equal automaton.
    let back = mnrl::from_json(&golden).expect("golden parses");
    assert_eq!(a, back);
    // 3. ...and to a behaviourally equal one.
    let input = b"hatqzkkkrkkkhithotz";
    let expected = report_stream(&a, input);
    assert!(!expected.is_empty());
    assert_eq!(expected, report_stream(&back, input));
}

#[test]
fn reserialization_is_idempotent() {
    let a = feature_zoo();
    let once = mnrl::to_json(&a, "feature_zoo");
    let twice = mnrl::to_json(&mnrl::from_json(&once).expect("parses"), "feature_zoo");
    assert_eq!(once, twice);
}

#[test]
fn every_benchmark_round_trips_through_mnrl() {
    use automatazoo::zoo::{BenchmarkId, Scale};
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let text = mnrl::to_mnrl(&bench.automaton, &format!("{id:?}"));
        let back = mnrl::from_mnrl(&text).expect("benchmark MNRL parses");
        assert_eq!(
            back, bench.automaton,
            "{id:?}: MNRL round trip changed the graph"
        );
    }
}

#[test]
fn degenerate_classes_and_extreme_report_codes_round_trip() {
    // Corner cases the benchmarks never hit: a full 256-byte class, a
    // class holding only NUL, only 0xff, report codes 0 and u32::MAX
    // (which once collided with an engine-internal sentinel — see
    // tests/bugbank/max-report-code-*), and an eod-gated max-code state.
    let mut a = Automaton::new();
    let full = a.add_ste(SymbolClass::FULL, StartKind::AllInput);
    a.set_report(full, 0);
    let nul = a.add_ste(SymbolClass::from_byte(0), StartKind::StartOfData);
    a.set_report(nul, u32::MAX);
    let hi = a.add_ste(SymbolClass::from_byte(0xff), StartKind::None);
    a.add_edge(nul, hi);
    a.set_report(hi, u32::MAX - 1);
    a.set_report_eod_only(hi, true);
    a.validate().expect("valid");

    let text = mnrl::to_mnrl(&a, "degenerate");
    let back = mnrl::from_mnrl(&text).expect("degenerate MNRL parses");
    assert_eq!(back, a);
    // Behavioural equality too: the max-code report must survive.
    let input = b"\x00\xffx";
    let expected = report_stream(&a, input);
    assert!(expected
        .iter()
        .any(|r| r.code == automatazoo::core::ReportCode(u32::MAX)));
    assert_eq!(expected, report_stream(&back, input));
}

//! Prefilter soundness audit for fuzzy (error-layer) automata.
//!
//! Gating an edit-distance mesh on an exact literal is unsound: at
//! `k >= 1` the automaton must accept occurrences in which any byte of
//! the pattern has been edited away, so no exact factor is required of
//! every accepting path. The analysis must therefore refuse fuzzy
//! components (`WeakLiteral`), pushing them into the fully simulated
//! fallback — on *both* literal-extraction paths: the dominator
//! computation for components up to 4096 states and the suffix-spine
//! walk above it. These tests pin that refusal and differentially check
//! `PrefilterEngine` against the baseline NFA on inputs whose only
//! occurrences are mutated (the exact literal never appears), where a
//! literal-gated fuzzy component would go blind.

use automatazoo::core::stats::{prefilter_analysis, PrefilterBlock};
use automatazoo::core::Automaton;
use automatazoo::engines::{
    CollectSink, Engine, NfaEngine, PrefilterEngine, Report, StreamingEngine,
};
use automatazoo::fuzzy::{fuzzy_from_bytes, EditProfile};
use proptest::prelude::*;

fn baseline_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    engine.set_quiescent_skip(false);
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

fn prefilter_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = PrefilterEngine::new(a).expect("valid");
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

/// Every reporting component of `a` must be refused by the analysis
/// with `WeakLiteral` — no exact factor gates an error layer.
fn assert_unprefilterable(a: &Automaton, what: &str) {
    for cp in prefilter_analysis(a) {
        if !cp.reporting {
            continue;
        }
        assert!(
            !cp.is_prefilterable(),
            "{what}: component {} was admitted to the literal gate, \
             which is unsound at edit distance >= 1",
            cp.component
        );
        assert_eq!(
            cp.block,
            Some(PrefilterBlock::WeakLiteral),
            "{what}: component {} should be refused for lack of a \
             required factor, not for shape",
            cp.component
        );
    }
}

#[test]
fn error_layers_defeat_literal_extraction() {
    // Levenshtein and Hamming meshes alike: the k = 0 spine alone would
    // yield a strong literal, but every k >= 1 report state reaches its
    // report through wide error-track classes, so the per-report-state
    // factor requirement fails and the whole component falls back.
    for profile in [EditProfile::LEVENSHTEIN, EditProfile::HAMMING] {
        for k in 1..=3usize {
            let (a, _) =
                fuzzy_from_bytes(b"exploit_update_00231", k, profile, 0).expect("well-formed");
            assert_unprefilterable(&a, &format!("{profile:?} k={k}"));
        }
    }
}

#[test]
fn prefilter_matches_nfa_when_only_mutated_occurrences_exist() {
    // Fuzzy patterns alongside plain literal words: the words are gated,
    // the meshes must ride the fallback. The stimulus contains each
    // fuzzy pattern only in 1-edit mutated form — an engine that gated
    // the mesh on its exact literal would drop every one of these.
    let mut a = Automaton::new();
    for (i, p) in [&b"exploit_admin"[..], b"select_union", b"passwd_shell"]
        .iter()
        .enumerate()
    {
        let (f, _) = fuzzy_from_bytes(p, 1, EditProfile::LEVENSHTEIN, i as u32).expect("valid");
        a.append(&f);
    }
    for (i, w) in [&b"config"[..], b"script"].iter().enumerate() {
        let classes: Vec<automatazoo::core::SymbolClass> = w
            .iter()
            .map(|&b| automatazoo::core::SymbolClass::from_byte(b))
            .collect();
        let (_, last) = a.add_chain(&classes, automatazoo::core::StartKind::AllInput);
        a.set_report(last, 100 + i as u32);
    }
    let pf = PrefilterEngine::new(&a).expect("valid");
    assert!(
        pf.component_count() >= 2,
        "the literal words should be gated"
    );
    assert!(pf.has_fallback(), "the meshes must be fully simulated");

    // One substitution, one deletion, one insertion — and one exact
    // occurrence of a gated word as a control.
    let input = b"zz exploit_admjn zz selct_union zz passwd_sthell zz config zz".to_vec();
    let expected = baseline_reports(&a, &input);
    assert!(
        expected.iter().filter(|r| r.code.0 < 100).count() >= 3,
        "every mutated plant should be found at k = 1: {expected:?}"
    );
    assert_eq!(expected, prefilter_reports(&a, &input));

    // The same stream in uneven chunks: gate state and fallback state
    // must both carry across feed boundaries.
    let mut engine = PrefilterEngine::new(&a).expect("valid");
    let mut sink = CollectSink::new();
    engine.scan_chunks(input.chunks(7), &mut sink);
    assert_eq!(expected, sink.sorted_reports());
}

#[test]
fn giant_meshes_take_the_suffix_spine_path_and_stay_sound() {
    // Above 4096 states the analysis switches from dominators to the
    // unique-predecessor suffix-spine walk; a 600-byte pattern at k = 3
    // crosses that cap inside a single component. The walk must also
    // refuse the mesh: every error-layer report state either carries a
    // wide class or has multiple predecessors.
    let pattern: Vec<u8> = (0..600).map(|i| b'a' + (i % 4) as u8).collect();
    let (a, stats) = fuzzy_from_bytes(&pattern, 3, EditProfile::HAMMING, 9).expect("valid");
    assert!(
        a.state_count() > 4096,
        "need to cross the dominator cap, got {}",
        a.state_count()
    );
    assert_eq!(stats.layers, 4);
    assert_unprefilterable(&a, "600x3 hamming");

    // A 3-substituted occurrence, with the exact literal absent.
    let mut mutated = pattern.clone();
    for at in [10usize, 300, 590] {
        mutated[at] = if mutated[at] == b'a' { b'd' } else { b'a' };
    }
    let mut input = vec![b'x'; 256];
    input.extend_from_slice(&mutated);
    input.extend_from_slice(&[b'x'; 256]);
    let expected = baseline_reports(&a, &input);
    assert!(
        !expected.is_empty(),
        "the 3-substituted plant must be found"
    );
    assert_eq!(expected, prefilter_reports(&a, &input));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random pattern x edit budget x profile: the analysis always
    /// refuses the mesh, and the prefilter engine stays report-identical
    /// to the baseline on a stream whose plant is mutated.
    #[test]
    fn random_fuzzy_meshes_are_refused_and_sound(
        pattern in proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'b', b'c', b'd']), 6..14),
        k in 1..=2usize,
        profile in proptest::sample::select(vec![
            EditProfile::LEVENSHTEIN,
            EditProfile::HAMMING,
            EditProfile { substitutions: true, insertions: true, deletions: false },
        ]),
        mut_at_frac in 0..100usize,
        filler in proptest::collection::vec(
            proptest::sample::select(vec![b'x', b'y', b'z']), 40..120),
    ) {
        let (a, _) = fuzzy_from_bytes(&pattern, k, profile, 0).expect("valid");
        assert_unprefilterable(&a, "random mesh");

        // Substitutions are enabled in every sampled profile, so a
        // 1-substituted plant is always within the budget.
        let mut mutated = pattern.clone();
        let at = mut_at_frac * (mutated.len() - 1) / 99;
        mutated[at] = if mutated[at] == b'a' { b'b' } else { b'a' };
        let mut input = filler.clone();
        input.extend_from_slice(&mutated);
        input.extend_from_slice(&filler);

        let expected = baseline_reports(&a, &input);
        prop_assert!(!expected.is_empty(), "mutated plant must be found at k >= 1");
        prop_assert_eq!(expected, prefilter_reports(&a, &input));
    }
}

//! Differential `verify_pass` tests: every transformation pass, run over
//! proptest-generated automata, must hold its declared invariants —
//! identical language samples pre/post (under the pass's input map),
//! valid output, and no growth for the shrinking passes.
//!
//! This is the harness that guards the *next* pass anyone writes: a
//! deliberately broken "pass" is included to prove the verifier can
//! fail.

use automatazoo::analyze::{verify_pass, InputMap, VerifySpec};
use automatazoo::core::{Automaton, StartKind, StateId, SymbolClass};
use automatazoo::oracle::{gen_automaton, GenConfig, OracleRng};
use automatazoo::passes::{
    bit_pattern_chain, bits_of_bytes, merge_prefixes, merge_suffixes, quotient_simulation,
    remove_dead, residual_merge, stride8, widen,
};
use proptest::prelude::*;

/// Random counter-free automata over a small alphabet (mirrors the
/// generator in `properties.rs`, deduped edges so validation passes).
fn arb_automaton() -> impl Strategy<Value = Automaton> {
    let state = (
        proptest::collection::vec(prop::bool::ANY, 4),
        0..3u8,
        proptest::option::of(0..8u32),
    );
    (
        proptest::collection::vec(state, 1..10),
        proptest::collection::vec((0..10usize, 0..10usize), 0..16),
    )
        .prop_map(|(states, edges)| {
            let n = states.len();
            let mut a = Automaton::new();
            for (class_bits, start, report) in &states {
                let mut class = SymbolClass::new();
                for (i, &set) in class_bits.iter().enumerate() {
                    if set {
                        class.insert(b'a' + i as u8);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = match start {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let id = a.add_ste(class, start);
                if let Some(code) = report {
                    a.set_report(id, *code);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for &(from, to) in &edges {
                if seen.insert((from % n, to % n)) {
                    a.add_edge(StateId::new(from % n), StateId::new(to % n));
                }
            }
            a
        })
        .prop_filter("needs a start state", |a| a.validate().is_ok())
}

/// The oracle's own generator, driven by a proptest-chosen seed: unlike
/// [`arb_automaton`] it produces counters (all three modes), `$`-anchored
/// reports, reset edges and cycles — the shapes the reduction tier's
/// refusal matrix exists for.
fn arb_oracle_automaton() -> impl Strategy<Value = Automaton> {
    prop::num::u64::ANY
        .prop_map(|seed| gen_automaton(&mut OracleRng::new(seed), &GenConfig::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_prefixes_holds_invariants(a in arb_automaton()) {
        let (merged, _) = merge_prefixes(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("merge_prefixes").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn merge_suffixes_holds_invariants(a in arb_automaton()) {
        let (merged, _) = merge_suffixes(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("merge_suffixes").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn remove_dead_holds_invariants(a in arb_automaton()) {
        let pruned = remove_dead(&a);
        let diags = verify_pass(&a, &pruned, &VerifySpec::new("remove_dead").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stride8_holds_invariants(pattern in proptest::collection::vec(prop::num::u8::ANY, 1..5)) {
        // stride8 accepts bit-level machines; whole-byte patterns are the
        // shape whose matches are exactly the byte-aligned ones (the
        // Stride8 map's precondition).
        let bits = bit_pattern_chain(&bits_of_bytes(&pattern), 0, StartKind::AllInput);
        let bytes = stride8(&bits).expect("bit level");
        let diags = verify_pass(
            &bits,
            &bytes,
            &VerifySpec::new("stride8").map(InputMap::Stride8).samples(6).sample_len(32),
        );
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn widen_holds_invariants(a in arb_automaton()) {
        let wide = widen(&a).expect("no counters");
        let diags = verify_pass(&a, &wide, &VerifySpec::new("widen").map(InputMap::Widen));
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn quotient_simulation_holds_invariants(a in arb_automaton()) {
        let (merged, _) = quotient_simulation(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("quotient_simulation").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn residual_merge_holds_invariants(a in arb_automaton()) {
        let (merged, _) = residual_merge(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("residual_merge").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn quotient_simulation_holds_on_counter_machines(a in arb_oracle_automaton()) {
        let (merged, _) = quotient_simulation(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("quotient_simulation").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn residual_merge_holds_on_counter_machines(a in arb_oracle_automaton()) {
        let (merged, _) = residual_merge(&a);
        let diags = verify_pass(&a, &merged, &VerifySpec::new("residual_merge").no_growth());
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn verifier_catches_a_broken_pass(a in arb_automaton()) {
        // A "pass" that slaps a brand-new report code on state 0:
        // structure stays valid and no sampling luck is needed — the
        // report-code subset invariant catches it on every input.
        let mut broken = a.clone();
        broken.set_report(StateId::new(0), 999);
        let diags = verify_pass(&a, &broken, &VerifySpec::new("bogus_code"));
        prop_assert!(
            diags.iter().any(|d| d.message.contains("code 999")),
            "{diags:?}"
        );
    }
}

/// The acceptance-criterion case, concretely: a deliberately broken pass
/// (retargets one report) is caught by `verify_pass`.
#[test]
fn verifier_catches_report_retarget() {
    let mut a = Automaton::new();
    let classes: Vec<SymbolClass> = b"abcd".iter().map(|&b| SymbolClass::from_byte(b)).collect();
    let (first, last) = a.add_chain(&classes, StartKind::AllInput);
    a.set_report(last, 7);
    let mut broken = a.clone();
    broken.element_mut(last).report = None;
    broken.set_report(first, 7);
    let diags = verify_pass(&a, &broken, &VerifySpec::new("retarget"));
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "pass-invariant" && d.message.contains("language mismatch")),
        "{diags:?}"
    );
}

/// A broken "reduction" that merges two *non*-similar states the way
/// the quotient merges a real block — union class, one surviving report
/// code. The language changes (`y` now fires, and with the wrong code),
/// and `verify_pass` must say so.
#[test]
fn verifier_catches_merge_of_non_similar_states() {
    let mut a = Automaton::new();
    let x = a.add_ste(SymbolClass::from_byte(b'x'), StartKind::AllInput);
    a.set_report(x, 1);
    let y = a.add_ste(SymbolClass::from_byte(b'y'), StartKind::AllInput);
    a.set_report(y, 2);

    let mut broken = Automaton::new();
    let mut class = SymbolClass::from_byte(b'x');
    class.insert(b'y');
    let m = broken.add_ste(class, StartKind::AllInput);
    broken.set_report(m, 1); // code 2 silently rewritten
    let diags = verify_pass(&a, &broken, &VerifySpec::new("broken_quotient").no_growth());
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("language mismatch")),
        "{diags:?}"
    );
}

/// A broken "reduction" that drops a report code while leaving the
/// graph untouched — the residual fold's failure mode if it ever folded
/// a reporter into a non-reporting cover.
#[test]
fn verifier_catches_dropped_report_code() {
    let mut a = Automaton::new();
    let classes: Vec<SymbolClass> = b"no".iter().map(|&b| SymbolClass::from_byte(b)).collect();
    let (_, last) = a.add_chain(&classes, StartKind::AllInput);
    a.set_report(last, 5);
    let mut broken = a.clone();
    broken.element_mut(last).report = None;
    let diags = verify_pass(&a, &broken, &VerifySpec::new("dropped_code"));
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("language mismatch")),
        "{diags:?}"
    );
}

/// And the opposite: the identity "pass" verifies clean on a benchmark.
#[test]
fn identity_pass_verifies_clean_on_benchmark() {
    use automatazoo::zoo::{BenchmarkId, Scale};
    let bench = BenchmarkId::Hamming18x3.build(Scale::Tiny);
    let diags = verify_pass(
        &bench.automaton,
        &bench.automaton,
        &VerifySpec::new("identity").no_growth().samples(4),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

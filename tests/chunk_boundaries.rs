//! Regression tests for the parallel scanner's input-chunking edge
//! cases: a chunkable shard's input is cut at `len * c / threads`, each
//! worker re-scans a bounded overlap window before its chunk, and
//! ownership of an offset belongs to exactly one chunk. These tests pin
//! the boundary arithmetic with hand-placed matches.

use automatazoo::core::{Automaton, StartKind, SymbolClass};
use automatazoo::engines::{CollectSink, Engine, NfaEngine, ParallelScanner, Report};

/// One all-input chain per word, reporting `code = index`.
fn words(list: &[&[u8]]) -> Automaton {
    let mut a = Automaton::new();
    for (code, word) in list.iter().enumerate() {
        let classes: Vec<SymbolClass> = word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code as u32);
    }
    a
}

fn nfa(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    NfaEngine::new(a).expect("valid").scan(input, &mut sink);
    sink.sorted_reports()
}

fn parallel(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    ParallelScanner::new(a, threads)
        .expect("valid")
        .scan(input, &mut sink);
    sink.reports().to_vec()
}

#[test]
fn match_spanning_adjacent_chunks_is_found_once() {
    // 16-byte input, 4 threads: chunk boundaries at 4, 8, 12. Place
    // "abcd" at offsets 6..10 so it starts in chunk 1 and ends in chunk
    // 2 — only the overlap window lets the chunk-2 worker see it.
    let a = words(&[b"abcd"]);
    let mut input = vec![b'x'; 16];
    input[6..10].copy_from_slice(b"abcd");
    let expected = nfa(&a, &input);
    assert_eq!(expected.len(), 1);
    assert_eq!(expected[0].offset, 9);
    assert_eq!(parallel(&a, 4, &input), expected);
}

#[test]
fn match_ending_exactly_at_chunk_boundary() {
    // Chunk boundary at 8 (16 bytes, 2 threads): a match whose last
    // byte is offset 7 belongs to chunk 0; one ending at offset 8
    // belongs to chunk 1 but starts inside chunk 0.
    let a = words(&[b"ab"]);
    let mut input = vec![b'x'; 16];
    input[6..8].copy_from_slice(b"ab"); // report at 7 (last byte of chunk 0)
    input[7] = b'a'; // overwrite: "a" at 7, "b" at 8 -> report at 8
    input[8] = b'b';
    let expected = nfa(&a, &input);
    assert_eq!(
        expected.iter().map(|r| r.offset).collect::<Vec<_>>(),
        vec![8]
    );
    for threads in [1, 2, 4, 8] {
        assert_eq!(parallel(&a, threads, &input), expected, "{threads} threads");
    }
    // Now a clean match ending exactly on the boundary's last owned
    // offset (7).
    let mut input = vec![b'x'; 16];
    input[6..8].copy_from_slice(b"ab");
    let expected = nfa(&a, &input);
    assert_eq!(
        expected.iter().map(|r| r.offset).collect::<Vec<_>>(),
        vec![7]
    );
    for threads in [1, 2, 4, 8] {
        assert_eq!(parallel(&a, threads, &input), expected, "{threads} threads");
    }
}

#[test]
fn every_cut_position_of_a_sliding_match_agrees() {
    // Slide a 3-byte pattern across every offset of a 24-byte input and
    // compare against the NFA at several worker counts: every possible
    // relation between match span and chunk boundary is covered.
    let a = words(&[b"abc"]);
    for pos in 0..=21 {
        let mut input = vec![b'.'; 24];
        input[pos..pos + 3].copy_from_slice(b"abc");
        let expected = nfa(&a, &input);
        assert_eq!(expected.len(), 1, "pattern at {pos}");
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                parallel(&a, threads, &input),
                expected,
                "pattern at {pos}, {threads} threads"
            );
        }
    }
}

#[test]
fn input_shorter_than_thread_count() {
    let a = words(&[b"ab", b"b"]);
    for input in [&b"ab"[..], &b"b"[..], &b"a"[..]] {
        for threads in [4, 8, 16] {
            assert_eq!(
                parallel(&a, threads, input),
                nfa(&a, input),
                "input {input:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn empty_input_yields_no_reports() {
    let a = words(&[b"ab"]);
    for threads in [1, 2, 8] {
        assert_eq!(parallel(&a, threads, b""), Vec::new(), "{threads} threads");
    }
}

#[test]
fn single_byte_patterns_at_every_boundary() {
    // Window = 1 (no overlap at all): every offset must still be owned
    // by exactly one chunk — a duplicated or dropped boundary byte would
    // change the count.
    let a = words(&[b"k"]);
    let input = vec![b'k'; 13]; // 13 is indivisible by 2, 4, 8
    for threads in [2, 4, 8] {
        let got = parallel(&a, threads, &input);
        assert_eq!(got.len(), 13, "{threads} threads");
        assert_eq!(got, nfa(&a, &input), "{threads} threads");
    }
}

//! Regression tests for the parallel scanner's input-chunking edge
//! cases: a chunkable shard's input is cut at `len * c / threads`, each
//! worker re-scans a bounded overlap window before its chunk, and
//! ownership of an offset belongs to exactly one chunk. These tests pin
//! the boundary arithmetic with hand-placed matches.
//!
//! The second half pins *streaming* chunk semantics for every
//! [`StreamingEngine`]: how the input is split into `feed` calls —
//! empty chunks, one-byte chunks, end-of-data arriving on an empty
//! final chunk — must never change the report stream relative to a
//! single block-mode scan.

use automatazoo::core::{Automaton, CounterMode, StartKind, SymbolClass};
use automatazoo::engines::{
    BitParallelEngine, CollectSink, Engine, LazyDfaEngine, NfaEngine, ParallelScanner,
    PrefilterEngine, Report, StreamingEngine,
};

/// One all-input chain per word, reporting `code = index`.
fn words(list: &[&[u8]]) -> Automaton {
    let mut a = Automaton::new();
    for (code, word) in list.iter().enumerate() {
        let classes: Vec<SymbolClass> = word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code as u32);
    }
    a
}

fn nfa(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    NfaEngine::new(a).expect("valid").scan(input, &mut sink);
    sink.sorted_reports()
}

fn parallel(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    ParallelScanner::new(a, threads)
        .expect("valid")
        .scan(input, &mut sink);
    sink.reports().to_vec()
}

#[test]
fn match_spanning_adjacent_chunks_is_found_once() {
    // 16-byte input, 4 threads: chunk boundaries at 4, 8, 12. Place
    // "abcd" at offsets 6..10 so it starts in chunk 1 and ends in chunk
    // 2 — only the overlap window lets the chunk-2 worker see it.
    let a = words(&[b"abcd"]);
    let mut input = vec![b'x'; 16];
    input[6..10].copy_from_slice(b"abcd");
    let expected = nfa(&a, &input);
    assert_eq!(expected.len(), 1);
    assert_eq!(expected[0].offset, 9);
    assert_eq!(parallel(&a, 4, &input), expected);
}

#[test]
fn match_ending_exactly_at_chunk_boundary() {
    // Chunk boundary at 8 (16 bytes, 2 threads): a match whose last
    // byte is offset 7 belongs to chunk 0; one ending at offset 8
    // belongs to chunk 1 but starts inside chunk 0.
    let a = words(&[b"ab"]);
    let mut input = vec![b'x'; 16];
    input[6..8].copy_from_slice(b"ab"); // report at 7 (last byte of chunk 0)
    input[7] = b'a'; // overwrite: "a" at 7, "b" at 8 -> report at 8
    input[8] = b'b';
    let expected = nfa(&a, &input);
    assert_eq!(
        expected.iter().map(|r| r.offset).collect::<Vec<_>>(),
        vec![8]
    );
    for threads in [1, 2, 4, 8] {
        assert_eq!(parallel(&a, threads, &input), expected, "{threads} threads");
    }
    // Now a clean match ending exactly on the boundary's last owned
    // offset (7).
    let mut input = vec![b'x'; 16];
    input[6..8].copy_from_slice(b"ab");
    let expected = nfa(&a, &input);
    assert_eq!(
        expected.iter().map(|r| r.offset).collect::<Vec<_>>(),
        vec![7]
    );
    for threads in [1, 2, 4, 8] {
        assert_eq!(parallel(&a, threads, &input), expected, "{threads} threads");
    }
}

#[test]
fn every_cut_position_of_a_sliding_match_agrees() {
    // Slide a 3-byte pattern across every offset of a 24-byte input and
    // compare against the NFA at several worker counts: every possible
    // relation between match span and chunk boundary is covered.
    let a = words(&[b"abc"]);
    for pos in 0..=21 {
        let mut input = vec![b'.'; 24];
        input[pos..pos + 3].copy_from_slice(b"abc");
        let expected = nfa(&a, &input);
        assert_eq!(expected.len(), 1, "pattern at {pos}");
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                parallel(&a, threads, &input),
                expected,
                "pattern at {pos}, {threads} threads"
            );
        }
    }
}

#[test]
fn input_shorter_than_thread_count() {
    let a = words(&[b"ab", b"b"]);
    for input in [&b"ab"[..], &b"b"[..], &b"a"[..]] {
        for threads in [4, 8, 16] {
            assert_eq!(
                parallel(&a, threads, input),
                nfa(&a, input),
                "input {input:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn empty_input_yields_no_reports() {
    let a = words(&[b"ab"]);
    for threads in [1, 2, 8] {
        assert_eq!(parallel(&a, threads, b""), Vec::new(), "{threads} threads");
    }
}

#[test]
fn single_byte_patterns_at_every_boundary() {
    // Window = 1 (no overlap at all): every offset must still be owned
    // by exactly one chunk — a duplicated or dropped boundary byte would
    // change the count.
    let a = words(&[b"k"]);
    let input = vec![b'k'; 13]; // 13 is indivisible by 2, 4, 8
    for threads in [2, 4, 8] {
        let got = parallel(&a, threads, &input);
        assert_eq!(got.len(), 13, "{threads} threads");
        assert_eq!(got, nfa(&a, &input), "{threads} threads");
    }
}

// ---------------------------------------------------------------------
// Streaming chunk semantics: feed-call boundaries are invisible.
// ---------------------------------------------------------------------

/// Feeds `input` split per `plan` (chunk lengths; the last carries eod,
/// even when it is empty) and returns the sorted stream.
fn stream(engine: &mut dyn StreamingEngine, input: &[u8], plan: &[usize]) -> Vec<Report> {
    assert_eq!(plan.iter().sum::<usize>(), input.len(), "plan covers input");
    let mut sink = CollectSink::new();
    let mut pos = 0;
    for (i, &len) in plan.iter().enumerate() {
        let eod = i + 1 == plan.len();
        engine.feed(&input[pos..pos + len], eod, &mut sink);
        pos += len;
    }
    sink.sorted_reports()
}

/// Every chunk plan an engine must be indifferent to, for `len` bytes:
/// block, halves, all 1-byte chunks, empty chunks scattered between
/// real ones, and a trailing empty end-of-data chunk.
fn plans(len: usize) -> Vec<Vec<usize>> {
    let mut plans = vec![
        vec![len],
        vec![len / 2, len - len / 2],
        vec![1; len],
        vec![0, len / 2, 0, 0, len - len / 2, 0],
        vec![len, 0],
    ];
    if len >= 3 {
        plans.push(vec![1, 0, 1, len - 3, 0, 1, 0]);
    }
    plans
}

/// Asserts every streaming engine matches its own block-mode stream on
/// every plan. `$`-anchored machines make the trailing-empty-eod plans
/// load-bearing: the held-back report must flush on the empty feed.
fn assert_stream_invariant(a: &Automaton, input: &[u8]) {
    let plans = plans(input.len());
    let block = nfa(a, input);
    let mut engines: Vec<(&str, Box<dyn StreamingEngine>)> = vec![
        ("nfa", Box::new(NfaEngine::new(a).expect("nfa builds"))),
        (
            "prefilter",
            Box::new(PrefilterEngine::new(a).expect("prefilter builds")),
        ),
    ];
    let mut noskip = NfaEngine::new(a).expect("nfa builds");
    noskip.set_quiescent_skip(false);
    engines.push(("nfa-noskip", Box::new(noskip)));
    if a.counter_count() == 0 {
        for max_states in [2, 17] {
            engines.push((
                "lazydfa",
                Box::new(LazyDfaEngine::with_max_states(a, max_states).expect("dfa builds")),
            ));
        }
        if let Ok(bp) = BitParallelEngine::new(a) {
            engines.push(("bitpar", Box::new(bp)));
        }
    }
    for (name, mut engine) in engines {
        for plan in &plans {
            let got = stream(engine.as_mut(), input, plan);
            assert_eq!(got, block, "{name} diverges on plan {plan:?}");
            engine.reset_stream();
        }
    }
}

#[test]
fn feed_boundaries_are_invisible_for_plain_chains() {
    let a = words(&[b"abc", b"bc", b"c"]);
    assert_stream_invariant(&a, b"xabcabxbcc");
}

#[test]
fn eod_on_an_empty_final_chunk_still_flushes_anchored_reports() {
    // `$`-anchored report: the final symbol is consumed by a non-final
    // feed, so the report is only emittable once eod arrives — on an
    // empty chunk. Dropping it (instead of holding it back) was a real
    // bug in every streaming engine, banked as `empty-eod-chunk-*`.
    let mut a = words(&[b"abz"]);
    let last = a.report_states()[0];
    a.set_report_eod_only(last, true);
    assert_stream_invariant(&a, b"xabz");
    // And when the input does NOT end in a match the anchored report
    // must stay silent on every plan.
    assert_stream_invariant(&a, b"xabzx");
}

#[test]
fn one_byte_chunks_preserve_counter_semantics_in_every_mode() {
    // A counter holds state across feeds; one-byte chunks force the
    // activation to cross a boundary on every symbol. Only the NFA
    // engine supports counters.
    for mode in [CounterMode::Latch, CounterMode::Pulse, CounterMode::Roll] {
        let mut a = Automaton::new();
        let trigger = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
        let counter = a.add_counter(3, mode);
        a.add_edge(trigger, counter);
        a.set_report(counter, 9);
        let reset = a.add_ste(SymbolClass::from_byte(b'r'), StartKind::AllInput);
        a.add_reset_edge(reset, counter);
        a.validate().expect("valid");

        let input = b"aaaaarabaaaa";
        let block = nfa(&a, input);
        for engine_name in ["skip", "noskip"] {
            let mut e = NfaEngine::new(&a).expect("nfa builds");
            e.set_quiescent_skip(engine_name == "skip");
            for plan in plans(input.len()) {
                let got = stream(&mut e, input, &plan);
                assert_eq!(
                    got, block,
                    "{mode:?}/{engine_name} diverges on plan {plan:?}"
                );
                e.reset_stream();
            }
        }
    }
}

#[test]
fn quiescent_skip_agrees_across_chunk_plans() {
    // A machine that goes quiescent mid-input (no active states, narrow
    // wake set) exercises the skip fast path across feed boundaries.
    let a = words(&[b"zq"]);
    let mut input = vec![b'.'; 40];
    input[17] = b'z';
    input[18] = b'q';
    assert_stream_invariant(&a, &input);
}

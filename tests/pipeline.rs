//! Cross-crate integration tests: the full pipeline from pattern sources
//! through compilation, transformation, serialization, and execution.

use automatazoo::core::{mnrl, AutomatonStats};
use automatazoo::engines::{CollectSink, Engine, LazyDfaEngine, NfaEngine, Report};
use automatazoo::passes::{merge_prefixes, merge_suffixes, remove_dead};
use automatazoo::regex::compile_ruleset;
use automatazoo::zoo::{BenchmarkId, Scale};

fn reports(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

#[test]
fn regex_to_mnrl_roundtrip_preserves_matching() {
    let rules = [r"/virus_[0-9]{3}/i", r"/\x00\xff+/s", "cat|dog"];
    let ruleset = compile_ruleset(rules);
    let json = mnrl::to_json(&ruleset.automaton, "roundtrip");
    let back = mnrl::from_json(&json).expect("valid document");
    assert_eq!(ruleset.automaton, back);
    let input = b"a dog with VIRUS_123 and \x00\xff\xff bytes";
    let a = reports(&mut NfaEngine::new(&ruleset.automaton).unwrap(), input);
    let b = reports(&mut NfaEngine::new(&back).unwrap(), input);
    assert_eq!(a, b);
    assert_eq!(a.len(), 4);
}

#[test]
fn optimization_passes_preserve_benchmark_semantics() {
    // For a sample of counter-free benchmarks: prefix merge, suffix
    // merge, and dead-state removal must not change the report stream.
    for id in [
        BenchmarkId::Protomata,
        BenchmarkId::Brill,
        BenchmarkId::Hamming18x3,
        BenchmarkId::EntityResolution,
        BenchmarkId::FileCarving,
    ] {
        let bench = id.build(Scale::Tiny);
        let window = bench.input.len().min(20_000);
        let input = &bench.input[..window];
        let baseline = reports(&mut NfaEngine::new(&bench.automaton).unwrap(), input);
        for (name, transformed) in [
            ("prefix", merge_prefixes(&bench.automaton).0),
            ("suffix", merge_suffixes(&bench.automaton).0),
            ("dead", remove_dead(&bench.automaton)),
        ] {
            let got = reports(&mut NfaEngine::new(&transformed).unwrap(), input);
            assert_eq!(baseline, got, "{name} pass broke {}", id.name());
        }
    }
}

#[test]
fn engines_agree_on_benchmarks() {
    // NFA and lazy DFA must agree on every counter-free benchmark.
    for id in [
        BenchmarkId::Snort,
        BenchmarkId::ClamAv,
        BenchmarkId::Protomata,
        BenchmarkId::Brill,
        BenchmarkId::Levenshtein19x3,
        BenchmarkId::SeqMatch6w6p,
        BenchmarkId::CrisprCasOffinder,
        BenchmarkId::Yara,
        BenchmarkId::YaraWide,
        BenchmarkId::FileCarving,
        BenchmarkId::ApPrng4,
    ] {
        let bench = id.build(Scale::Tiny);
        let window = bench.input.len().min(10_000);
        let input = &bench.input[..window];
        let nfa = reports(&mut NfaEngine::new(&bench.automaton).unwrap(), input);
        let dfa = reports(
            &mut LazyDfaEngine::with_max_states(&bench.automaton, 1 << 14).unwrap(),
            input,
        );
        assert_eq!(nfa, dfa, "engines disagree on {}", id.name());
    }
}

#[test]
fn benchmark_statistics_are_self_consistent() {
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let stats = AutomatonStats::compute(&bench.automaton);
        assert_eq!(stats.states, bench.automaton.state_count());
        assert_eq!(stats.edges, bench.automaton.edge_count());
        let total: f64 = stats.avg_subgraph_size * stats.subgraphs as f64;
        assert!(
            (total - stats.states as f64).abs() < 1e-6,
            "{}: avg * subgraphs != states",
            id.name()
        );
        // Compression never grows the automaton and keeps it valid.
        let (merged, mstats) = merge_prefixes(&bench.automaton);
        assert!(merged.state_count() <= stats.states);
        assert!(mstats.compression_factor() >= 0.0);
        merged.validate().expect("merged automaton valid");
    }
}

#[test]
fn mnrl_roundtrips_every_benchmark() {
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let json = mnrl::to_json(&bench.automaton, id.name());
        let back = mnrl::from_json(&json)
            .unwrap_or_else(|e| panic!("{} failed roundtrip: {e}", id.name()));
        assert_eq!(bench.automaton, back, "{} roundtrip mismatch", id.name());
    }
}

#[test]
fn facade_reexports_compose() {
    // The README quickstart flow, via the facade only.
    let automaton = automatazoo::regex::compile("/ab+c/i", 9).expect("compiles");
    let (optimized, _) = automatazoo::passes::merge_prefixes(&automaton);
    let mut engine = automatazoo::engines::NfaEngine::new(&optimized).expect("valid");
    let mut sink = automatazoo::engines::CollectSink::new();
    engine.scan(b"xxABBBCxx", &mut sink);
    assert_eq!(sink.reports().len(), 1);
    assert_eq!(sink.reports()[0].code.0, 9);
}

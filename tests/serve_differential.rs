//! Service-level differential testing: a [`ScanService`] session fed a
//! random chunk plan must reproduce the block-mode reference oracle
//! byte-for-byte — across whatever engine tier `Db::compile` selects,
//! through the artifact round trip, the session pool, and (in the
//! stress half) 4 threads of interleaved concurrent sessions with
//! random early closes.

use std::sync::Arc;

use automatazoo::oracle::{
    baseline, gen_automaton, gen_chunk_plan, gen_input, GenConfig, OracleRng,
};
use automatazoo::serve::{Db, DbConfig, ScanService, ServeLimits};

type Rep = (u64, u32);

fn feed_plan(svc: &ScanService, sid: u64, input: &[u8], plan: &[usize]) -> Vec<Rep> {
    let mut off = 0usize;
    for (i, &c) in plan.iter().enumerate() {
        let eod = i + 1 == plan.len();
        svc.feed(sid, &input[off..off + c], eod).expect("feed");
        off += c;
    }
    assert_eq!(off, input.len(), "chunk plan must cover the input");
    let mut got: Vec<Rep> = svc
        .drain(sid)
        .expect("drain")
        .into_iter()
        .map(|r| (r.offset, r.code.0))
        .collect();
    got.sort_unstable();
    got
}

/// 200 oracle seeds through one shared service: generate an automaton,
/// an input, and a chunk plan; the session's drained reports must equal
/// the reference engine's block scan. The Db round-trips through its
/// serialized artifact first, so the whole serve path is under test.
#[test]
fn service_sessions_match_block_oracle_over_200_seeds() {
    let cfg = GenConfig::default();
    let svc = ScanService::new(ServeLimits::default());
    for seed in 0..200u64 {
        let mut rng = OracleRng::new(0x5EED_0000 ^ seed);
        let a = gen_automaton(&mut rng, &cfg);
        let input = gen_input(&mut rng, &cfg, &a);
        let plan = gen_chunk_plan(&mut rng, input.len());
        let mut expected = baseline(&a, &input);
        expected.sort_unstable();

        let artifact = Db::compile(a, DbConfig::default())
            .expect("every oracle automaton compiles")
            .serialize();
        let db = Db::deserialize(&artifact).expect("round trip");
        let sid = svc.open("oracle", &db).expect("open");
        let got = feed_plan(&svc, sid, &input, &plan);
        svc.close(sid).expect("close");
        assert_eq!(
            got,
            expected,
            "seed {seed}: session reports diverged from the block oracle \
             (plan {plan:?}, {} input bytes)",
            input.len()
        );
    }
    assert_eq!(svc.session_count(), 0);
    assert_eq!(svc.bytes_in_flight(), 0);
}

/// 64 sessions across 4 threads on one service, interleaved feeds and
/// random early closes: every completed session must still match its
/// own oracle (no cross-session leakage), and every gauge must return
/// to zero.
#[test]
fn concurrent_sessions_do_not_leak_state() {
    const THREADS: usize = 4;
    const SESSIONS_PER_THREAD: usize = 16;

    // A few distinct workloads with *different* expected report streams,
    // so any cross-session contamination changes some session's output.
    let cfg = GenConfig {
        max_states: 10,
        counters: true,
        max_input_len: 96,
        chunk_plans: 0,
    };
    struct Workload {
        db: Arc<Db>,
        input: Vec<u8>,
        expected: Vec<Rep>,
    }
    let workloads: Vec<Arc<Workload>> = (0..5u64)
        .map(|w| {
            let mut rng = OracleRng::new(0xC0_FFEE ^ w);
            let a = gen_automaton(&mut rng, &cfg);
            let input = gen_input(&mut rng, &cfg, &a);
            let mut expected = baseline(&a, &input);
            expected.sort_unstable();
            let db = Db::compile(a, DbConfig::default()).expect("compile");
            Arc::new(Workload {
                db,
                input,
                expected,
            })
        })
        .collect();

    let svc = ScanService::new(ServeLimits::default());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let svc = svc.clone();
        let workloads = workloads.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = OracleRng::new(0xBEEF ^ t as u64);
            struct Live {
                wl: Arc<Workload>,
                sid: u64,
                fed: usize,
            }
            let mut live: Vec<Live> = (0..SESSIONS_PER_THREAD)
                .map(|s| {
                    let wl = workloads[(t + s) % workloads.len()].clone();
                    let sid = svc.open(&format!("tenant-{t}"), &wl.db).expect("open");
                    Live { wl, sid, fed: 0 }
                })
                .collect();

            // Interleave chunked feeds round-robin; close ~1 in 4
            // sessions early, mid-stream, to exercise executor recycling
            // under concurrency.
            while !live.is_empty() {
                let mut i = 0;
                while i < live.len() {
                    let len = live[i].wl.input.len();
                    if live[i].fed < len && rng.chance(1, 12) {
                        // Early close: this stream's reports are
                        // intentionally partial; just release it.
                        let s = live.swap_remove(i);
                        svc.close(s.sid).expect("early close");
                        continue;
                    }
                    let chunk = 1 + rng.below(17) as usize;
                    let end = (live[i].fed + chunk).min(len);
                    let eod = end == len;
                    svc.feed(live[i].sid, &live[i].wl.input[live[i].fed..end], eod)
                        .expect("feed");
                    live[i].fed = end;
                    if eod {
                        let s = live.swap_remove(i);
                        let mut got: Vec<Rep> = svc
                            .drain(s.sid)
                            .expect("drain")
                            .into_iter()
                            .map(|r| (r.offset, r.code.0))
                            .collect();
                        got.sort_unstable();
                        assert_eq!(
                            got, s.wl.expected,
                            "thread {t} session {} leaked or lost state",
                            s.sid
                        );
                        svc.close(s.sid).expect("close");
                        continue;
                    }
                    i += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress thread");
    }
    assert_eq!(svc.session_count(), 0, "all sessions released");
    assert_eq!(svc.bytes_in_flight(), 0, "no admitted bytes leaked");
    let snap = svc.metrics().snapshot();
    assert_eq!(snap.sessions_opened, (THREADS * SESSIONS_PER_THREAD) as u64);
    assert_eq!(snap.sessions_opened, snap.sessions_closed);
    assert!(snap.sessions_peak >= SESSIONS_PER_THREAD as u64);
    assert_eq!(snap.rejected_feeds, 0);
}

//! Service-level differential testing: a [`ScanService`] session fed a
//! random chunk plan must reproduce the block-mode reference oracle
//! byte-for-byte — across whatever engine tier `Db::compile` selects,
//! through the artifact round trip, the session pool, and (in the
//! stress half) 4 threads of interleaved concurrent sessions with
//! random early closes.

use std::sync::Arc;

use automatazoo::core::{Automaton, StartKind, SymbolClass};
use automatazoo::fuzzy::{fuzzify, EditProfile};
use automatazoo::oracle::{
    baseline, gen_automaton, gen_chunk_plan, gen_fuzzy_input, gen_input, GenConfig, OracleRng,
};
use automatazoo::serve::proto::{recv_response, send_request};
use automatazoo::serve::{
    Db, DbConfig, DbRef, Listener, Request, Response, ScanService, ServeLimits, Server,
};

type Rep = (u64, u32);

fn feed_plan(svc: &ScanService, sid: u64, input: &[u8], plan: &[usize]) -> Vec<Rep> {
    let mut off = 0usize;
    for (i, &c) in plan.iter().enumerate() {
        let eod = i + 1 == plan.len();
        svc.feed(sid, &input[off..off + c], eod).expect("feed");
        off += c;
    }
    assert_eq!(off, input.len(), "chunk plan must cover the input");
    let mut got: Vec<Rep> = svc
        .drain(sid)
        .expect("drain")
        .into_iter()
        .map(|r| (r.offset, r.code.0))
        .collect();
    got.sort_unstable();
    got
}

/// 200 oracle seeds through one shared service: generate an automaton,
/// an input, and a chunk plan; the session's drained reports must equal
/// the reference engine's block scan. The Db round-trips through its
/// serialized artifact first, so the whole serve path is under test.
#[test]
fn service_sessions_match_block_oracle_over_200_seeds() {
    let cfg = GenConfig::default();
    let svc = ScanService::new(ServeLimits::default());
    for seed in 0..200u64 {
        let mut rng = OracleRng::new(0x5EED_0000 ^ seed);
        let a = gen_automaton(&mut rng, &cfg);
        let input = gen_input(&mut rng, &cfg, &a);
        let plan = gen_chunk_plan(&mut rng, input.len());
        let mut expected = baseline(&a, &input);
        expected.sort_unstable();

        let artifact = Db::compile(a, DbConfig::default())
            .expect("every oracle automaton compiles")
            .serialize();
        let db = Db::deserialize(&artifact).expect("round trip");
        let sid = svc.open("oracle", &db).expect("open");
        let got = feed_plan(&svc, sid, &input, &plan);
        svc.close(sid).expect("close");
        assert_eq!(
            got,
            expected,
            "seed {seed}: session reports diverged from the block oracle \
             (plan {plan:?}, {} input bytes)",
            input.len()
        );
    }
    assert_eq!(svc.session_count(), 0);
    assert_eq!(svc.bytes_in_flight(), 0);
}

/// Fuzzy sessions through the service: the client publishes an *exact*
/// literal-chain database, opens it at an edit distance, and the
/// session's chunked reports must equal the block oracle run on the
/// locally-fuzzified Levenshtein mesh — 100 seeds of random chains,
/// inputs spliced with near-miss occurrences, `k` in `1..=2`.
#[test]
fn fuzzy_sessions_match_the_fuzzified_block_oracle() {
    const POOL: &[u8] = b"abz";
    let cfg = GenConfig::default();
    let svc = ScanService::new(ServeLimits::default());
    for seed in 0..100u64 {
        let mut rng = OracleRng::new(0xF0_2217 ^ seed);
        let chains = 1 + rng.below(2) as usize;
        let mut a = Automaton::new();
        let mut patterns = Vec::new();
        for c in 0..chains {
            let len = 4 + rng.below(4) as usize;
            let pattern: Vec<u8> = (0..len).map(|_| *rng.pick(POOL)).collect();
            let classes: Vec<SymbolClass> =
                pattern.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, c as u32);
            patterns.push(pattern);
        }
        let k = 1 + rng.below(2) as u8;
        let input = gen_fuzzy_input(&mut rng, &cfg, &patterns);
        let plan = gen_chunk_plan(&mut rng, input.len());
        let mesh = fuzzify(&a, k as usize, EditProfile::LEVENSHTEIN)
            .expect("literal chains fuzzify")
            .0;
        let mut expected = baseline(&mesh, &input);
        expected.sort_unstable();

        // The artifact round trip carries the *exact* machine; the
        // distance is a session-open property, resolved server-side.
        let artifact = Db::compile(a, DbConfig::default())
            .expect("compile")
            .serialize();
        let base = Db::deserialize(&artifact).expect("round trip");
        let db = svc.db_at_distance(&base, k).expect("derive mesh db");
        let sid = svc.open("fuzzy", &db).expect("open");
        let got = feed_plan(&svc, sid, &input, &plan);
        svc.close(sid).expect("close");
        assert_eq!(
            got,
            expected,
            "seed {seed}: fuzzy session diverged from the fuzzified block \
             oracle (k {k}, plan {plan:?}, {} input bytes)",
            input.len()
        );
    }
    assert_eq!(svc.session_count(), 0);
}

/// `OPEN` carries `max_edits` over the wire: the same artifact opened
/// at distance 0 and distance 1 on one connection gives an exact and an
/// approximate stream respectively, verified against the block oracle;
/// an unencodable distance is a typed `ERROR`, not a hangup.
#[test]
fn open_with_max_edits_round_trips_over_the_wire() {
    let pattern = b"exploit";
    let classes: Vec<SymbolClass> = pattern.iter().map(|&b| SymbolClass::from_byte(b)).collect();
    let mut a = Automaton::new();
    let (_, last) = a.add_chain(&classes, StartKind::AllInput);
    a.set_report(last, 42);
    let input = b"zz explojt zz exploit zz".to_vec();
    let mesh = fuzzify(&a, 1, EditProfile::LEVENSHTEIN).expect("fuzzify").0;
    let mut fuzzy_expected: Vec<Rep> = baseline(&mesh, &input);
    fuzzy_expected.sort_unstable();
    let mut exact_expected: Vec<Rep> = baseline(&a, &input);
    exact_expected.sort_unstable();
    assert!(
        fuzzy_expected.len() > exact_expected.len(),
        "the mutated occurrence must separate the two streams"
    );
    let artifact = Db::compile(a, DbConfig::default())
        .expect("compile")
        .serialize();

    let svc = ScanService::new(ServeLimits::default());
    let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = Server::new(svc, listener);
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");

    let mut session = |max_edits: u8| -> Vec<Rep> {
        send_request(
            &mut conn,
            &Request::Open {
                tenant: "ids".into(),
                db: DbRef::Artifact(artifact.clone()),
                max_edits,
            },
        )
        .expect("send open");
        let sid = match recv_response(&mut conn).expect("recv") {
            Response::Opened { sid } => sid,
            other => panic!("expected Opened, got {other:?}"),
        };
        send_request(
            &mut conn,
            &Request::Feed {
                sid,
                eod: true,
                data: input.clone(),
            },
        )
        .expect("send feed");
        let mut got: Vec<Rep> = match recv_response(&mut conn).expect("recv") {
            Response::Reports { reports, .. } => reports,
            other => panic!("expected Reports, got {other:?}"),
        };
        send_request(&mut conn, &Request::Close { sid }).expect("send close");
        match recv_response(&mut conn).expect("recv") {
            Response::Reports { reports, .. } => got.extend(reports),
            other => panic!("expected final Reports, got {other:?}"),
        }
        assert!(matches!(
            recv_response(&mut conn).expect("recv"),
            Response::Closed { .. }
        ));
        got.sort_unstable();
        got
    };
    assert_eq!(session(0), exact_expected);
    assert_eq!(session(1), fuzzy_expected);

    // Distance 9 does not fit the artifact encoding: typed Db error.
    send_request(
        &mut conn,
        &Request::Open {
            tenant: "ids".into(),
            db: DbRef::Artifact(artifact.clone()),
            max_edits: 9,
        },
    )
    .expect("send open");
    match recv_response(&mut conn).expect("recv") {
        Response::Error { code, message } => {
            assert_eq!(code, 7, "Db error category");
            assert!(message.contains("edit budget"), "got {message:?}");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    drop(conn);
    handle.join().expect("server thread");
}

/// 64 sessions across 4 threads on one service, interleaved feeds and
/// random early closes: every completed session must still match its
/// own oracle (no cross-session leakage), and every gauge must return
/// to zero.
#[test]
fn concurrent_sessions_do_not_leak_state() {
    const THREADS: usize = 4;
    const SESSIONS_PER_THREAD: usize = 16;

    // A few distinct workloads with *different* expected report streams,
    // so any cross-session contamination changes some session's output.
    let cfg = GenConfig {
        max_states: 10,
        counters: true,
        max_input_len: 96,
        chunk_plans: 0,
        fuzzy: false,
    };
    struct Workload {
        db: Arc<Db>,
        input: Vec<u8>,
        expected: Vec<Rep>,
    }
    let workloads: Vec<Arc<Workload>> = (0..5u64)
        .map(|w| {
            let mut rng = OracleRng::new(0xC0_FFEE ^ w);
            let a = gen_automaton(&mut rng, &cfg);
            let input = gen_input(&mut rng, &cfg, &a);
            let mut expected = baseline(&a, &input);
            expected.sort_unstable();
            let db = Db::compile(a, DbConfig::default()).expect("compile");
            Arc::new(Workload {
                db,
                input,
                expected,
            })
        })
        .collect();

    let svc = ScanService::new(ServeLimits::default());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let svc = svc.clone();
        let workloads = workloads.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = OracleRng::new(0xBEEF ^ t as u64);
            struct Live {
                wl: Arc<Workload>,
                sid: u64,
                fed: usize,
            }
            let mut live: Vec<Live> = (0..SESSIONS_PER_THREAD)
                .map(|s| {
                    let wl = workloads[(t + s) % workloads.len()].clone();
                    let sid = svc.open(&format!("tenant-{t}"), &wl.db).expect("open");
                    Live { wl, sid, fed: 0 }
                })
                .collect();

            // Interleave chunked feeds round-robin; close ~1 in 4
            // sessions early, mid-stream, to exercise executor recycling
            // under concurrency.
            while !live.is_empty() {
                let mut i = 0;
                while i < live.len() {
                    let len = live[i].wl.input.len();
                    if live[i].fed < len && rng.chance(1, 12) {
                        // Early close: this stream's reports are
                        // intentionally partial; just release it.
                        let s = live.swap_remove(i);
                        svc.close(s.sid).expect("early close");
                        continue;
                    }
                    let chunk = 1 + rng.below(17) as usize;
                    let end = (live[i].fed + chunk).min(len);
                    let eod = end == len;
                    svc.feed(live[i].sid, &live[i].wl.input[live[i].fed..end], eod)
                        .expect("feed");
                    live[i].fed = end;
                    if eod {
                        let s = live.swap_remove(i);
                        let mut got: Vec<Rep> = svc
                            .drain(s.sid)
                            .expect("drain")
                            .into_iter()
                            .map(|r| (r.offset, r.code.0))
                            .collect();
                        got.sort_unstable();
                        assert_eq!(
                            got, s.wl.expected,
                            "thread {t} session {} leaked or lost state",
                            s.sid
                        );
                        svc.close(s.sid).expect("close");
                        continue;
                    }
                    i += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress thread");
    }
    assert_eq!(svc.session_count(), 0, "all sessions released");
    assert_eq!(svc.bytes_in_flight(), 0, "no admitted bytes leaked");
    let snap = svc.metrics().snapshot();
    assert_eq!(snap.sessions_opened, (THREADS * SESSIONS_PER_THREAD) as u64);
    assert_eq!(snap.sessions_opened, snap.sessions_closed);
    assert!(snap.sessions_peak >= SESSIONS_PER_THREAD as u64);
    assert_eq!(snap.rejected_feeds, 0);
}

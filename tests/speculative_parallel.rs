//! Differential tests for the speculative chunk-parallel scanner on the
//! three shapes that used to force a whole-input fallback: counter-bearing
//! components, reachable cycles, and `StartOfData` anchors. The
//! `ParallelScanner` must produce the *byte-identical* sorted report
//! stream as the single-threaded [`NfaEngine`] at every thread count —
//! both for block scans (where the input is split into speculative
//! subchunks stitched by summary composition) and for streaming feeds
//! (including 1-byte and empty chunks).

use automatazoo::core::{Automaton, CounterMode, StartKind, SymbolClass};
use automatazoo::engines::{
    CollectSink, Engine, NfaEngine, ParallelScanner, Report, StreamingEngine,
};

const THREADS: &[usize] = &[1, 2, 4, 8];

fn nfa_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

fn parallel_reports(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
    let mut scanner = ParallelScanner::new(a, threads).expect("valid");
    let mut sink = CollectSink::new();
    scanner.scan(input, &mut sink);
    sink.sorted_reports()
}

/// Feeds `chunks` through the streaming interface (final chunk carries
/// end-of-data) and returns the merged sorted stream.
fn streamed_reports(a: &Automaton, threads: usize, chunks: &[&[u8]]) -> Vec<Report> {
    let mut scanner = ParallelScanner::new(a, threads).expect("valid");
    let mut sink = CollectSink::new();
    for (i, chunk) in chunks.iter().enumerate() {
        scanner.feed(chunk, i + 1 == chunks.len(), &mut sink);
    }
    sink.sorted_reports()
}

fn nfa_streamed_reports(a: &Automaton, chunks: &[&[u8]]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    let mut sink = CollectSink::new();
    for (i, chunk) in chunks.iter().enumerate() {
        engine.feed(chunk, i + 1 == chunks.len(), &mut sink);
    }
    sink.sorted_reports()
}

/// `ab` repeated into a terminal latch counter with an AllInput reset —
/// the SPM shape: counting requires the true prefix state, so a naive
/// chunk scan is unsound and the old scanner ran the whole input on one
/// worker.
fn counter_machine(mode: CounterMode) -> Automaton {
    let mut a = Automaton::new();
    let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let s1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    a.add_edge(s0, s1);
    let c = a.add_counter(3, mode);
    a.add_edge(s1, c);
    a.set_report(c, 7);
    let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
    a.add_reset_edge(z, c);
    a.validate().expect("valid");
    a
}

/// `a b* c` — a reachable self-loop, so activity can persist across any
/// chunk boundary.
fn cycle_machine() -> Automaton {
    let mut a = Automaton::new();
    let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let s1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    let s2 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::None);
    a.add_edge(s0, s1);
    a.add_edge(s1, s1);
    a.add_edge(s0, s2);
    a.add_edge(s1, s2);
    a.set_report(s2, 4);
    a.validate().expect("valid");
    a
}

/// Anchored `qr` — only matches at offset 1, so every chunk except the
/// first must know it is not at the start of data.
fn anchored_machine() -> Automaton {
    let mut a = Automaton::new();
    let s0 = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::StartOfData);
    let s1 = a.add_ste(SymbolClass::from_byte(b'r'), StartKind::None);
    a.add_edge(s0, s1);
    a.set_report(s1, 2);
    a.validate().expect("valid");
    a
}

/// A deterministic pseudorandom input over the alphabet the three
/// machines care about.
fn lcg_input(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"abcqrz"[(x >> 33) as usize % 6]
        })
        .collect()
}

#[test]
fn counter_shards_agree_with_nfa_at_every_thread_count() {
    for mode in [CounterMode::Latch, CounterMode::Pulse, CounterMode::Roll] {
        let a = counter_machine(mode);
        for seed in 0..4 {
            let input = lcg_input(257, seed);
            let expect = nfa_reports(&a, &input);
            for &t in THREADS {
                assert_eq!(
                    parallel_reports(&a, t, &input),
                    expect,
                    "mode {mode:?}, seed {seed}, {t} threads"
                );
            }
        }
    }
}

#[test]
fn cycle_shards_agree_with_nfa_at_every_thread_count() {
    let a = cycle_machine();
    for seed in 0..4 {
        let input = lcg_input(313, seed);
        let expect = nfa_reports(&a, &input);
        for &t in THREADS {
            assert_eq!(
                parallel_reports(&a, t, &input),
                expect,
                "seed {seed}, {t} threads"
            );
        }
    }
}

#[test]
fn anchored_shards_agree_with_nfa_at_every_thread_count() {
    let a = anchored_machine();
    // Both a matching prefix and a non-matching one: the anchored pair
    // must fire exactly once at offset 1 or never.
    for input in [b"qr".to_vec(), lcg_input(101, 9), {
        let mut v = b"qr".to_vec();
        v.extend(lcg_input(99, 3));
        v
    }] {
        let expect = nfa_reports(&a, &input);
        for &t in THREADS {
            assert_eq!(parallel_reports(&a, t, &input), expect, "{t} threads");
        }
    }
}

#[test]
fn hard_shapes_actually_take_the_speculative_path() {
    for a in [
        counter_machine(CounterMode::Latch),
        cycle_machine(),
        anchored_machine(),
    ] {
        let scanner = ParallelScanner::new(&a, 4).expect("valid");
        assert_eq!(scanner.speculative_shard_count(), 1);
        assert_eq!(
            scanner.whole_input_shard_count(),
            0,
            "no whole-input fallback for a terminal-counter machine"
        );
    }
}

#[test]
fn streaming_with_one_byte_and_empty_chunks_matches_nfa() {
    let machines = [
        counter_machine(CounterMode::Latch),
        cycle_machine(),
        anchored_machine(),
    ];
    let input = lcg_input(61, 5);
    for a in &machines {
        // Byte-at-a-time, with empty feeds interleaved and an empty
        // end-of-data feed.
        let mut chunks: Vec<&[u8]> = Vec::new();
        for (i, b) in input.iter().enumerate() {
            chunks.push(std::slice::from_ref(b));
            if i % 7 == 0 {
                chunks.push(&[]);
            }
        }
        chunks.push(&[]);
        let expect = nfa_streamed_reports(a, &chunks);
        for &t in THREADS {
            assert_eq!(streamed_reports(a, t, &chunks), expect, "{t} threads");
        }
    }
}

#[test]
fn streaming_mixed_chunk_sizes_matches_nfa() {
    let machines = [
        counter_machine(CounterMode::Pulse),
        cycle_machine(),
        anchored_machine(),
    ];
    let input = lcg_input(500, 11);
    // Uneven cuts: 1, 2, 3, ... byte chunks wrapping around.
    let mut chunks: Vec<&[u8]> = Vec::new();
    let mut pos = 0usize;
    let mut step = 1usize;
    while pos < input.len() {
        let end = (pos + step).min(input.len());
        chunks.push(&input[pos..end]);
        pos = end;
        step = step % 9 + 1;
    }
    for a in &machines {
        let expect = nfa_streamed_reports(a, &chunks);
        for &t in THREADS {
            assert_eq!(streamed_reports(a, t, &chunks), expect, "{t} threads");
        }
    }
}

#[test]
fn more_subchunks_than_threads_stress() {
    // A long input at low thread counts forces the job queue to hand
    // multiple speculative subchunks to the same worker, exercising the
    // summary-slot indexing rather than a 1:1 worker:chunk mapping.
    let mut a = Automaton::new();
    // Combine all three hard shapes into one automaton so a single scan
    // carries counter pulses, cycle activity, and the anchor seam.
    let s0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let s1 = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    a.add_edge(s0, s1);
    let c = a.add_counter(2, CounterMode::Latch);
    a.add_edge(s1, c);
    a.set_report(c, 1);
    let z = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
    a.add_reset_edge(z, c);
    let l0 = a.add_ste(SymbolClass::from_byte(b'c'), StartKind::AllInput);
    let l1 = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::None);
    a.add_edge(l0, l1);
    a.add_edge(l1, l1);
    a.set_report(l1, 2);
    let m0 = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::StartOfData);
    a.set_report(m0, 3);
    a.validate().expect("valid");

    let input = lcg_input(4096, 17);
    let expect = nfa_reports(&a, &input);
    for &t in THREADS {
        assert_eq!(parallel_reports(&a, t, &input), expect, "{t} threads");
    }
    // And the same input streamed in chunks far outnumbering the
    // workers.
    let chunks: Vec<&[u8]> = input.chunks(37).collect();
    let expect = nfa_streamed_reports(&a, &chunks);
    for &t in THREADS {
        assert_eq!(streamed_reports(&a, t, &chunks), expect, "{t} threads");
    }
}

//! Differential testing for the quiescence-aware NFA scan and the
//! literal-prefilter engine: both are pure performance features, so the
//! `(offset, code)`-sorted report stream must be *byte-identical* to the
//! baseline NFA scan (quiescent skip disabled) on random automata, on
//! every benchmark in the suite, and across streaming chunk boundaries
//! that split required literals.

use automatazoo::core::{Automaton, StartKind, StateId, SymbolClass};
use automatazoo::engines::{
    CollectSink, Engine, NfaEngine, PrefilterEngine, Report, StreamingEngine,
};
use automatazoo::zoo::{BenchmarkId, Scale};
use proptest::prelude::*;

/// The reference stream: the sparse NFA with the quiescent skip forced
/// off — the plain byte-at-a-time VASim-equivalent scan.
fn baseline_reports(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    engine.set_quiescent_skip(false);
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

fn sorted_reports(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

/// Strategy: a random counter-free automaton over `{a..d}` with random
/// edges (cycles included), start kinds, and report codes — the same
/// shape family as `tests/differential.rs`, which exercises every
/// prefilter decision path (cycles, anchors, weak literals).
fn arb_automaton() -> impl Strategy<Value = Automaton> {
    let state = (
        proptest::collection::vec(prop::bool::ANY, 4),
        0..3u8,
        proptest::option::of(0..8u32),
    );
    (
        proptest::collection::vec(state, 1..12),
        proptest::collection::vec((0..12usize, 0..12usize), 0..24),
    )
        .prop_map(|(states, edges)| {
            let n = states.len();
            let mut a = Automaton::new();
            for (class_bits, start, report) in &states {
                let mut class = SymbolClass::new();
                for (i, &set) in class_bits.iter().enumerate() {
                    if set {
                        class.insert(b'a' + i as u8);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = match start {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let id = a.add_ste(class, start);
                if let Some(code) = report {
                    a.set_report(id, *code);
                }
            }
            for &(from, to) in &edges {
                a.add_edge(StateId::new(from % n), StateId::new(to % n));
            }
            a
        })
        .prop_filter("needs a start state", |a| a.validate().is_ok())
}

/// Strategy: literal chains long enough (up to 8 bytes) that the
/// prefilter extracts full-strength required literals, embedded in an
/// input that is mostly filler — the shape the quiescent skip and the
/// literal gate are built for.
fn arb_literal_chains() -> impl Strategy<Value = Automaton> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 2..9),
        1..8,
    )
    .prop_map(|words| {
        let mut a = Automaton::new();
        for (code, w) in words.iter().enumerate() {
            let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, code as u32);
        }
        a
    })
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'a', b'b', b'c', b'd', b' ', b' ']),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn skip_and_prefilter_match_baseline_on_random_automata(
        a in arb_automaton(),
        input in arb_input(),
    ) {
        let reference = baseline_reports(&a, &input);
        let mut skip = NfaEngine::new(&a).expect("valid");
        prop_assert_eq!(&reference, &sorted_reports(&mut skip, &input),
                        "quiescent skip diverged");
        let mut pf = PrefilterEngine::new(&a).expect("valid");
        prop_assert_eq!(&reference, &sorted_reports(&mut pf, &input),
                        "prefilter diverged");
    }

    #[test]
    fn streaming_cuts_match_baseline_on_literal_chains(
        a in arb_literal_chains(),
        input in arb_input(),
        cut_frac in 0..=100usize,
    ) {
        // A random cut lands inside required literals often at these
        // word lengths; quiescence and the Aho–Corasick state must both
        // carry across the boundary.
        let reference = baseline_reports(&a, &input);
        let cut = input.len() * cut_frac / 100;
        let chunks = [&input[..cut], &input[cut..]];
        let mut skip = NfaEngine::new(&a).expect("valid");
        let mut sink = CollectSink::new();
        skip.scan_chunks(chunks, &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports(),
                        "quiescent skip diverged across a feed boundary");
        let mut pf = PrefilterEngine::new(&a).expect("valid");
        let mut sink = CollectSink::new();
        pf.scan_chunks(chunks, &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports(),
                        "prefilter diverged across a feed boundary");
    }
}

/// Every cut position through a hit region: the literal (and the
/// quiescent stretch before it) is split at each possible byte.
#[test]
fn every_cut_through_a_literal_matches() {
    let mut a = Automaton::new();
    for (code, word) in [&b"needle"[..], &b"edl"[..]].iter().enumerate() {
        let classes: Vec<SymbolClass> = word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code as u32);
    }
    let input = b"   needle  needleedl ";
    let reference = baseline_reports(&a, input);
    assert!(!reference.is_empty());
    for cut in 0..=input.len() {
        let chunks = [&input[..cut], &input[cut..]];
        let mut skip = NfaEngine::new(&a).expect("valid");
        let mut sink = CollectSink::new();
        skip.scan_chunks(chunks, &mut sink);
        assert_eq!(reference, sink.sorted_reports(), "nfa skip @ cut {cut}");
        let mut pf = PrefilterEngine::new(&a).expect("valid");
        let mut sink = CollectSink::new();
        pf.scan_chunks(chunks, &mut sink);
        assert_eq!(reference, sink.sorted_reports(), "prefilter @ cut {cut}");
    }
}

/// The whole suite: all 27 benchmarks at tiny scale, block scans and
/// uneven streaming chunks, quiescent skip and prefilter vs baseline.
#[test]
fn all_benchmarks_match_baseline() {
    for id in BenchmarkId::ALL {
        let bench = id.build(Scale::Tiny);
        let window = bench.input.len().min(8_000);
        let input = &bench.input[..window];
        let reference = baseline_reports(&bench.automaton, input);

        let mut skip = NfaEngine::new(&bench.automaton).expect("valid");
        assert_eq!(
            reference,
            sorted_reports(&mut skip, input),
            "quiescent skip diverged on {}",
            id.name()
        );

        let mut pf = PrefilterEngine::new(&bench.automaton).expect("valid");
        assert_eq!(
            reference,
            sorted_reports(&mut pf, input),
            "prefilter diverged on {}",
            id.name()
        );

        // Streaming in uneven chunks (prime size so boundaries drift
        // through literals); engines are reused from the block scans to
        // also prove reset_stream fully clears quiescence/gate state.
        let chunks: Vec<&[u8]> = input.chunks(997).collect();
        let mut sink = CollectSink::new();
        skip.scan_chunks(chunks.clone(), &mut sink);
        assert_eq!(
            reference,
            sink.sorted_reports(),
            "streaming quiescent skip diverged on {}",
            id.name()
        );
        let mut sink = CollectSink::new();
        pf.scan_chunks(chunks, &mut sink);
        assert_eq!(
            reference,
            sink.sorted_reports(),
            "streaming prefilter diverged on {}",
            id.name()
        );
    }
}

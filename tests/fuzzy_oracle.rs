//! A 1000-seed differential-oracle campaign over *fuzzy* automata —
//! edit-distance meshes from the `azoo-fuzzy` construction (random
//! pattern × `k <= 3` × edit-cost profile) on inputs spliced with
//! near-miss pattern copies — run through the full engine matrix in
//! block mode and under random streaming chunk plans, with zero
//! tolerated divergences.
//!
//! Passes are left out (`check_passes: false`): the pass cross-checks
//! have their own thousand-seed campaign (`tests/reduce_oracle.rs`),
//! and an engine-only run keeps this one inside the debug-profile test
//! budget. Any divergence is shrunk and banked under `tests/bugbank/`
//! before the test fails.

use std::path::Path;

use automatazoo::oracle::{run_seed, shrink, BugbankEntry, EngineKind, GenConfig, OracleConfig};

const SEEDS: u64 = 1000;

#[test]
fn thousand_seed_fuzzy_engine_campaign_is_divergence_free() {
    let cfg = OracleConfig {
        gen: GenConfig {
            fuzzy: true,
            ..GenConfig::default()
        },
        engines: EngineKind::default_set(),
        check_passes: false,
    };
    let mut divergences = Vec::new();
    for seed in 0..SEEDS {
        if let Some(d) = run_seed(seed, &cfg) {
            let d = shrink(&d);
            let name = format!("fuzzy-oracle-seed-{seed}");
            if let Some(entry) =
                BugbankEntry::from_divergence(&name, "found by tests/fuzzy_oracle.rs", &d)
            {
                // Bank the witness before failing: the repro outlives
                // this test run.
                let _ = entry.save(Path::new("tests/bugbank"));
            }
            divergences.push(format!(
                "seed {seed} diverged on {}: expected {:?}, got {:?} (banked as {name})",
                d.subject.label(),
                d.expected,
                d.got
            ));
        }
    }
    assert!(
        divergences.is_empty(),
        "fuzzy engine campaign found divergences:\n{}",
        divergences.join("\n")
    );
}

/// The campaign only proves cross-engine agreement if the matrix really
/// holds every adapter configuration — pin the portfolio's breadth and
/// that the generator in this mode emits genuine multi-layer meshes.
#[test]
fn fuzzy_campaign_matrix_covers_all_engine_configs() {
    let engines = EngineKind::default_set();
    assert!(
        engines.len() >= 14,
        "engine matrix shrank to {} configs",
        engines.len()
    );
    for label in [
        "nfa",
        "nfa-noskip",
        "lazydfa",
        "bitpar",
        "prefilter",
        "sheng",
    ] {
        assert!(
            engines
                .iter()
                .any(|k| k.label() == label || k.label().starts_with(&format!("{label}:"))),
            "{label} missing from the default engine set"
        );
    }

    let cfg = GenConfig {
        fuzzy: true,
        ..GenConfig::default()
    };
    let mut multi_layer = 0usize;
    for seed in 0..100 {
        let mut rng = automatazoo::oracle::OracleRng::new(seed);
        let (a, patterns) = automatazoo::oracle::gen_fuzzy_automaton(&mut rng, &cfg);
        assert_eq!(a.validate_all(), Vec::new(), "seed {seed}");
        if a.report_states().len() > patterns.len() {
            multi_layer += 1;
        }
    }
    assert!(
        multi_layer >= 30,
        "only {multi_layer}/100 seeds produced multi-layer meshes"
    );
}

//! Cross-engine differential testing: every engine that accepts an
//! automaton must emit the *byte-identical* `(offset, code)`-sorted
//! report stream — the invariant that makes the engine portfolio (and
//! the parallel scanner's merge) safe to select from freely.
//!
//! Random automata (with cycles and anchors) and random chain sets are
//! scanned by the NFA engine (reference), the lazy DFA, the bit-parallel
//! engine (where the shape allows), and the parallel scanner at 1, 2,
//! and 4 worker threads.

use automatazoo::core::{Automaton, StartKind, StateId, SymbolClass};
use automatazoo::engines::{
    BitParallelEngine, CollectSink, Engine, LazyDfaEngine, NfaEngine, ParallelScanner, Report,
};
use proptest::prelude::*;

/// Strategy: a random counter-free automaton over `{a..d}` with random
/// edges (cycles included), start kinds, and report codes.
fn arb_automaton() -> impl Strategy<Value = Automaton> {
    let state = (
        proptest::collection::vec(prop::bool::ANY, 4),
        0..3u8,
        proptest::option::of(0..8u32),
    );
    (
        proptest::collection::vec(state, 1..12),
        proptest::collection::vec((0..12usize, 0..12usize), 0..24),
    )
        .prop_map(|(states, edges)| {
            let n = states.len();
            let mut a = Automaton::new();
            for (class_bits, start, report) in &states {
                let mut class = SymbolClass::new();
                for (i, &set) in class_bits.iter().enumerate() {
                    if set {
                        class.insert(b'a' + i as u8);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = match start {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let id = a.add_ste(class, start);
                if let Some(code) = report {
                    a.set_report(id, *code);
                }
            }
            for &(from, to) in &edges {
                a.add_edge(StateId::new(from % n), StateId::new(to % n));
            }
            a
        })
        .prop_filter("needs a start state", |a| a.validate().is_ok())
}

/// Strategy: a multi-component set of literal chains — the chunkable
/// shape (all-input starts, acyclic) that exercises input chunking and
/// the bit-parallel engine.
fn arb_chains() -> impl Strategy<Value = Automaton> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..6),
        1..8,
    )
    .prop_map(|words| {
        let mut a = Automaton::new();
        for (code, w) in words.iter().enumerate() {
            let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, code as u32);
        }
        a
    })
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'a', b'b', b'c', b'd', b'e']),
        0..150,
    )
}

fn sorted_reports(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

/// The parallel scanner's stream as emitted — it must already be in
/// canonical sorted order, so no re-sorting here.
fn parallel_reports(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    ParallelScanner::new(a, threads)
        .expect("valid")
        .scan(input, &mut sink);
    sink.reports().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_automata(a in arb_automaton(), input in arb_input()) {
        let reference = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), &input);
        let mut dfa = LazyDfaEngine::with_max_states(&a, 16).expect("no counters");
        prop_assert_eq!(&reference, &sorted_reports(&mut dfa, &input));
        if let Ok(mut bp) = BitParallelEngine::new(&a) {
            prop_assert_eq!(&reference, &sorted_reports(&mut bp, &input));
        }
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(&reference, &parallel_reports(&a, threads, &input),
                            "parallel @ {} threads", threads);
        }
    }

    #[test]
    fn engines_agree_on_chain_sets(a in arb_chains(), input in arb_input()) {
        let reference = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), &input);
        prop_assert_eq!(
            &reference,
            &sorted_reports(&mut LazyDfaEngine::with_max_states(&a, 16).expect("no counters"), &input)
        );
        prop_assert_eq!(
            &reference,
            &sorted_reports(&mut BitParallelEngine::new(&a).expect("chains"), &input)
        );
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(&reference, &parallel_reports(&a, threads, &input),
                            "parallel @ {} threads", threads);
        }
    }

    #[test]
    fn parallel_streaming_agrees_with_whole_scan(
        a in arb_chains(),
        input in arb_input(),
        cut_frac in 0..100usize,
    ) {
        use automatazoo::engines::StreamingEngine;
        let reference = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), &input);
        let cut = input.len() * cut_frac / 100;
        let mut par = ParallelScanner::new(&a, 4).expect("valid");
        let mut sink = CollectSink::new();
        par.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports());
    }
}

//! Cross-engine differential testing: every engine that accepts an
//! automaton must emit the *byte-identical* `(offset, code)`-sorted
//! report stream — the invariant that makes the engine portfolio (and
//! the parallel scanner's merge) safe to select from freely.
//!
//! Random automata (with cycles and anchors) and random chain sets are
//! scanned by the NFA engine (reference), the lazy DFA, the bit-parallel
//! engine (where the shape allows), and the parallel scanner at 1, 2,
//! and 4 worker threads.

use automatazoo::core::{Automaton, StartKind, StateId, SymbolClass};
use automatazoo::engines::{
    BitParallelEngine, CollectSink, Engine, LazyDfaEngine, NfaEngine, ParallelScanner, Report,
};
use proptest::prelude::*;

/// Strategy: a random counter-free automaton over `{a..d}` with random
/// edges (cycles included), start kinds, and report codes.
fn arb_automaton() -> impl Strategy<Value = Automaton> {
    let state = (
        proptest::collection::vec(prop::bool::ANY, 4),
        0..3u8,
        proptest::option::of(0..8u32),
    );
    (
        proptest::collection::vec(state, 1..12),
        proptest::collection::vec((0..12usize, 0..12usize), 0..24),
    )
        .prop_map(|(states, edges)| {
            let n = states.len();
            let mut a = Automaton::new();
            for (class_bits, start, report) in &states {
                let mut class = SymbolClass::new();
                for (i, &set) in class_bits.iter().enumerate() {
                    if set {
                        class.insert(b'a' + i as u8);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = match start {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let id = a.add_ste(class, start);
                if let Some(code) = report {
                    a.set_report(id, *code);
                }
            }
            for &(from, to) in &edges {
                a.add_edge(StateId::new(from % n), StateId::new(to % n));
            }
            a
        })
        .prop_filter("needs a start state", |a| a.validate().is_ok())
}

/// Strategy: a multi-component set of literal chains — the chunkable
/// shape (all-input starts, acyclic) that exercises input chunking and
/// the bit-parallel engine.
fn arb_chains() -> impl Strategy<Value = Automaton> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..6),
        1..8,
    )
    .prop_map(|words| {
        let mut a = Automaton::new();
        for (code, w) in words.iter().enumerate() {
            let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
            let (_, last) = a.add_chain(&classes, StartKind::AllInput);
            a.set_report(last, code as u32);
        }
        a
    })
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'a', b'b', b'c', b'd', b'e']),
        0..150,
    )
}

fn sorted_reports(engine: &mut dyn Engine, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

/// The parallel scanner's stream as emitted — it must already be in
/// canonical sorted order, so no re-sorting here.
fn parallel_reports(a: &Automaton, threads: usize, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    ParallelScanner::new(a, threads)
        .expect("valid")
        .scan(input, &mut sink);
    sink.reports().to_vec()
}

// ---------------------------------------------------------------------
// Degenerate parallel-scanner shapes: the chunking heuristics must
// collapse gracefully instead of duplicating or dropping boundary work.
// ---------------------------------------------------------------------

fn parallel_pf(a: &Automaton, threads: usize, prefilter: bool, input: &[u8]) -> Vec<Report> {
    let mut sink = CollectSink::new();
    ParallelScanner::with_prefilter(a, threads, prefilter)
        .expect("valid")
        .scan(input, &mut sink);
    sink.reports().to_vec()
}

/// One all-input chain per word, reporting `code = index`.
fn word_chains(list: &[&[u8]]) -> Automaton {
    let mut a = Automaton::new();
    for (code, w) in list.iter().enumerate() {
        let classes: Vec<SymbolClass> = w.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, code as u32);
    }
    a
}

#[test]
fn more_threads_than_chunks() {
    // 5-byte input at 16 threads: most workers get an empty chunk and
    // must contribute nothing; the match still appears exactly once.
    let a = word_chains(&[b"abc"]);
    let input = b"xabcx";
    let expected = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), input);
    assert_eq!(expected.len(), 1);
    for threads in [7, 16, 64] {
        for prefilter in [false, true] {
            assert_eq!(
                parallel_pf(&a, threads, prefilter, input),
                expected,
                "{threads} threads, prefilter {prefilter}"
            );
        }
    }
}

#[test]
fn input_shorter_than_the_overlap_window() {
    // The longest chain is 6 states, so each worker re-scans up to 5
    // bytes before its chunk — more than a whole chunk of a 4-byte
    // input. Overlap must clamp at offset 0, not underflow or rescan
    // foreign territory twice.
    let a = word_chains(&[b"abcdef", b"cd"]);
    for input in [&b"cd"[..], &b"abcd"[..], &b"cdcd"[..]] {
        let expected = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), input);
        for threads in [2, 4, 8] {
            for prefilter in [false, true] {
                assert_eq!(
                    parallel_pf(&a, threads, prefilter, input),
                    expected,
                    "input {input:?}, {threads} threads, prefilter {prefilter}"
                );
            }
        }
    }
}

#[test]
fn cyclic_shard_falls_back_to_whole_input_scans() {
    // A self-loop gives unbounded match length, so the shard is not
    // chunkable: every worker must scan the whole input once (no chunk
    // jobs), still deduplicating into one canonical stream.
    let mut a = word_chains(&[b"ab"]);
    let hot = a.add_ste(SymbolClass::from_byte(b'z'), StartKind::AllInput);
    a.add_edge(hot, hot); // cycle: z+ then 'q' reports
    let fin = a.add_ste(SymbolClass::from_byte(b'q'), StartKind::None);
    a.add_edge(hot, fin);
    a.set_report(fin, 77);
    a.validate().expect("valid");
    let input = b"abzzzzqab";
    let expected = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), input);
    assert!(expected
        .iter()
        .any(|r| r.code == automatazoo::core::ReportCode(77)));
    for threads in [1, 2, 4] {
        for prefilter in [false, true] {
            assert_eq!(
                parallel_pf(&a, threads, prefilter, input),
                expected,
                "{threads} threads, prefilter {prefilter}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_automata(a in arb_automaton(), input in arb_input()) {
        let reference = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), &input);
        let mut dfa = LazyDfaEngine::with_max_states(&a, 16).expect("no counters");
        prop_assert_eq!(&reference, &sorted_reports(&mut dfa, &input));
        if let Ok(mut bp) = BitParallelEngine::new(&a) {
            prop_assert_eq!(&reference, &sorted_reports(&mut bp, &input));
        }
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(&reference, &parallel_reports(&a, threads, &input),
                            "parallel @ {} threads", threads);
        }
    }

    #[test]
    fn engines_agree_on_chain_sets(a in arb_chains(), input in arb_input()) {
        let reference = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), &input);
        prop_assert_eq!(
            &reference,
            &sorted_reports(&mut LazyDfaEngine::with_max_states(&a, 16).expect("no counters"), &input)
        );
        prop_assert_eq!(
            &reference,
            &sorted_reports(&mut BitParallelEngine::new(&a).expect("chains"), &input)
        );
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(&reference, &parallel_reports(&a, threads, &input),
                            "parallel @ {} threads", threads);
        }
    }

    #[test]
    fn parallel_streaming_agrees_with_whole_scan(
        a in arb_chains(),
        input in arb_input(),
        cut_frac in 0..100usize,
    ) {
        use automatazoo::engines::StreamingEngine;
        let reference = sorted_reports(&mut NfaEngine::new(&a).expect("valid"), &input);
        let cut = input.len() * cut_frac / 100;
        let mut par = ParallelScanner::new(&a, 4).expect("valid");
        let mut sink = CollectSink::new();
        par.scan_chunks([&input[..cut], &input[cut..]], &mut sink);
        prop_assert_eq!(&reference, &sink.sorted_reports());
    }
}

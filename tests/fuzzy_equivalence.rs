//! Equivalence pin: the general `azoo-fuzzy` construction at the
//! paper's (pattern, k) instances is report-identical — multiplicity
//! included — to azoo-zoo's hand-built Levenshtein and Hamming meshes
//! under NfaEngine, in block mode and in 997-byte streaming chunks.
//!
//! Any divergence is banked under `tests/bugbank/` (the same corpus the
//! differential oracle feeds) before the test fails, so the witness
//! outlives the run.

use std::path::Path;

use automatazoo::core::Automaton;
use automatazoo::fuzzy::{fuzzy_from_bytes, EditProfile};
use automatazoo::oracle::{BugbankEntry, Divergence, EngineKind, EngineUnderTest, Rep, Subject};
use automatazoo::workloads::dna;
use automatazoo::zoo::hamming::{hamming_filter, HammingParams};
use automatazoo::zoo::levenshtein::{levenshtein_filter, LevenshteinParams};

const STREAM_CHUNK: usize = 997;
const INPUT_LEN: usize = 16 * 1024;
const FILTERS: usize = 3;

fn run_block(a: &Automaton, input: &[u8]) -> Vec<Rep> {
    EngineUnderTest::build(EngineKind::NfaNoSkip, a)
        .expect("valid automaton")
        .expect("NFA applies to every automaton")
        .run_block(input)
}

fn run_streamed(a: &Automaton, input: &[u8]) -> Vec<Rep> {
    let mut plan = vec![STREAM_CHUNK; input.len() / STREAM_CHUNK];
    let tail = input.len() % STREAM_CHUNK;
    if tail > 0 {
        plan.push(tail);
    }
    EngineUnderTest::build(EngineKind::NfaNoSkip, a)
        .expect("valid automaton")
        .expect("NFA applies to every automaton")
        .run_chunks(input, &plan)
}

/// Compares the hand-built and general meshes on one stimulus, banking
/// a bugbank witness on divergence.
fn pin(name: &str, hand: &Automaton, general: &Automaton, input: &[u8], seed: u64) {
    for (mode, expected, got) in [
        ("block", run_block(hand, input), run_block(general, input)),
        (
            "stream-997",
            run_streamed(hand, input),
            run_streamed(general, input),
        ),
    ] {
        if expected != got {
            let chunks = (mode != "block").then(|| {
                let mut plan = vec![STREAM_CHUNK; input.len() / STREAM_CHUNK];
                let tail = input.len() % STREAM_CHUNK;
                if tail > 0 {
                    plan.push(tail);
                }
                plan
            });
            let d = Divergence {
                seed,
                subject: Subject::Engine(EngineKind::NfaNoSkip),
                automaton: general.clone(),
                input: input.to_vec(),
                chunks,
                expected: expected.clone(),
                got: got.clone(),
            };
            let bank_name = format!("fuzzy-equivalence-{name}-{mode}");
            if let Some(entry) =
                BugbankEntry::from_divergence(&bank_name, "found by tests/fuzzy_equivalence.rs", &d)
            {
                let _ = entry.save(Path::new("tests/bugbank"));
            }
            panic!(
                "{name} ({mode}): general construction diverges from the \
                 hand-built mesh: expected {} reports, got {} (banked as {bank_name})",
                expected.len(),
                got.len()
            );
        }
    }
}

#[test]
fn levenshtein_published_variants_are_report_identical() {
    // Table V instances: 19x3, 24x5, 37x10.
    for (length, distance) in [(19usize, 3usize), (24, 5), (37, 10)] {
        let params = LevenshteinParams::published(length, distance);
        let mut hand = Automaton::new();
        let mut general = Automaton::new();
        for i in 0..FILTERS {
            let pattern = dna::random_dna(params.seed ^ (i as u64 + 1), length);
            hand.append(&levenshtein_filter(&pattern, distance, i as u32));
            let (f, stats) =
                fuzzy_from_bytes(&pattern, distance, EditProfile::LEVENSHTEIN, i as u32)
                    .expect("published instance is well-formed");
            assert_eq!(stats.layers, distance + 1);
            general.append(&f);
        }
        assert_eq!(general.validate_all(), Vec::new());
        let input = dna::random_dna(params.seed ^ 0xFFFF_0002, INPUT_LEN);
        pin(
            &format!("lev-{length}x{distance}"),
            &hand,
            &general,
            &input,
            params.seed,
        );
    }
}

#[test]
fn hamming_published_variants_are_report_identical() {
    // Table V instances: 18x3, 22x5, 31x10. Hamming = the
    // substitution-only edit profile.
    for (length, distance) in [(18usize, 3usize), (22, 5), (31, 10)] {
        let params = HammingParams::published(length, distance);
        let mut hand = Automaton::new();
        let mut general = Automaton::new();
        for i in 0..FILTERS {
            let pattern = dna::random_dna(params.seed ^ (i as u64 + 1), length);
            hand.append(&hamming_filter(&pattern, distance, i as u32));
            let (f, stats) = fuzzy_from_bytes(&pattern, distance, EditProfile::HAMMING, i as u32)
                .expect("published instance is well-formed");
            assert_eq!(stats.layers, distance + 1);
            general.append(&f);
        }
        assert_eq!(general.validate_all(), Vec::new());
        let input = dna::random_dna(params.seed ^ 0xFFFF_0001, INPUT_LEN);
        pin(
            &format!("ham-{length}x{distance}"),
            &hand,
            &general,
            &input,
            params.seed,
        );
    }
}

/// The Levenshtein construction is not merely report-equivalent: the
/// general mesh specializes to *exactly* the hand-built automaton,
/// state for state.
#[test]
fn levenshtein_profile_specializes_to_the_hand_built_mesh() {
    let pattern = dna::random_dna(0x1EE7, 19);
    let hand = levenshtein_filter(&pattern, 3, 42);
    let (general, _) =
        fuzzy_from_bytes(&pattern, 3, EditProfile::LEVENSHTEIN, 42).expect("well-formed");
    assert_eq!(hand, general);
}

//! Property-based tests over the core invariants: transformation passes
//! preserve report streams, engines agree, serialization round-trips,
//! and striding is exact — all over *randomly generated* automata and
//! inputs, not hand-picked cases.

use automatazoo::core::{mnrl, Automaton, StartKind, StateId, SymbolClass};
use automatazoo::engines::{CollectSink, Engine, LazyDfaEngine, NfaEngine, Report};
use automatazoo::passes::{
    bit_pattern_chain, bits_of_bytes, merge_prefixes, merge_suffixes, remove_dead, stride8, widen,
};
use proptest::prelude::*;

/// Strategy: a random counter-free automaton over a small alphabet, with
/// random edges, start kinds, and report codes.
fn arb_automaton() -> impl Strategy<Value = Automaton> {
    let state = (
        proptest::collection::vec(prop::bool::ANY, 4), // class over {a..d}
        0..3u8,                                        // start kind
        proptest::option::of(0..8u32),                 // report
    );
    (
        proptest::collection::vec(state, 1..12),
        proptest::collection::vec((0..12usize, 0..12usize), 0..24),
    )
        .prop_map(|(states, edges)| {
            let n = states.len();
            let mut a = Automaton::new();
            for (class_bits, start, report) in &states {
                let mut class = SymbolClass::new();
                for (i, &set) in class_bits.iter().enumerate() {
                    if set {
                        class.insert(b'a' + i as u8);
                    }
                }
                if class.is_empty() {
                    class.insert(b'a');
                }
                let start = match start {
                    0 => StartKind::AllInput,
                    1 => StartKind::StartOfData,
                    _ => StartKind::None,
                };
                let id = a.add_ste(class, start);
                if let Some(code) = report {
                    a.set_report(id, *code);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for &(from, to) in &edges {
                // Duplicate edges are a validation error; dedup here so the
                // prop_filter below rarely rejects.
                if seen.insert((from % n, to % n)) {
                    a.add_edge(StateId::new(from % n), StateId::new(to % n));
                }
            }
            a
        })
        .prop_filter("needs a start state", |a| a.validate().is_ok())
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'a', b'b', b'c', b'd', b'e']),
        0..150,
    )
}

fn run(a: &Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_dfa_equals_nfa(a in arb_automaton(), input in arb_input()) {
        let nfa = run(&a, &input);
        let mut dfa = LazyDfaEngine::with_max_states(&a, 16).expect("no counters");
        let mut sink = CollectSink::new();
        dfa.scan(&input, &mut sink);
        prop_assert_eq!(nfa, sink.sorted_reports());
    }

    #[test]
    fn prefix_merge_preserves_reports(a in arb_automaton(), input in arb_input()) {
        let (merged, stats) = merge_prefixes(&a);
        prop_assert!(merged.state_count() <= a.state_count());
        prop_assert_eq!(run(&a, &input), run(&merged, &input));
        prop_assert!(stats.compression_factor() >= 0.0);
    }

    #[test]
    fn suffix_merge_preserves_reports(a in arb_automaton(), input in arb_input()) {
        let (merged, _) = merge_suffixes(&a);
        prop_assert_eq!(run(&a, &input), run(&merged, &input));
    }

    #[test]
    fn dead_removal_preserves_reports(a in arb_automaton(), input in arb_input()) {
        let pruned = remove_dead(&a);
        prop_assert_eq!(run(&a, &input), run(&pruned, &input));
    }

    #[test]
    fn merges_are_idempotent(a in arb_automaton()) {
        let (m1, _) = merge_prefixes(&a);
        let (m2, s2) = merge_prefixes(&m1);
        prop_assert_eq!(m1.state_count(), m2.state_count());
        prop_assert_eq!(s2.compression_factor(), 0.0);
    }

    #[test]
    fn mnrl_roundtrips(a in arb_automaton()) {
        let json = mnrl::to_json(&a, "prop");
        let back = mnrl::from_json(&json).expect("own output parses");
        prop_assert_eq!(a, back);
    }

    #[test]
    fn widen_matches_widened_input_only(
        word in proptest::collection::vec(1u8..=255, 1..12),
        input in proptest::collection::vec(1u8..=255, 0..60),
    ) {
        // A literal chain for `word`, widened, must match the
        // zero-interleaved encoding of `word` wherever it occurs in the
        // zero-interleaved encoding of `input`, and nowhere else.
        let mut a = Automaton::new();
        let classes: Vec<SymbolClass> =
            word.iter().map(|&b| SymbolClass::from_byte(b)).collect();
        let (_, last) = a.add_chain(&classes, StartKind::AllInput);
        a.set_report(last, 0);
        let wide = widen(&a).expect("no counters");
        let wide_input: Vec<u8> = input.iter().flat_map(|&b| [b, 0]).collect();
        let got = run(&wide, &wide_input).len();
        let expected = if input.len() >= word.len() {
            input.windows(word.len()).filter(|w| *w == &word[..]).count()
        } else {
            0
        };
        prop_assert_eq!(got, expected);
        // And the narrow input must never match (words are NUL-free).
        prop_assert_eq!(run(&wide, &input).len(), 0);
    }

    #[test]
    fn stride8_is_exact_for_byte_patterns(
        pattern in proptest::collection::vec(prop::num::u8::ANY, 1..5),
        input in proptest::collection::vec(prop::num::u8::ANY, 0..40),
    ) {
        // A bit-level chain for `pattern`, 8-strided, must report exactly
        // where the byte-level literal occurs.
        let bits = bit_pattern_chain(&bits_of_bytes(&pattern), 0, StartKind::AllInput);
        let byte_nfa = stride8(&bits).expect("bit level");
        let got: Vec<u64> = run(&byte_nfa, &input).iter().map(|r| r.offset).collect();
        let expected: Vec<u64> = if input.len() >= pattern.len() {
            input
                .windows(pattern.len())
                .enumerate()
                .filter(|(_, w)| *w == &pattern[..])
                .map(|(i, _)| (i + pattern.len() - 1) as u64)
                .collect()
        } else {
            Vec::new()
        };
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn stride8_matches_bit_simulation(
        bits in proptest::collection::vec(proptest::option::of(prop::bool::ANY), 1..4),
        input in proptest::collection::vec(prop::num::u8::ANY, 0..30),
    ) {
        // For a random nibble/bit pattern padded to whole bytes: running
        // the bit automaton on the bit expansion equals running the
        // strided automaton on the bytes.
        let mut pattern: Vec<Option<bool>> = bits;
        while !pattern.len().is_multiple_of(8) {
            pattern.push(None);
        }
        let bit_nfa = bit_pattern_chain(&pattern, 3, StartKind::AllInput);
        let byte_nfa = stride8(&bit_nfa).expect("bit level");
        let bit_input: Vec<u8> = input
            .iter()
            .flat_map(|&b| (0..8).map(move |i| (b >> (7 - i)) & 1))
            .collect();
        // Striding interprets AllInput starts as *byte-aligned* (patterns
        // begin at byte boundaries), so keep only the bit-level matches
        // whose start is byte-aligned: with a whole-byte pattern these are
        // exactly the matches ending on a byte boundary.
        let bit_reports: Vec<u64> = run(&bit_nfa, &bit_input)
            .iter()
            .filter(|r| (r.offset + 1) % 8 == 0)
            .map(|r| r.offset / 8)
            .collect();
        let byte_reports: Vec<u64> =
            run(&byte_nfa, &input).iter().map(|r| r.offset).collect();
        prop_assert_eq!(bit_reports, byte_reports);
    }

    #[test]
    fn compiled_literal_matches_itself(word in "[a-z]{1,10}") {
        let a = automatazoo::regex::compile(&word, 0).expect("literal compiles");
        let hits = run(&a, word.as_bytes());
        prop_assert_eq!(hits.len(), 1);
        prop_assert_eq!(hits[0].offset as usize, word.len() - 1);
    }

    #[test]
    fn symbol_class_algebra(bytes1 in proptest::collection::vec(prop::num::u8::ANY, 0..20),
                            bytes2 in proptest::collection::vec(prop::num::u8::ANY, 0..20)) {
        let a = SymbolClass::from_bytes(&bytes1);
        let b = SymbolClass::from_bytes(&bytes2);
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.complement().complement(), a);
        // De Morgan.
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
        // Membership matches construction.
        for byte in 0..=255u8 {
            prop_assert_eq!(a.contains(byte), bytes1.contains(&byte));
        }
    }
}

/// Concrete replay of the proptest-regressions case
/// `bits = [None], input = [0, 0]` for `stride8_matches_bit_simulation`:
/// a single wildcard bit padded to one wildcard byte must report at every
/// byte of the all-zero input, identically at bit and byte level.
#[test]
fn stride8_single_wildcard_bit_on_zero_bytes() {
    let pattern: Vec<Option<bool>> = vec![None; 8];
    let bit_nfa = bit_pattern_chain(&pattern, 3, StartKind::AllInput);
    let byte_nfa = stride8(&bit_nfa).expect("bit level");
    let input = [0u8, 0u8];
    let bit_input = [0u8; 16];
    let bit_reports: Vec<u64> = run(&bit_nfa, &bit_input)
        .iter()
        .filter(|r| (r.offset + 1) % 8 == 0)
        .map(|r| r.offset / 8)
        .collect();
    let byte_reports: Vec<u64> = run(&byte_nfa, &input).iter().map(|r| r.offset).collect();
    assert_eq!(bit_reports, vec![0, 1]);
    assert_eq!(byte_reports, vec![0, 1]);
}

/// Bit reports at a non-final bit of a byte are attributed to that byte;
/// dedup in the comparison above relies on sorted_reports deduping...
/// it does not — so verify explicitly that duplicate attribution cannot
/// diverge for patterns that end mid-byte.
#[test]
fn stride_attributes_midbyte_reports_to_containing_byte() {
    // 4-bit pattern 1111 (ends mid-byte): reports on any byte with 1111
    // anywhere at nibble boundary 0 (since chains start byte-aligned).
    let bits = bit_pattern_chain(&[Some(true); 4], 0, StartKind::AllInput);
    let byte_nfa = stride8(&bits).expect("bit level");
    let hits = run(&byte_nfa, &[0xF0, 0x0F, 0x00, 0xFF]);
    let offsets: Vec<u64> = hits.iter().map(|r| r.offset).collect();
    // 0xF0 starts with 1111; 0x0F has 1111 but not byte-aligned at bit 0;
    // 0xFF starts with 1111.
    assert_eq!(offsets, vec![0, 3]);
}

//! Admission-control acceptance: overload produces *typed, bounded*
//! rejections — never a panic, never a corrupted in-flight session —
//! and every gauge returns to zero when pressure drops.

use std::time::Duration;

use automatazoo::core::{Automaton, StartKind, SymbolClass};
use automatazoo::serve::{Db, DbConfig, ScanService, ServeError, ServeLimits};

fn ab_db() -> std::sync::Arc<Db> {
    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    a.add_edge(s, t);
    a.set_report(t, 1);
    Db::compile(a, DbConfig::default()).expect("compile")
}

#[test]
fn session_quotas_reject_typed_and_leave_survivors_working() {
    let svc = ScanService::new(ServeLimits {
        max_sessions: 3,
        max_sessions_per_tenant: 2,
        ..ServeLimits::default()
    });
    let db = ab_db();

    let s1 = svc.open("alice", &db).expect("open");
    let _s2 = svc.open("alice", &db).expect("open");
    // Tenant cap before global cap.
    match svc.open("alice", &db) {
        Err(ServeError::QuotaExceeded { tenant, resource }) => {
            assert_eq!(tenant, "alice");
            assert_eq!(resource, "sessions");
        }
        other => panic!("expected tenant QuotaExceeded, got {other:?}"),
    }
    let _s3 = svc.open("bob", &db).expect("open");
    match svc.open("carol", &db) {
        Err(ServeError::Overloaded { resource }) => assert_eq!(resource, "sessions"),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The rejections above must not have touched admitted sessions.
    assert_eq!(svc.feed(s1, b"ab", true).expect("feed"), 1);
    assert_eq!(svc.drain(s1).expect("drain").len(), 1);
    assert_eq!(svc.metrics().snapshot().rejected_opens, 2);
}

#[test]
fn byte_quotas_reject_typed_and_roll_back_exactly() {
    let svc = ScanService::new(ServeLimits {
        max_bytes_in_flight: 64,
        max_bytes_in_flight_per_tenant: 16,
        ..ServeLimits::default()
    });
    let db = ab_db();
    let sid = svc.open("alice", &db).expect("open");

    // Over the tenant byte quota: typed, and nothing stays admitted.
    match svc.feed(sid, &[b'a'; 17], false) {
        Err(ServeError::QuotaExceeded { tenant, resource }) => {
            assert_eq!(tenant, "alice");
            assert_eq!(resource, "bytes");
        }
        other => panic!("expected byte QuotaExceeded, got {other:?}"),
    }
    assert_eq!(svc.bytes_in_flight(), 0, "rejected bytes fully rolled back");

    // Over the global quota: Overloaded, same rollback guarantee.
    match svc.feed(sid, &[b'a'; 65], false) {
        Err(ServeError::Overloaded { resource }) => assert_eq!(resource, "bytes"),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(svc.bytes_in_flight(), 0);

    // The session itself is untouched: an admissible feed still scans,
    // and its stream state never saw the rejected chunks.
    assert_eq!(svc.feed(sid, b"ab", false).expect("feed"), 1);
    assert_eq!(svc.feed(sid, b"ab", true).expect("feed"), 1);
    let reports = svc.drain(sid).expect("drain");
    assert_eq!(
        reports.iter().map(|r| r.offset).collect::<Vec<_>>(),
        vec![1, 3],
        "rejected chunks must not advance the stream"
    );
    svc.close(sid).expect("close");
    assert_eq!(svc.metrics().snapshot().rejected_feeds, 2);
    assert_eq!(svc.bytes_in_flight(), 0);
    assert_eq!(svc.session_count(), 0);
}

#[test]
fn report_buffer_backpressure_until_drained() {
    let svc = ScanService::new(ServeLimits {
        max_buffered_reports: 2,
        ..ServeLimits::default()
    });
    let db = ab_db();
    let sid = svc.open("alice", &db).expect("open");
    // Two reports fill the buffer to the cap.
    assert_eq!(svc.feed(sid, b"abab", false).expect("feed"), 2);
    match svc.feed(sid, b"ab", false) {
        Err(ServeError::QuotaExceeded { resource, .. }) => {
            assert_eq!(resource, "report-buffer");
        }
        other => panic!("expected report-buffer QuotaExceeded, got {other:?}"),
    }
    // Draining releases the backpressure; the stream continues exactly
    // where it left off.
    assert_eq!(svc.drain(sid).expect("drain").len(), 2);
    assert_eq!(svc.feed(sid, b"ab", true).expect("feed"), 1);
    assert_eq!(svc.drain(sid).expect("drain")[0].offset, 5);
    svc.close(sid).expect("close");
}

#[test]
fn zero_deadline_times_out_then_cancels_deterministically() {
    let svc = ScanService::new(ServeLimits {
        feed_deadline: Some(Duration::ZERO),
        ..ServeLimits::default()
    });
    let db = ab_db();
    let sid = svc.open("alice", &db).expect("open");
    // A zero deadline has always elapsed by the time the session lock
    // is held: deterministic TimedOut, session cancelled.
    assert_eq!(svc.feed(sid, b"ab", false), Err(ServeError::TimedOut));
    // Later feeds see the cancelled state, not another timeout.
    assert_eq!(svc.feed(sid, b"ab", false), Err(ServeError::Cancelled(sid)));
    // Drain and close still work; the executor was recycled at cancel.
    assert!(svc.drain(sid).expect("drain").is_empty());
    svc.close(sid).expect("close");
    assert_eq!(db.pooled(), 1, "cancelled session's engine was recycled");
    let snap = svc.metrics().snapshot();
    assert_eq!(snap.timed_out_feeds, 1);
    assert_eq!(snap.rejected_feeds, 0, "timeouts are not quota rejections");
    assert_eq!(svc.session_count(), 0);
    assert_eq!(svc.bytes_in_flight(), 0);
}

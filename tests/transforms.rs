//! Integration tests for the newer cross-crate capabilities: streaming
//! scans over benchmarks, spatial partitioning, ANML round-trips, and
//! engine auto-selection.

use automatazoo::core::anml;
use automatazoo::engines::{
    select_engine, CollectSink, Engine, EngineChoice, NfaEngine, Report, StreamingEngine,
};
use automatazoo::ml::SpatialModel;
use automatazoo::passes::partition;
use automatazoo::zoo::{BenchmarkId, Scale};

fn whole_scan(a: &automatazoo::core::Automaton, input: &[u8]) -> Vec<Report> {
    let mut engine = NfaEngine::new(a).expect("valid");
    let mut sink = CollectSink::new();
    engine.scan(input, &mut sink);
    sink.sorted_reports()
}

#[test]
fn streaming_benchmarks_equal_block_scans() {
    for id in [
        BenchmarkId::Snort,
        BenchmarkId::Protomata,
        BenchmarkId::SeqMatch6w6pWc, // exercises counters through feeds
        BenchmarkId::FileCarving,
    ] {
        let bench = id.build(Scale::Tiny);
        let window = bench.input.len().min(12_000);
        let input = &bench.input[..window];
        let expected = whole_scan(&bench.automaton, input);
        let mut engine = NfaEngine::new(&bench.automaton).expect("valid");
        let mut sink = CollectSink::new();
        // Feed in uneven chunks.
        let chunks: Vec<&[u8]> = input.chunks(997).collect();
        engine.scan_chunks(chunks, &mut sink);
        assert_eq!(
            expected,
            sink.sorted_reports(),
            "streaming diverged on {}",
            id.name()
        );
    }
}

#[test]
fn partitioning_fits_benchmarks_onto_chips() {
    let bench = BenchmarkId::Hamming18x3.build(Scale::Tiny);
    let model = SpatialModel::AP_D480;
    let capacity = 300; // artificially tiny chip for the test
    let parts = partition(&bench.automaton, capacity).expect("filters are small");
    assert!(parts.len() > 1);
    let total: usize = parts.iter().map(|p| p.state_count()).sum();
    assert_eq!(total, bench.automaton.state_count());
    for p in &parts {
        assert!(p.state_count() <= capacity);
        p.validate().expect("each partition is runnable");
    }
    // The partitioned report union equals the whole-benchmark reports.
    let window = bench.input.len().min(8_000);
    let input = &bench.input[..window];
    let mut expected = whole_scan(&bench.automaton, input);
    let mut union: Vec<Report> = Vec::new();
    for p in &parts {
        union.extend(whole_scan(p, input));
    }
    union.sort_unstable();
    expected.sort_unstable();
    assert_eq!(expected, union);
    // The real chip comfortably fits the tiny build in one pass.
    assert_eq!(model.chips_required(bench.automaton.state_count()), 1);
}

#[test]
fn anml_roundtrips_benchmarks() {
    for id in [
        BenchmarkId::Brill,
        BenchmarkId::SeqMatch6w6pWc, // includes counters and reset-free wiring
        BenchmarkId::ApPrng4,
    ] {
        let bench = id.build(Scale::Tiny);
        let xml = anml::to_anml(&bench.automaton, id.name());
        let back = anml::from_anml(&xml)
            .unwrap_or_else(|e| panic!("{} failed ANML roundtrip: {e}", id.name()));
        assert_eq!(bench.automaton, back, "{} ANML mismatch", id.name());
    }
}

#[test]
fn engine_selection_matches_benchmark_shapes() {
    // RF chains -> bit-parallel.
    let rf = BenchmarkId::RandomForestB.build(Scale::Tiny);
    let (choice, _) = select_engine(&rf.automaton).expect("valid");
    assert_eq!(choice, EngineChoice::BitParallel);
    // Regex-derived Protomata -> lazy DFA.
    let proto = BenchmarkId::Protomata.build(Scale::Tiny);
    let (choice, _) = select_engine(&proto.automaton).expect("valid");
    assert_eq!(choice, EngineChoice::LazyDfa);
    // Counter benchmarks -> NFA.
    let spm = BenchmarkId::SeqMatch6w6pWc.build(Scale::Tiny);
    let (choice, _) = select_engine(&spm.automaton).expect("valid");
    assert_eq!(choice, EngineChoice::Nfa);
    // Whatever is selected must produce the NFA-canonical report stream.
    for bench in [rf, proto] {
        let window = bench.input.len().min(5_000);
        let input = &bench.input[..window];
        let expected = whole_scan(&bench.automaton, input);
        let (_, mut engine) = select_engine(&bench.automaton).expect("valid");
        let mut sink = CollectSink::new();
        engine.scan(input, &mut sink);
        assert_eq!(expected, sink.sorted_reports());
    }
}

//! End-to-end framed-protocol test over a real Unix domain socket:
//! exactly the transport and frame sequence the CI smoke step and the
//! README quickstart use.

use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;

use automatazoo::core::{Automaton, StartKind, SymbolClass};
use automatazoo::serve::proto::{recv_response, send_request};
use automatazoo::serve::{
    Db, DbConfig, DbRef, Listener, Request, Response, ScanService, ServeLimits, Server,
};

#[test]
fn unix_socket_end_to_end() {
    let path = std::env::temp_dir().join(format!("azoo-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut a = Automaton::new();
    let s = a.add_ste(SymbolClass::from_byte(b'a'), StartKind::AllInput);
    let t = a.add_ste(SymbolClass::from_byte(b'b'), StartKind::None);
    a.add_edge(s, t);
    a.set_report(t, 3);
    let artifact = Db::compile(a, DbConfig::default())
        .expect("compile")
        .serialize();

    let svc = ScanService::new(ServeLimits::default());
    let listener = Listener::bind_unix(&path).expect("bind");
    let server = Server::new(svc, listener);
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().expect("run"));

    let mut conn = UnixStream::connect(&path).expect("connect");

    // Open by inline artifact; reopen by cached key later.
    send_request(
        &mut conn,
        &Request::Open {
            tenant: "ids".into(),
            db: DbRef::Artifact(artifact.clone()),
            max_edits: 0,
        },
    )
    .expect("send");
    let sid = match recv_response(&mut conn).expect("recv") {
        Response::Opened { sid } => sid,
        other => panic!("expected Opened, got {other:?}"),
    };

    // Chunked stream with a boundary inside the match: "xa" + "b..".
    for (chunk, eod, want) in [
        (&b"xa"[..], false, vec![]),
        (&b"bxx"[..], false, vec![(2u64, 3u32)]),
        (&b""[..], true, vec![]),
    ] {
        send_request(
            &mut conn,
            &Request::Feed {
                sid,
                eod,
                data: chunk.to_vec(),
            },
        )
        .expect("send");
        match recv_response(&mut conn).expect("recv") {
            Response::Reports { reports, .. } => assert_eq!(reports, want),
            other => panic!("expected Reports, got {other:?}"),
        }
    }

    send_request(&mut conn, &Request::Close { sid }).expect("send");
    assert!(matches!(
        recv_response(&mut conn).expect("recv"),
        Response::Reports { .. }
    ));
    match recv_response(&mut conn).expect("recv") {
        Response::Closed { fed_bytes, .. } => assert_eq!(fed_bytes, 5),
        other => panic!("expected Closed, got {other:?}"),
    }

    // The second open of the same artifact is a cache hit server-side.
    send_request(
        &mut conn,
        &Request::Open {
            tenant: "ids".into(),
            db: DbRef::Artifact(artifact),
            max_edits: 0,
        },
    )
    .expect("send");
    let sid2 = match recv_response(&mut conn).expect("recv") {
        Response::Opened { sid } => sid,
        other => panic!("expected Opened, got {other:?}"),
    };
    send_request(&mut conn, &Request::Close { sid: sid2 }).expect("send");
    assert!(matches!(
        recv_response(&mut conn).expect("recv"),
        Response::Reports { .. }
    ));
    assert!(matches!(
        recv_response(&mut conn).expect("recv"),
        Response::Closed { .. }
    ));

    send_request(&mut conn, &Request::Metrics).expect("send");
    let metrics = match recv_response(&mut conn).expect("recv") {
        Response::MetricsJson(json) => automatazoo::core::json::parse(&json).expect("valid"),
        other => panic!("expected MetricsJson, got {other:?}"),
    };
    let get = |k: &str| metrics.get(k).and_then(|j| j.as_i64()).unwrap();
    assert_eq!(get("sessions_opened"), 2);
    assert_eq!(get("sessions_open"), 0);
    assert_eq!(get("cache_hits"), 1);
    assert_eq!(get("cache_misses"), 1);
    assert_eq!(get("rejected_feeds"), 0);
    assert_eq!(get("reports_emitted"), 1);

    send_request(&mut conn, &Request::Shutdown).expect("send");
    assert!(matches!(
        recv_response(&mut conn).expect("recv"),
        Response::ShuttingDown
    ));
    assert!(flag.load(Ordering::SeqCst));
    handle.join().expect("server thread");
    let _ = std::fs::remove_file(&path);
}
